//! # laser
//!
//! Umbrella crate for the LASER reproduction ("Real-Time LSM-Trees for HTAP
//! Workloads", ICDE 2023): re-exports the full stack so applications can
//! depend on a single crate.
//!
//! * [`lsm_storage`] — the from-scratch LSM-Tree substrate (memtable, WAL,
//!   SSTs, bloom filters, leveled compaction, pluggable storage backends).
//! * [`laser_core`] — the Real-Time LSM-Tree engine: per-level column-group
//!   layouts, partial-row updates, projection-aware reads and scans,
//!   CG-local compaction.
//! * [`laser_cost_model`] — the analytic cost model (Equations 1–9, Table 2).
//! * [`laser_advisor`] — the per-level design advisor (Section 6).
//! * [`laser_workload`] — the HTAP benchmark workload generator (Q1–Q5, HW).
//! * [`laser_sharding`] — range sharding over both engines: shard router,
//!   parallel cross-shard scans, a process-wide shared block cache, one
//!   maintenance pool serving every shard, and online re-sharding (live
//!   shard splits with a crash-safe two-phase manifest swap).
//! * [`telemetry`] — the unified observability layer: a lock-free metrics
//!   registry (counters, gauges, log-bucketed latency histograms), a bounded
//!   maintenance event log, and Prometheus-text / JSON exports.
//!
//! See the `examples/` directory for runnable end-to-end programs and
//! `crates/bench` for the harness that regenerates every table and figure of
//! the paper.

pub use laser_advisor;
pub use laser_core;
pub use laser_cost_model;
pub use laser_sharding;
pub use laser_workload;
pub use lsm_storage;
pub use telemetry;

pub use laser_advisor::{select_design, AdvisorOptions, WorkloadTrace};
pub use laser_core::{
    ColumnGroup, LaserDb, LaserOptions, LayoutSpec, LevelLayout, Projection, RowFragment, Schema,
    Value,
};
pub use laser_cost_model::{CostModel, TreeParameters};
pub use laser_sharding::{
    DirShardStorage, MemShardStorage, ShardRouter, ShardSnapshot, ShardedDb, ShardedOptions,
    SplitFailpoint, SplitPolicy,
};
pub use laser_workload::{HtapWorkloadSpec, HwQuery, Operation, WorkloadShift};
pub use telemetry::{Event, EventKind, MetricsRegistry, Telemetry};

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_compose() {
        use crate::{LaserDb, LaserOptions, LayoutSpec, Projection, Schema};
        let schema = Schema::with_columns(4);
        let db = LaserDb::open_in_memory(LaserOptions::small_for_tests(LayoutSpec::equi_width(
            &schema, 4, 2,
        )))
        .unwrap();
        db.insert_int_row(1, 10).unwrap();
        assert!(db.read(1, &Projection::of([0])).unwrap().is_some());
    }
}
