//! IoT telemetry scenario: high-rate sensor ingest with occasional corrections
//! (partial updates), alerting point-reads on fresh data and daily roll-up
//! scans over a few metric columns — run on a *durable*, file-backed LASER
//! engine and re-opened to demonstrate crash recovery.
//!
//! Run with: `cargo run --example iot_ingest`

use laser::{LaserDb, LaserOptions, LayoutSpec, Projection, Schema, Value};
use laser_core::lsm_storage::FileStorage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Schema: device_status columns a1..a4 (wide OLTP payload) and metric
    // columns a5..a12 (scanned by roll-ups).
    let schema = Schema::with_columns(12);
    // Keep fresh data row-oriented; split old data so the metric columns
    // (a5..a12) are separated from the status payload.
    let design = LayoutSpec::new(
        schema.clone(),
        vec![
            laser::LevelLayout::row_oriented(&schema),
            laser::LevelLayout::row_oriented(&schema),
            laser::LevelLayout::new(vec![
                laser::ColumnGroup::range_1based(1, 4),
                laser::ColumnGroup::range_1based(5, 12),
            ]),
            laser::LevelLayout::new(vec![
                laser::ColumnGroup::range_1based(1, 4),
                laser::ColumnGroup::range_1based(5, 8),
                laser::ColumnGroup::range_1based(9, 12),
            ]),
        ],
        "iot-lifecycle",
    )?;

    let dir = std::env::temp_dir().join("laser-iot-example");
    let _ = std::fs::remove_dir_all(&dir);
    let storage = FileStorage::open_ref(&dir)?;

    let mut options = LaserOptions::small_for_tests(design);
    options.num_levels = 4;
    options.sync_wal = false;

    {
        let db = LaserDb::open(storage.clone(), options.clone())?;
        // Ingest 5,000 readings (key = reading id).
        for reading in 0..5_000u64 {
            db.insert_int_row(reading, (reading % 100) as i64)?;
        }
        // Corrections: a late-arriving calibration fixes metric a7 for a batch.
        for reading in 4_000..4_050u64 {
            db.update(reading, vec![(6, Value::Int(-1))])?;
        }
        // Alerting: check the freshest readings' full status.
        let fresh = db
            .read(4_999, &Projection::all(db.schema()))?
            .expect("latest reading");
        println!("latest reading status a1 = {:?}", fresh.get(0));
        // Roll-up: average of metric a12 over the full history.
        let rows = db.scan(0, 4_999, &Projection::of([11]))?;
        let avg: f64 = rows
            .iter()
            .filter_map(|(_, r)| r.get(11)?.as_int())
            .sum::<i64>() as f64
            / rows.len().max(1) as f64;
        println!("avg(a12) over {} readings = {avg:.2}", rows.len());
        db.close()?;
    }

    // Re-open from the same directory: manifest + WAL recovery.
    let db = LaserDb::open(storage, options)?;
    let corrected = db
        .read(4_010, &Projection::of([6]))?
        .expect("corrected reading");
    assert_eq!(corrected.get(6), Some(&Value::Int(-1)));
    println!(
        "after re-open, correction for reading 4010 is still visible: {:?}",
        corrected.get(6)
    );
    println!(
        "files on disk: {}",
        db.level_files().iter().map(|l| l.len()).sum::<usize>()
    );
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
