//! Design selection end-to-end: describe a workload, profile it per level,
//! run the advisor, and compare the cost of the selected design against the
//! row-store and column-store extremes using the analytic cost model.
//!
//! Run with: `cargo run --example design_advisor`

use laser::{
    select_design, AdvisorOptions, CostModel, HtapWorkloadSpec, LayoutSpec, Projection, Schema,
    TreeParameters,
};
use laser_workload::build_workload_trace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's HW workload on the 30-column table.
    let spec = HtapWorkloadSpec::scaled_down();
    let schema = Schema::with_columns(spec.num_columns);
    let num_levels = 8;
    let params = TreeParameters {
        num_entries: spec.total_keys(),
        size_ratio: 2,
        entries_per_block: 32.0,
        level0_blocks: 64,
        num_columns: spec.num_columns,
    };

    println!("== workload (Table 3, scaled) ==\n{}", spec.render_table3());

    // Profile the workload per level and run the advisor.
    let trace = build_workload_trace(&spec, &params, num_levels);
    let start = std::time::Instant::now();
    let design = select_design(
        &schema,
        &trace,
        &AdvisorOptions {
            num_levels,
            design_name: "D-opt (advisor)".into(),
        },
    )?;
    println!(
        "== selected design (took {:?}) ==\n{design}",
        start.elapsed()
    );

    // Compare analytic costs against the extremes for the workload's key projections.
    let row = LayoutSpec::row_store(&schema, num_levels);
    let col = LayoutSpec::column_store(&schema, num_levels);
    let q2b = Projection::range_1based(16, 30);
    let q5 = Projection::range_1based(28, 30);
    let selectivity = spec.total_keys() as f64 * spec.q5_selectivity;
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "analytic cost", "row-store", "selected", "column-store"
    );
    for (label, f) in [
        (
            "write amplification",
            Box::new(|m: &CostModel| m.insert_amplification()) as Box<dyn Fn(&CostModel) -> f64>,
        ),
        (
            "point read (Q2b)",
            Box::new(move |m: &CostModel| m.point_lookup_cost(&q2b)),
        ),
        (
            "scan (Q5, 50%)",
            Box::new(move |m: &CostModel| m.range_query_cost(&q5, selectivity)),
        ),
    ] {
        let costs: Vec<f64> = [&row, &design, &col]
            .iter()
            .map(|l| f(&CostModel::new(params.clone(), (*l).clone(), num_levels)))
            .collect();
        println!(
            "{:<22} {:>12.2} {:>12.2} {:>12.2}",
            label, costs[0], costs[1], costs[2]
        );
    }
    println!(
        "\nThe selected design should sit near the row store for point reads and near the\n\
         column store for narrow scans — the lifecycle-aware middle ground."
    );
    Ok(())
}
