//! An HTAP lifecycle scenario: a stream of fresh orders is ingested and
//! point-updated (OLTP) while analytical scans aggregate narrow columns over
//! the whole history (OLAP) — the workload shape that motivates the paper.
//!
//! The example runs the same operations against the pure row store, the pure
//! column store and LASER's lifecycle-aware D-opt design, and prints the
//! block-I/O cost of each phase so the trade-off is visible.
//!
//! Run with: `cargo run --example htap_lifecycle`

use laser::{HtapWorkloadSpec, LaserDb, LaserOptions, LayoutSpec, Projection, Schema};
use laser_workload::HwQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(design: LayoutSpec) -> LaserDb {
    let mut options = LaserOptions::small_for_tests(design);
    options.memtable_size_bytes = 16 << 10;
    options.level0_size_bytes = 24 << 10;
    options.num_levels = 8;
    LaserDb::open_in_memory(options).expect("open engine")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::narrow();
    let spec = HtapWorkloadSpec {
        load_keys: 4_000,
        ..HtapWorkloadSpec::scaled_down()
    };
    let designs = vec![
        LayoutSpec::row_store(&schema, 8),
        LayoutSpec::column_store(&schema, 8),
        LayoutSpec::d_opt_paper(&schema)?,
    ];

    println!(
        "{:<14} {:>16} {:>16} {:>16}",
        "design", "ingest blk wr", "point-read blk", "scan blk"
    );
    for design in designs {
        let name = design.name().to_string();
        let db = build(design);
        let io = db.storage().io_stats();

        // Phase 1: ingest the order history.
        for key in 0..spec.load_keys {
            db.insert_int_row(key, key as i64 % 500)?;
        }
        db.flush()?;
        db.compact_until_stable()?;
        let ingest = io.snapshot();

        // Phase 2: OLTP — point reads and column updates on recent orders.
        let mut rng = StdRng::seed_from_u64(1);
        let q2a = spec.key_distribution_for(HwQuery::Q2a).unwrap();
        for _ in 0..200 {
            let key = q2a.sample_key(&mut rng, spec.load_keys);
            db.read(key, &Projection::all(&schema))?;
            if rng.gen_bool(0.1) {
                db.update(key, vec![(rng.gen_range(0..30), laser::Value::Int(7))])?;
            }
        }
        let oltp = io.snapshot();

        // Phase 3: OLAP — narrow aggregates over half the history (Q5-style).
        let q5 = spec.projection_for(HwQuery::Q5);
        for _ in 0..4 {
            let lo = rng.gen_range(0..spec.load_keys / 2);
            db.scan(lo, lo + spec.load_keys / 2, &q5)?;
        }
        let olap = io.snapshot();

        println!(
            "{:<14} {:>16} {:>16} {:>16}",
            name,
            ingest.blocks_written,
            oltp.delta_since(&ingest).blocks_read,
            olap.delta_since(&oltp).blocks_read
        );
    }
    println!(
        "\nExpected shape: the row store is cheapest to ingest and point-read, the column\n\
         store is cheapest to scan, and the lifecycle-aware D-opt design is close to the\n\
         best of both — which is the paper's core claim."
    );
    Ok(())
}
