//! Quickstart: open a LASER engine with a hybrid per-level layout, write some
//! rows, update individual columns, and run projection-aware reads and scans.
//!
//! Run with: `cargo run --example quickstart`

use laser::{LaserDb, LaserOptions, LayoutSpec, Projection, Schema, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A table with 8 integer payload columns (plus the implicit u64 key).
    let schema = Schema::with_columns(8);

    // A Real-Time LSM-Tree design: Level 0 row-oriented, deeper levels split
    // into column groups of two columns each.
    let design = LayoutSpec::equi_width(&schema, 6, 2);
    println!("{design}");

    let db = LaserDb::open_in_memory(LaserOptions::small_for_tests(design))?;

    // Insert 1,000 full rows (column ai = key*10 + i).
    for key in 0..1_000u64 {
        db.insert_int_row(key, key as i64 * 10)?;
    }

    // Update a single column of one row (a LASER partial-row insert).
    db.update(42, vec![(3, Value::Int(-999))])?;

    // Point read with a projection: only columns a1 and a4 are fetched.
    let row = db
        .read(42, &Projection::of([0, 3]))?
        .expect("key 42 exists");
    println!("key 42 -> a1 = {:?}, a4 = {:?}", row.get(0), row.get(3));
    assert_eq!(row.get(3), Some(&Value::Int(-999)));

    // Range scan with a narrow projection (OLAP-style access).
    let rows = db.scan(100, 199, &Projection::of([7]))?;
    let sum: i64 = rows.iter().filter_map(|(_, r)| r.get(7)?.as_int()).sum();
    println!("sum(a8) over keys 100..=199 = {sum} ({} rows)", rows.len());

    // Delete and verify.
    db.delete(42)?;
    assert!(db.read(42, &Projection::of([0]))?.is_none());

    // Push everything down through the tree so the per-level layouts are
    // visible, then inspect how the data is laid out across levels and
    // column groups.
    db.compact_all()?;
    for summary in db.level_summaries() {
        if summary.total_bytes > 0 {
            println!(
                "level {}: {} column groups, {} bytes",
                summary.level,
                summary.column_groups.len(),
                summary.total_bytes
            );
        }
    }
    println!("engine stats: {:?}", db.stats().compactions);
    Ok(())
}
