//! Concurrent ingest with background maintenance: several writer threads
//! insert rows while a pool of maintenance workers flushes memtables and
//! runs CG-local compaction off the write path, with a shared block cache
//! serving the hot read set.
//!
//! Run with: `cargo run --release --example background_ingest`

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use laser::{LaserDb, LaserOptions, LayoutSpec, Projection, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const COLUMNS: usize = 8;
    const WRITERS: u64 = 4;
    const KEYS_PER_WRITER: u64 = 5_000;

    let schema = Schema::with_columns(COLUMNS);
    let mut options = LaserOptions::small_for_tests(LayoutSpec::equi_width(&schema, 6, 2));
    options.memtable_size_bytes = 64 << 10;
    options.level0_size_bytes = 128 << 10;
    options.auto_compact = false; // maintenance owns compaction
    options.block_cache_bytes = 8 << 20;

    let db = Arc::new(LaserDb::open_in_memory(options)?);
    // Two worker threads flush and compact in the background; the returned
    // scheduler joins them on drop.
    let scheduler = db.attach_maintenance(2)?;

    println!(
        "ingesting {} rows from {WRITERS} writer threads...",
        WRITERS * KEYS_PER_WRITER
    );
    let start = Instant::now();
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            for i in 0..KEYS_PER_WRITER {
                let key = w * KEYS_PER_WRITER + i;
                db.insert_int_row(key, key as i64).expect("insert");
            }
        }));
    }
    for h in handles {
        h.join().expect("writer panicked");
    }
    let elapsed = start.elapsed();
    println!(
        "ingest done in {elapsed:?} ({:.0} ops/s)",
        (WRITERS * KEYS_PER_WRITER) as f64 / elapsed.as_secs_f64()
    );

    // Let the workers settle the tree, then read the hot set twice so the
    // second pass is served from the block cache.
    scheduler.wait_idle();
    db.flush()?;
    db.compact_until_stable()?;
    let projection = Projection::of([0, 5]);
    for _ in 0..2 {
        for key in (0..WRITERS * KEYS_PER_WRITER).step_by(17) {
            db.read(key, &projection)?.expect("key present");
        }
    }

    let stats = db.stats();
    println!("levels: {:?}", db.level_sizes());
    println!(
        "flushes {} | compactions {} | background jobs {} (failed {})",
        stats.flushes, stats.compactions, stats.bg_jobs_completed, stats.bg_jobs_failed
    );
    println!(
        "backpressure: {} stalls, {} slowdowns",
        stats.stall_events, stats.slowdown_events
    );
    println!(
        "block cache: {} hits / {} misses ({:.1}% hit rate)",
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_hit_rate() * 100.0
    );
    Ok(())
}
