//! Range-sharded ingest and cross-shard scans: four engine shards behind one
//! router, sharing a process-wide block cache and one background maintenance
//! pool, with writes split per shard and scans fanned out in parallel.
//!
//! Run with: `cargo run --release --example sharded_ingest`

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use laser::lsm_storage::types::WriteBatch;
use laser::lsm_storage::{LsmDb, LsmOptions};
use laser::{MemShardStorage, ShardedDb, ShardedOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const WRITERS: u64 = 4;
    const KEYS: u64 = 40_000;

    let mut engine_options = LsmOptions::small_for_tests();
    engine_options.memtable_size_bytes = 64 << 10;
    engine_options.level0_size_bytes = 1 << 20;

    // Four shards over the key range this workload uses, one shared
    // maintenance pool, one shared cache with a global budget.
    let options = ShardedOptions {
        num_shards: 4,
        boundaries: Some(vec![KEYS / 4, KEYS / 2, 3 * KEYS / 4]),
        fanout_threads: 4,
        maintenance_workers: 2,
        cache_bytes: 16 << 20,
        ..Default::default()
    };
    let provider = MemShardStorage::new_ref();
    let db: Arc<ShardedDb<LsmDb>> = Arc::new(ShardedDb::open(provider, engine_options, options)?);
    println!(
        "opened {} shards, boundaries {:?}",
        db.num_shards(),
        db.router().boundaries()
    );

    // Multi-threaded ingest: batches split per shard, one ack per batch.
    let start = Instant::now();
    let mut handles = Vec::new();
    for writer in 0..WRITERS {
        let db = Arc::clone(&db);
        handles.push(thread::spawn(move || {
            let mut batch = WriteBatch::new();
            let mut key = writer;
            while key < KEYS {
                batch.put(key, format!("value-{key}").into_bytes());
                if batch.len() >= 32 {
                    db.write(&batch).expect("write");
                    batch = WriteBatch::new();
                }
                key += WRITERS;
            }
            if !batch.is_empty() {
                db.write(&batch).expect("write");
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    println!(
        "ingested {KEYS} keys from {WRITERS} writers in {secs:.2}s ({:.0} ops/s)",
        KEYS as f64 / secs
    );

    // A cross-shard scan captures one snapshot across all shards, fans the
    // per-shard scans out in parallel and concatenates in key order.
    let start = Instant::now();
    let rows = db.scan(KEYS / 4 - 500, KEYS / 4 + 499, &())?;
    println!(
        "cross-boundary scan returned {} rows in {:.1}ms (sorted: {})",
        rows.len(),
        start.elapsed().as_secs_f64() * 1e3,
        rows.windows(2).all(|w| w[0].0 < w[1].0),
    );

    db.wait_maintenance_idle();
    let stats = db.stats();
    println!(
        "stats: {} batches ({} cross-shard), {} fan-out scans, {} bg jobs",
        stats.batches, stats.cross_shard_batches, stats.fanout_scans, stats.bg_jobs_completed
    );
    if let Some(cache) = stats.cache {
        println!(
            "cache: {} blocks resident ({} B), per-shard bytes {:?}",
            cache.entries, cache.used_bytes, stats.per_shard_cache_bytes
        );
    }
    Ok(())
}
