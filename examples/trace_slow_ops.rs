//! Request tracing walkthrough: drive a stall-prone sharded workload with
//! every operation sampled, then dump the slowest commit traces from the
//! flight recorder as an indented span tree — showing exactly where a
//! stalled write spent its time (spoiler: in `stall_wait`, blocked behind
//! the L0 file gate) — plus the per-shard workload heatmaps.
//!
//! Run with: `cargo run --release --example trace_slow_ops`

use laser::laser_sharding::{MemShardStorage, ShardedDb, ShardedOptions};
use laser::lsm_storage::types::WriteBatch;
use laser::lsm_storage::{LsmDb, LsmOptions};
use laser::telemetry::{SpanRecord, Trace, TraceKind};
use laser::Telemetry;

/// Tiny memtable and a one-file L0 stall gate: every memtable rotation
/// blocks the writer until the background worker has flushed, so commit
/// latency is dominated by backpressure — the interesting case to trace.
fn stall_prone_options() -> LsmOptions {
    let mut options = LsmOptions::small_for_tests();
    options.memtable_size_bytes = 16 << 10;
    options.level0_size_bytes = 4 << 10;
    options.l0_slowdown_files = 1;
    options.l0_stall_files = 1;
    options.auto_compact = true;
    options
}

fn print_span(span: &SpanRecord, spans: &[SpanRecord], depth: usize) {
    let annotations = span
        .annotations
        .iter()
        .map(|(k, v)| format!("{k}={v:?}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!(
        "  {:indent$}{:<16} {:>12} .. {:>12} ns  {}",
        "",
        span.name,
        span.start_ns,
        span.end_ns,
        annotations,
        indent = depth * 2,
    );
    for child in spans.iter().filter(|s| s.parent == span.id) {
        print_span(child, spans, depth + 1);
    }
}

fn print_trace(trace: &Trace) {
    println!(
        "commit trace {} ({} ns total{})",
        trace.trace_id,
        trace.total_ns,
        if trace.forced { ", force-sampled" } else { "" }
    );
    if let Some(root) = trace.spans.iter().find(|s| s.parent == 0) {
        print_span(root, &trace.spans, 0);
    }
    let stall_ns: u64 = trace
        .spans
        .iter()
        .filter(|s| s.name == "stall_wait")
        .map(|s| s.end_ns - s.start_ns)
        .sum();
    if stall_ns > 0 {
        println!(
            "  -> {:.1}% of this commit was backpressure stall wait",
            stall_ns as f64 / trace.total_ns.max(1) as f64 * 100.0
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db: ShardedDb<LsmDb> = ShardedDb::open(
        MemShardStorage::new_ref(),
        stall_prone_options(),
        ShardedOptions::with_shards(1).maintenance_workers(1),
    )?;
    let hub = Telemetry::new();
    // Trace every operation so the walkthrough is deterministic; production
    // deployments keep the default 1-in-64 sampling plus force-sampling of
    // threshold-crossing slow ops.
    hub.tracer().set_sample_every(1);
    db.attach_telemetry(&hub);

    println!("writing 2000 keys through a 1-file L0 stall gate...");
    let mut batch = WriteBatch::new();
    for key in 0..2_000u64 {
        batch.put(key, vec![(key % 251) as u8; 128]);
        if batch.len() >= 32 {
            db.write(&batch)?;
            batch = WriteBatch::new();
        }
    }
    db.write(&batch)?;
    for key in (0..2_000u64).step_by(7) {
        db.get(key, &())?;
    }

    println!();
    println!(
        "flight recorder: {} sampled, {} forced, slowest commits retained:",
        hub.tracer().sampled_total(),
        hub.tracer().forced_total()
    );
    println!();
    for trace in hub.tracer().slowest(TraceKind::Commit).iter().take(3) {
        print_trace(trace);
        println!();
    }

    for profile in hub.workload_profiles() {
        let (lo, hi) = profile.observed_range().unwrap_or((0, 0));
        let (reads, writes, scans) = profile.mix();
        println!(
            "shard {} workload: {reads} reads / {writes} writes / {scans} scans over [{lo}, {hi}], heat {:?}",
            profile.shard(),
            profile.heatmap(),
        );
    }

    // The full dump is one call away — paste into Perfetto / chrome://tracing.
    println!();
    println!(
        "chrome trace export: {} bytes (hub.tracer().chrome_trace_json())",
        hub.tracer().chrome_trace_json().len()
    );
    Ok(())
}
