//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of the rand 0.8 API the experiments use: [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] (a xoshiro256** generator — deterministic per seed, not
//! the upstream ChaCha stream, which is fine because callers only rely on
//! seed-reproducibility within this workspace) and the [`Rng`] extension trait
//! with `gen_range` / `gen_bool` / `gen`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full value range by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Extension trait with the convenience sampling methods.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Samples a value of `T` from its full range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; splitmix64 never yields
            // four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Minimal `thread_rng` equivalent: a fresh generator seeded from the clock
/// and thread identity. Deterministic tests should use `seed_from_u64`.
pub fn thread_rng() -> rngs::StdRng {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap_or_default()
        .subsec_nanos()
        .hash(&mut h);
    std::thread::current().id().hash(&mut h);
    SeedableRng::seed_from_u64(h.finish())
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..10).map(|_| c.gen_range(0u64..1_000_000)).collect();
        let mut d = StdRng::seed_from_u64(44);
        let diff: Vec<u64> = (0..10).map(|_| d.gen_range(0u64..1_000_000)).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-1000i64..1000);
            assert!((-1000..1000).contains(&i));
            let inc = rng.gen_range(1usize..=6);
            assert!((1..=6).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.1)).count();
        assert!((500..1500).contains(&hits), "got {hits}");
    }
}
