//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x surface the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`, `any::<T>()`,
//! ranges and tuples as strategies, `prop::collection::vec`, `prop_oneof!`,
//! and the `proptest!` macro with `ProptestConfig { cases, .. }`.
//!
//! Inputs are generated from a fixed-seed PRNG (deterministic runs, seed
//! varied per case index); failing cases are reported by panic with the
//! generated input's `Debug` form. There is **no shrinking** — failures
//! print the raw case instead of a minimal one.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Base seed; each case perturbs it.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Like the real proptest, the PROPTEST_CASES environment variable
        // overrides the default case count (the nightly stress workflow
        // raises it to 2048).
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            seed: 0x1A5E_12F0_0D5E_ED00,
        }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V>(std::rc::Rc<dyn Fn(&mut StdRng) -> V>);

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (self.0)(rng)
    }
}

/// Strategy adapter created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice between boxed alternative strategies (see `prop_oneof!`).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! requires at least one arm");
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{fmt, Range, StdRng, Strategy};
    use rand::Rng as _;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Drives one `proptest!`-generated test function. Not called directly.
pub fn run_cases(config: &ProptestConfig, mut case: impl FnMut(&mut StdRng, u32)) {
    for i in 0..config.cases {
        let mut rng = StdRng::seed_from_u64(config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
        case(&mut rng, i);
    }
}

/// Uniform choice between strategy arms of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(, $($fmt:tt)*)?) => {
        assert_eq!($a, $b $(, $($fmt)*)?)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            // The `#[test]` attribute is written by the caller (as upstream
            // proptest requires) and re-emitted via `$(#[$meta])*`.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, |rng, _case| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    $body
                });
            }
        )*
    };
    (
        $($(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// The commonly-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, ProptestConfig,
        Strategy,
    };

    /// Alias module so `prop::collection::vec(...)` works as upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        A(u8),
        B(i8, usize),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            any::<u8>().prop_map(Op::A),
            (any::<i8>(), 0usize..4).prop_map(|(v, c)| Op::B(v, c)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// Generated vectors respect the requested length range.
        #[test]
        fn vec_lengths_in_range(ops in prop::collection::vec(op_strategy(), 1..20), n in 1usize..=6) {
            prop_assert!((1..20).contains(&ops.len()));
            prop_assert!((1..=6).contains(&n));
            for op in &ops {
                match op {
                    Op::A(v) => prop_assert!(*v as u32 <= u8::MAX as u32),
                    Op::B(v, c) => prop_assert!(*c < 4 && *v as i32 >= i8::MIN as i32),
                }
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let cfg = ProptestConfig {
            cases: 3,
            ..ProptestConfig::default()
        };
        let mut first: Vec<u8> = Vec::new();
        crate::run_cases(&cfg, |rng, _| first.push(any::<u8>().generate(rng)));
        let mut second: Vec<u8> = Vec::new();
        crate::run_cases(&cfg, |rng, _| second.push(any::<u8>().generate(rng)));
        assert_eq!(first, second);
    }
}
