//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no network access, so the workspace vendors the
//! tiny subset of the `parking_lot` API the engines use: [`Mutex`], [`RwLock`]
//! and [`Condvar`] with guard-returning (non-`Result`) lock methods. Poisoning
//! is ignored — a panicking thread does not wedge the lock, matching
//! parking_lot semantics closely enough for this workspace.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Holds an `Option` so [`Condvar::wait`] can take
/// and restore the underlying std guard through an `&mut` borrow.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

/// A reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Attempts to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(TryLockError::Poisoned(e)) => Some(RwLockWriteGuard(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of [`Condvar::wait_for`]: whether the wait hit its timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`] via `&mut` borrows.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken");
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken");
        let (inner, res) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
