//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `black_box`) with a simple wall-clock
//! measurement loop: a short warm-up, then `sample_size` timed samples, with
//! mean/min reported on stdout. No statistics, plots or baselines.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id `<name>/<parameter>`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Prevents the compiler from optimising away a computed value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Configures the default sample count (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(name.to_string(), f);
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function(&mut self, id: impl IntoBenchId, mut f: impl FnMut(&mut Bencher)) {
        let label = if self.name.is_empty() {
            id.into_bench_id()
        } else {
            format!("{}/{}", self.name, id.into_bench_id())
        };
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&label);
    }

    /// Benchmarks a closure parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Conversion helper so both `&str`, `String` and [`BenchmarkId`] name benches.
pub trait IntoBenchId {
    /// The display label.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.name
    }
}

/// Runs and times the benchmarked closure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, first warming up then collecting samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: also estimates how many iterations fit in one sample.
        let warm_start = Instant::now();
        let mut iters_in_warmup: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            hint::black_box(routine());
            iters_in_warmup += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_in_warmup.max(1) as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(Duration::from_secs_f64(
                elapsed.as_secs_f64() / iters_per_sample as f64,
            ));
        }
    }

    /// Times `routine` with a fresh `setup()` value per invocation; only the
    /// routine is meant to be measured, but this shim includes the setup time
    /// in its samples (the workspace benches use cheap setups).
    pub fn iter_with_setup<S, O>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> O,
    ) {
        self.iter(|| routine(setup()));
    }

    /// `iter_batched` with per-iteration batches, as upstream criterion.
    pub fn iter_batched<S, O>(
        &mut self,
        setup: impl FnMut() -> S,
        routine: impl FnMut(S) -> O,
        _size: BatchSize,
    ) {
        self.iter_with_setup(setup, routine);
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let total: f64 = self.samples.iter().map(|d| d.as_secs_f64()).sum();
        let mean = total / self.samples.len() as f64;
        let min = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64())
            .fold(f64::MAX, f64::min);
        println!(
            "{label:<40} mean {:>12} min {:>12} ({} samples)",
            format_time(mean),
            format_time(min),
            self.samples.len()
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Batch sizing hint, accepted for API compatibility and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, n| b.iter(|| n * 2));
        group.finish();
        assert!(count > 0);
    }
}
