//! Rows and row fragments.
//!
//! A [`RowFragment`] is a set of `(column id, value)` pairs for one key. It
//! represents, uniformly:
//!
//! * a complete row (every schema column present) — an insert;
//! * a partial row (a subset of columns) — a LASER column update (§4.2);
//! * a column-group fragment stored in one CG's sorted run (§4.1, the
//!   "simulated column-group representation": the key is stored alongside the
//!   CG's column values).
//!
//! Fragments are encoded as a presence bitmap over the schema's columns
//! followed by the encoded values of the present columns in ascending column
//! order. Merging fragments (newer over older) implements the paper's
//! partial-row semantics: `100:-,b',c',-` merged with `100:a,b,c,d` gives
//! `100:a,b',c',d`.

use crate::schema::{ColumnId, Projection, Schema};
use crate::value::Value;
use lsm_storage::{Error, Result};

/// A set of column values for a single key.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RowFragment {
    /// Present columns, sorted by column id.
    cells: Vec<(ColumnId, Value)>,
}

impl RowFragment {
    /// An empty fragment.
    pub fn empty() -> Self {
        RowFragment::default()
    }

    /// Builds a fragment from `(column, value)` pairs (need not be sorted).
    pub fn from_cells(mut cells: Vec<(ColumnId, Value)>) -> Self {
        cells.sort_by_key(|(c, _)| *c);
        cells.dedup_by_key(|(c, _)| *c);
        RowFragment { cells }
    }

    /// Builds a complete row over `schema` from values in column order.
    /// Panics if the number of values does not match the schema width.
    pub fn full_row(schema: &Schema, values: Vec<Value>) -> Self {
        assert_eq!(
            values.len(),
            schema.num_columns(),
            "full_row requires one value per schema column"
        );
        RowFragment {
            cells: values.into_iter().enumerate().collect(),
        }
    }

    /// Builds the benchmark's integer row: column `ai` gets value `base + i`.
    pub fn int_row(schema: &Schema, base: i64) -> Self {
        RowFragment {
            cells: (0..schema.num_columns())
                .map(|c| (c, Value::Int(base + c as i64 + 1)))
                .collect(),
        }
    }

    /// Number of present columns.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns true if no columns are present.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Returns the value of `col`, if present.
    pub fn get(&self, col: ColumnId) -> Option<&Value> {
        self.cells
            .binary_search_by_key(&col, |(c, _)| *c)
            .ok()
            .map(|i| &self.cells[i].1)
    }

    /// Sets (or replaces) the value of `col`.
    pub fn set(&mut self, col: ColumnId, value: Value) {
        match self.cells.binary_search_by_key(&col, |(c, _)| *c) {
            Ok(i) => self.cells[i].1 = value,
            Err(i) => self.cells.insert(i, (col, value)),
        }
    }

    /// Returns true if `col` is present.
    pub fn contains(&self, col: ColumnId) -> bool {
        self.get(col).is_some()
    }

    /// Iterates `(column, value)` pairs in ascending column order.
    pub fn iter(&self) -> impl Iterator<Item = (ColumnId, &Value)> {
        self.cells.iter().map(|(c, v)| (*c, v))
    }

    /// The set of present columns as a [`Projection`].
    pub fn columns(&self) -> Projection {
        Projection::of(self.cells.iter().map(|(c, _)| *c))
    }

    /// Returns true if every schema column is present.
    pub fn is_complete(&self, schema: &Schema) -> bool {
        self.len() == schema.num_columns()
            && self.cells.iter().enumerate().all(|(i, (c, _))| i == *c)
    }

    /// Returns true if every column of `cols` is present.
    pub fn covers(&self, cols: &Projection) -> bool {
        cols.iter().all(|c| self.contains(c))
    }

    /// Returns a new fragment restricted to the columns in `cols`.
    pub fn restrict(&self, cols: &[ColumnId]) -> RowFragment {
        RowFragment {
            cells: self
                .cells
                .iter()
                .filter(|(c, _)| cols.contains(c))
                .cloned()
                .collect(),
        }
    }

    /// Returns a new fragment restricted to a [`Projection`].
    pub fn project(&self, projection: &Projection) -> RowFragment {
        RowFragment {
            cells: self
                .cells
                .iter()
                .filter(|(c, _)| projection.contains(*c))
                .cloned()
                .collect(),
        }
    }

    /// Overlays `self` (newer) on top of `older`, returning the merged
    /// fragment: columns present in `self` win; other columns come from
    /// `older`. This is the paper's §4.2 merge of partial rows.
    pub fn merge_over(&self, older: &RowFragment) -> RowFragment {
        let mut merged = older.clone();
        for (c, v) in &self.cells {
            merged.set(*c, v.clone());
        }
        merged
    }

    /// Adds every column of `other` that is not already present. Used when
    /// accumulating newest-first: earlier (newer) values are never overwritten.
    pub fn fill_missing_from(&mut self, other: &RowFragment) {
        for (c, v) in &other.cells {
            if !self.contains(*c) {
                self.set(*c, v.clone());
            }
        }
    }

    /// Approximate in-memory size of the fragment in bytes.
    pub fn size_bytes(&self) -> usize {
        self.cells.iter().map(|(_, v)| v.size_bytes() + 4).sum()
    }

    /// Encodes the fragment for storage: presence bitmap over
    /// `schema_columns` bits, then the present values in column order.
    pub fn encode(&self, schema_columns: usize) -> Vec<u8> {
        let bitmap_len = schema_columns.div_ceil(8);
        let mut out = vec![0u8; bitmap_len];
        for (c, _) in &self.cells {
            debug_assert!(*c < schema_columns, "column id out of schema range");
            out[c / 8] |= 1 << (c % 8);
        }
        for (_, v) in &self.cells {
            v.encode_to(&mut out);
        }
        out
    }

    /// Decodes a fragment encoded by [`RowFragment::encode`].
    pub fn decode(buf: &[u8], schema_columns: usize) -> Result<RowFragment> {
        let bitmap_len = schema_columns.div_ceil(8);
        if buf.len() < bitmap_len {
            return Err(Error::corruption("row fragment shorter than its bitmap"));
        }
        let (bitmap, mut rest) = buf.split_at(bitmap_len);
        let mut cells = Vec::new();
        for c in 0..schema_columns {
            if bitmap[c / 8] & (1 << (c % 8)) != 0 {
                let (v, n) = Value::decode(rest)?;
                cells.push((c, v));
                rest = &rest[n..];
            }
        }
        if !rest.is_empty() {
            return Err(Error::corruption("trailing bytes after row fragment"));
        }
        Ok(RowFragment { cells })
    }
}

impl FromIterator<(ColumnId, Value)> for RowFragment {
    fn from_iter<T: IntoIterator<Item = (ColumnId, Value)>>(iter: T) -> Self {
        RowFragment::from_cells(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(cells: &[(usize, i64)]) -> RowFragment {
        RowFragment::from_cells(cells.iter().map(|&(c, v)| (c, Value::Int(v))).collect())
    }

    #[test]
    fn construction_and_accessors() {
        let f = frag(&[(3, 30), (1, 10), (2, 20)]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.get(1), Some(&Value::Int(10)));
        assert_eq!(f.get(0), None);
        assert!(f.contains(3));
        assert!(!f.contains(0));
        assert_eq!(f.columns().to_vec(), vec![1, 2, 3]);
        let order: Vec<ColumnId> = f.iter().map(|(c, _)| c).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn full_row_and_completeness() {
        let schema = Schema::with_columns(4);
        let row = RowFragment::full_row(&schema, vec![1.into(), 2.into(), 3.into(), 4.into()]);
        assert!(row.is_complete(&schema));
        assert!(!frag(&[(0, 1), (2, 3)]).is_complete(&schema));
        let int_row = RowFragment::int_row(&schema, 100);
        assert!(int_row.is_complete(&schema));
        assert_eq!(int_row.get(2), Some(&Value::Int(103)));
    }

    #[test]
    fn restrict_and_project() {
        let f = frag(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let r = f.restrict(&[1, 3, 9]);
        assert_eq!(r.columns().to_vec(), vec![1, 3]);
        let p = f.project(&Projection::of([0, 2]));
        assert_eq!(p.columns().to_vec(), vec![0, 2]);
        assert!(f.covers(&Projection::of([1, 2])));
        assert!(!f.covers(&Projection::of([1, 7])));
    }

    #[test]
    fn merge_over_matches_paper_example() {
        // Key 100: update of columns B,C over the full row a,b,c,d (paper §4.2).
        let older = frag(&[(0, 1), (1, 2), (2, 3), (3, 4)]); // a,b,c,d
        let newer = frag(&[(1, 20), (2, 30)]); // -,b',c',-
        let merged = newer.merge_over(&older);
        assert_eq!(merged.get(0), Some(&Value::Int(1)));
        assert_eq!(merged.get(1), Some(&Value::Int(20)));
        assert_eq!(merged.get(2), Some(&Value::Int(30)));
        assert_eq!(merged.get(3), Some(&Value::Int(4)));
    }

    #[test]
    fn fill_missing_does_not_overwrite() {
        let mut acc = frag(&[(1, 100)]);
        acc.fill_missing_from(&frag(&[(0, 1), (1, 2), (2, 3)]));
        assert_eq!(acc.get(0), Some(&Value::Int(1)));
        assert_eq!(acc.get(1), Some(&Value::Int(100)), "newer value must win");
        assert_eq!(acc.get(2), Some(&Value::Int(3)));
    }

    #[test]
    fn encode_decode_roundtrip() {
        for schema_cols in [1usize, 8, 9, 30, 100] {
            let cells: Vec<(ColumnId, Value)> = (0..schema_cols)
                .step_by(3)
                .map(|c| (c, Value::Int(c as i64 * 7 - 5)))
                .collect();
            let f = RowFragment::from_cells(cells);
            let enc = f.encode(schema_cols);
            let dec = RowFragment::decode(&enc, schema_cols).unwrap();
            assert_eq!(dec, f);
        }
    }

    #[test]
    fn encode_decode_empty_fragment() {
        let f = RowFragment::empty();
        let enc = f.encode(30);
        assert_eq!(enc.len(), 4); // just the bitmap
        assert_eq!(RowFragment::decode(&enc, 30).unwrap(), f);
    }

    #[test]
    fn decode_rejects_corruption() {
        let f = frag(&[(0, 1), (5, 2)]);
        let enc = f.encode(8);
        assert!(RowFragment::decode(&enc[..enc.len() - 1], 8).is_err());
        let mut extended = enc.clone();
        extended.push(0);
        assert!(RowFragment::decode(&extended, 8).is_err());
        assert!(RowFragment::decode(&[], 8).is_err());
    }

    #[test]
    fn mixed_value_types_roundtrip() {
        let f = RowFragment::from_cells(vec![
            (0, Value::Int(-3)),
            (2, Value::Float(1.25)),
            (4, Value::string("hello")),
        ]);
        let enc = f.encode(6);
        assert_eq!(RowFragment::decode(&enc, 6).unwrap(), f);
    }

    #[test]
    fn set_replaces_existing() {
        let mut f = frag(&[(1, 1)]);
        f.set(1, Value::Int(2));
        f.set(0, Value::Int(0));
        assert_eq!(f.get(1), Some(&Value::Int(2)));
        assert_eq!(f.columns().to_vec(), vec![0, 1]);
    }

    #[test]
    fn from_cells_dedups_keeping_first() {
        let f = RowFragment::from_cells(vec![(1, Value::Int(10)), (1, Value::Int(20))]);
        assert_eq!(f.len(), 1);
    }
}
