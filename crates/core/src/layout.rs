//! Column groups and per-level layouts: the design space of Real-Time
//! LSM-Trees (Section 3 of the paper).
//!
//! A [`ColumnGroup`] is a set of columns stored together in row format. A
//! [`LevelLayout`] partitions the schema's columns into column groups for one
//! level. A [`LayoutSpec`] assigns a layout to every level of the tree —
//! Level 0 is always row-oriented (a single CG spanning the schema), and each
//! deeper level must satisfy the **CG containment assumption**: every CG at
//! level `i` is a subset of exactly one CG at level `i-1`.
//!
//! The built-in constructors cover every design evaluated in the paper:
//! pure row store, pure column store, equi-width `cg_size` designs,
//! `HTAP-simple` and the advisor's `D-opt` (Figure 9b).

use crate::schema::{ColumnId, Projection, Schema};
use lsm_storage::{Error, Result};
use std::fmt;

/// A set of columns stored together in row format.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnGroup {
    columns: Vec<ColumnId>,
}

impl ColumnGroup {
    /// Creates a column group (column ids are sorted and deduplicated).
    pub fn new(mut columns: Vec<ColumnId>) -> Self {
        columns.sort_unstable();
        columns.dedup();
        ColumnGroup { columns }
    }

    /// A column group over a contiguous 1-based column range, matching the
    /// paper's notation: `<16-30>` → `ColumnGroup::range_1based(16, 30)`.
    pub fn range_1based(start: usize, end: usize) -> Self {
        ColumnGroup::new((start..=end).map(|i| i - 1).collect())
    }

    /// The columns in this group, ascending.
    pub fn columns(&self) -> &[ColumnId] {
        &self.columns
    }

    /// Number of columns (the paper's `cg_size`).
    pub fn size(&self) -> usize {
        self.columns.len()
    }

    /// Returns true if the group has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Returns true if `col` belongs to this group.
    pub fn contains(&self, col: ColumnId) -> bool {
        self.columns.binary_search(&col).is_ok()
    }

    /// Returns true if every column of `self` appears in `other`.
    pub fn is_subset_of(&self, other: &ColumnGroup) -> bool {
        self.columns.iter().all(|c| other.contains(*c))
    }

    /// Returns true if this group shares at least one column with `projection`.
    pub fn overlaps_projection(&self, projection: &Projection) -> bool {
        self.columns.iter().any(|c| projection.contains(*c))
    }

    /// Returns true if this group shares at least one column with `other`.
    pub fn overlaps(&self, other: &ColumnGroup) -> bool {
        self.columns.iter().any(|c| other.contains(*c))
    }
}

impl fmt::Display for ColumnGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render contiguous runs like the paper: <1-15> or <16,18,20>.
        if self.columns.is_empty() {
            return write!(f, "<>");
        }
        let one_based: Vec<usize> = self.columns.iter().map(|c| c + 1).collect();
        let contiguous = one_based.windows(2).all(|w| w[1] == w[0] + 1);
        if contiguous && one_based.len() > 1 {
            write!(f, "<{}-{}>", one_based[0], one_based[one_based.len() - 1])
        } else {
            let parts: Vec<String> = one_based.iter().map(|c| c.to_string()).collect();
            write!(f, "<{}>", parts.join(","))
        }
    }
}

/// The column-group partition used by one level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelLayout {
    groups: Vec<ColumnGroup>,
}

impl LevelLayout {
    /// Creates a layout from groups. Groups are kept in the given order.
    pub fn new(groups: Vec<ColumnGroup>) -> Self {
        LevelLayout { groups }
    }

    /// A single group containing every schema column (row-oriented level).
    pub fn row_oriented(schema: &Schema) -> Self {
        LevelLayout {
            groups: vec![ColumnGroup::new(schema.all_columns())],
        }
    }

    /// One group per column (column-oriented level).
    pub fn column_oriented(schema: &Schema) -> Self {
        LevelLayout {
            groups: (0..schema.num_columns())
                .map(|c| ColumnGroup::new(vec![c]))
                .collect(),
        }
    }

    /// Equal-width groups of `cg_size` columns (the last group may be smaller),
    /// as used throughout the paper's cost-model validation (Figure 7).
    pub fn equi_width(schema: &Schema, cg_size: usize) -> Self {
        let cg_size = cg_size.max(1);
        let groups = schema
            .all_columns()
            .chunks(cg_size)
            .map(|chunk| ColumnGroup::new(chunk.to_vec()))
            .collect();
        LevelLayout { groups }
    }

    /// The column groups.
    pub fn groups(&self) -> &[ColumnGroup] {
        &self.groups
    }

    /// Number of groups (the paper's `g_i`).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Returns the index of the group containing `col`, if any.
    pub fn group_of(&self, col: ColumnId) -> Option<usize> {
        self.groups.iter().position(|g| g.contains(col))
    }

    /// Indices of the groups that overlap `projection` (the paper's `G_i`).
    pub fn groups_overlapping(&self, projection: &Projection) -> Vec<usize> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.overlaps_projection(projection))
            .map(|(i, _)| i)
            .collect()
    }

    /// The paper's `E^g_i`: number of CGs needed to answer `projection`.
    pub fn required_groups(&self, projection: &Projection) -> usize {
        self.groups_overlapping(projection).len()
    }

    /// The paper's `E^G_i`: the sum of `(1 + cg_size)` over the CGs needed by
    /// `projection` (each fetched CG carries the key alongside its columns).
    pub fn required_group_width(&self, projection: &Projection) -> usize {
        self.groups_overlapping(projection)
            .iter()
            .map(|&i| 1 + self.groups[i].size())
            .sum()
    }

    /// Validates that the layout is a partition of the schema's columns:
    /// every column appears in exactly one group.
    pub fn validate_partition(&self, schema: &Schema) -> Result<()> {
        let mut seen = vec![false; schema.num_columns()];
        for g in &self.groups {
            if g.is_empty() {
                return Err(Error::invalid("empty column group"));
            }
            for &c in g.columns() {
                if c >= schema.num_columns() {
                    return Err(Error::invalid(format!("column {c} outside schema")));
                }
                if seen[c] {
                    return Err(Error::invalid(format!("column {c} appears in two groups")));
                }
                seen[c] = true;
            }
        }
        if seen.iter().any(|s| !s) {
            return Err(Error::invalid("layout does not cover every schema column"));
        }
        Ok(())
    }

    /// Checks the CG containment constraint: every group of `self` must be a
    /// subset of some group of `coarser` (the layout of the level above).
    pub fn is_contained_in(&self, coarser: &LevelLayout) -> bool {
        self.groups
            .iter()
            .all(|g| coarser.groups.iter().any(|cg| g.is_subset_of(cg)))
    }
}

impl fmt::Display for LevelLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for g in &self.groups {
            write!(f, "{g}")?;
        }
        Ok(())
    }
}

/// A complete Real-Time LSM-Tree design: one [`LevelLayout`] per disk level.
///
/// Level 0 is always row-oriented; `layouts[i]` describes level `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutSpec {
    schema: Schema,
    layouts: Vec<LevelLayout>,
    name: String,
}

impl LayoutSpec {
    /// Creates a spec from per-level layouts. `layouts[0]` must be
    /// row-oriented and every level must satisfy partition validity and CG
    /// containment with respect to the level above.
    pub fn new(schema: Schema, layouts: Vec<LevelLayout>, name: impl Into<String>) -> Result<Self> {
        if layouts.is_empty() {
            return Err(Error::invalid("a layout spec needs at least one level"));
        }
        let spec = LayoutSpec {
            schema,
            layouts,
            name: name.into(),
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Validates partitioning, the row-oriented Level-0 rule and containment.
    pub fn validate(&self) -> Result<()> {
        if self.layouts[0].num_groups() != 1
            || self.layouts[0].groups()[0].size() != self.schema.num_columns()
        {
            return Err(Error::invalid("level 0 must be row-oriented (a single CG)"));
        }
        for (i, layout) in self.layouts.iter().enumerate() {
            layout
                .validate_partition(&self.schema)
                .map_err(|e| Error::invalid(format!("level {i}: {e}")))?;
            if i > 0 && !layout.is_contained_in(&self.layouts[i - 1]) {
                return Err(Error::invalid(format!(
                    "level {i} violates the CG containment constraint"
                )));
            }
        }
        Ok(())
    }

    /// The schema this design applies to.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// A human-readable design name (e.g. `rocksdb-row`, `cg-size-6`, `D-opt`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of levels covered by the spec.
    pub fn num_levels(&self) -> usize {
        self.layouts.len()
    }

    /// Layout of level `i` (clamped to the deepest described level, so a tree
    /// with more levels than the spec keeps the last layout for extra levels).
    pub fn level(&self, i: usize) -> &LevelLayout {
        &self.layouts[i.min(self.layouts.len() - 1)]
    }

    /// All layouts.
    pub fn levels(&self) -> &[LevelLayout] {
        &self.layouts
    }

    /// The paper's `g_i` for every level.
    pub fn groups_per_level(&self) -> Vec<usize> {
        self.layouts.iter().map(|l| l.num_groups()).collect()
    }

    // --- Built-in designs used in the evaluation -------------------------

    /// Pure row-oriented design (default RocksDB): every level is one CG.
    pub fn row_store(schema: &Schema, num_levels: usize) -> Self {
        let layouts = vec![LevelLayout::row_oriented(schema); num_levels.max(1)];
        LayoutSpec {
            schema: schema.clone(),
            layouts,
            name: "rocksdb-row".into(),
        }
    }

    /// Pure column-oriented design: Level 0 row-oriented, all deeper levels
    /// one CG per column.
    pub fn column_store(schema: &Schema, num_levels: usize) -> Self {
        let mut layouts = vec![LevelLayout::row_oriented(schema)];
        for _ in 1..num_levels.max(1) {
            layouts.push(LevelLayout::column_oriented(schema));
        }
        LayoutSpec {
            schema: schema.clone(),
            layouts,
            name: "rocksdb-col".into(),
        }
    }

    /// Equi-width design: Level 0 row-oriented, all deeper levels split into
    /// groups of `cg_size` columns (the paper's `cg-size-k` baselines).
    pub fn equi_width(schema: &Schema, num_levels: usize, cg_size: usize) -> Self {
        let mut layouts = vec![LevelLayout::row_oriented(schema)];
        for _ in 1..num_levels.max(1) {
            layouts.push(LevelLayout::equi_width(schema, cg_size));
        }
        LayoutSpec {
            schema: schema.clone(),
            layouts,
            name: format!("cg-size-{cg_size}"),
        }
    }

    /// The paper's `HTAP-simple` baseline: the first `row_levels` levels are
    /// row-oriented and the remaining levels are column-oriented.
    pub fn htap_simple(schema: &Schema, num_levels: usize, row_levels: usize) -> Self {
        let mut layouts = Vec::with_capacity(num_levels.max(1));
        for i in 0..num_levels.max(1) {
            if i < row_levels.max(1) {
                layouts.push(LevelLayout::row_oriented(schema));
            } else {
                layouts.push(LevelLayout::column_oriented(schema));
            }
        }
        LayoutSpec {
            schema: schema.clone(),
            layouts,
            name: "HTAP-simple".into(),
        }
    }

    /// The `D-opt` design of Figure 9(b): the layout the design advisor picks
    /// for the paper's HTAP workload `HW` on the 30-column table, 8 levels.
    ///
    /// ```text
    /// L0: <1-30>                    L4: <1-15><16-20><21-30>
    /// L1: <1-30>                    L5: <1-15><16-20><21-30>
    /// L2: <1-15><16-30>             L6: <1-15><16-20><21-27><28-30>
    /// L3: <1-15><16-30>             L7: <1-15><16-20><21-27><28-30>
    /// ```
    pub fn d_opt_paper(schema: &Schema) -> Result<Self> {
        if schema.num_columns() != 30 {
            return Err(Error::invalid(
                "D-opt (paper) is defined for the 30-column table",
            ));
        }
        let cg = ColumnGroup::range_1based;
        let layouts = vec![
            LevelLayout::row_oriented(schema),
            LevelLayout::row_oriented(schema),
            LevelLayout::new(vec![cg(1, 15), cg(16, 30)]),
            LevelLayout::new(vec![cg(1, 15), cg(16, 30)]),
            LevelLayout::new(vec![cg(1, 15), cg(16, 20), cg(21, 30)]),
            LevelLayout::new(vec![cg(1, 15), cg(16, 20), cg(21, 30)]),
            LevelLayout::new(vec![cg(1, 15), cg(16, 20), cg(21, 27), cg(28, 30)]),
            LevelLayout::new(vec![cg(1, 15), cg(16, 20), cg(21, 27), cg(28, 30)]),
        ];
        LayoutSpec::new(schema.clone(), layouts, "D-opt")
    }

    /// Renames the spec (used by the advisor and benchmarks).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl fmt::Display for LayoutSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "design {} ({} levels):", self.name, self.layouts.len())?;
        for (i, layout) in self.layouts.iter().enumerate() {
            writeln!(f, "  L{i}: {layout}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_group_basics() {
        let g = ColumnGroup::new(vec![3, 1, 2, 3]);
        assert_eq!(g.columns(), &[1, 2, 3]);
        assert_eq!(g.size(), 3);
        assert!(g.contains(2));
        assert!(!g.contains(0));
        assert!(ColumnGroup::new(vec![1, 2]).is_subset_of(&g));
        assert!(!ColumnGroup::new(vec![0, 1]).is_subset_of(&g));
        assert!(g.overlaps(&ColumnGroup::new(vec![3, 4])));
        assert!(!g.overlaps(&ColumnGroup::new(vec![4, 5])));
        assert!(g.overlaps_projection(&Projection::of([3, 9])));
        assert!(!g.overlaps_projection(&Projection::of([0, 9])));
    }

    #[test]
    fn column_group_display_matches_paper_notation() {
        assert_eq!(ColumnGroup::range_1based(1, 15).to_string(), "<1-15>");
        assert_eq!(ColumnGroup::range_1based(28, 30).to_string(), "<28-30>");
        assert_eq!(ColumnGroup::new(vec![0]).to_string(), "<1>");
        assert_eq!(ColumnGroup::new(vec![0, 2]).to_string(), "<1,3>");
    }

    #[test]
    fn level_layout_constructors() {
        let schema = Schema::with_columns(10);
        assert_eq!(LevelLayout::row_oriented(&schema).num_groups(), 1);
        assert_eq!(LevelLayout::column_oriented(&schema).num_groups(), 10);
        let equi = LevelLayout::equi_width(&schema, 3);
        assert_eq!(equi.num_groups(), 4); // 3+3+3+1
        assert_eq!(equi.groups()[3].size(), 1);
        for layout in [
            LevelLayout::row_oriented(&schema),
            LevelLayout::column_oriented(&schema),
            equi,
        ] {
            layout.validate_partition(&schema).unwrap();
        }
    }

    #[test]
    fn required_groups_matches_paper_examples() {
        // Paper §5: CGs <A,B>;<C,D>, Π={A,C} -> E^g=2, Π={A,B} -> E^g=1.
        let layout = LevelLayout::new(vec![
            ColumnGroup::new(vec![0, 1]),
            ColumnGroup::new(vec![2, 3]),
        ]);
        assert_eq!(layout.required_groups(&Projection::of([0, 2])), 2);
        assert_eq!(layout.required_groups(&Projection::of([0, 1])), 1);
        // E^G: Π={A,C} -> (1+2)+(1+2)=6, Π={A,B} -> 3.
        assert_eq!(layout.required_group_width(&Projection::of([0, 2])), 6);
        assert_eq!(layout.required_group_width(&Projection::of([0, 1])), 3);
        assert_eq!(layout.group_of(3), Some(1));
        assert_eq!(layout.group_of(9), None);
    }

    #[test]
    fn partition_validation_rejects_bad_layouts() {
        let schema = Schema::with_columns(4);
        // Missing column 3.
        let l = LevelLayout::new(vec![
            ColumnGroup::new(vec![0, 1]),
            ColumnGroup::new(vec![2]),
        ]);
        assert!(l.validate_partition(&schema).is_err());
        // Duplicate column.
        let l = LevelLayout::new(vec![
            ColumnGroup::new(vec![0, 1, 2]),
            ColumnGroup::new(vec![2, 3]),
        ]);
        assert!(l.validate_partition(&schema).is_err());
        // Out-of-range column.
        let l = LevelLayout::new(vec![ColumnGroup::new(vec![0, 1, 2, 3, 4])]);
        assert!(l.validate_partition(&schema).is_err());
        // Empty group.
        let l = LevelLayout::new(vec![
            ColumnGroup::new(vec![]),
            ColumnGroup::new(vec![0, 1, 2, 3]),
        ]);
        assert!(l.validate_partition(&schema).is_err());
    }

    #[test]
    fn containment_constraint() {
        // Paper §3.2: level-1 has <A,B>;<C,D>. <B,C> is not valid below it.
        let upper = LevelLayout::new(vec![
            ColumnGroup::new(vec![0, 1]),
            ColumnGroup::new(vec![2, 3]),
        ]);
        let ok = LevelLayout::new(vec![
            ColumnGroup::new(vec![0]),
            ColumnGroup::new(vec![1]),
            ColumnGroup::new(vec![2, 3]),
        ]);
        let bad = LevelLayout::new(vec![
            ColumnGroup::new(vec![0]),
            ColumnGroup::new(vec![1, 2]),
            ColumnGroup::new(vec![3]),
        ]);
        assert!(ok.is_contained_in(&upper));
        assert!(!bad.is_contained_in(&upper));
    }

    #[test]
    fn builtin_designs_are_valid() {
        let narrow = Schema::narrow();
        let wide = Schema::wide();
        for spec in [
            LayoutSpec::row_store(&narrow, 8),
            LayoutSpec::column_store(&narrow, 8),
            LayoutSpec::equi_width(&narrow, 8, 2),
            LayoutSpec::equi_width(&narrow, 8, 3),
            LayoutSpec::equi_width(&narrow, 8, 6),
            LayoutSpec::equi_width(&narrow, 8, 15),
            LayoutSpec::htap_simple(&narrow, 8, 6),
            LayoutSpec::d_opt_paper(&narrow).unwrap(),
            LayoutSpec::column_store(&wide, 5),
            LayoutSpec::equi_width(&wide, 5, 10),
        ] {
            spec.validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", spec.name()));
        }
    }

    #[test]
    fn spec_rejects_invalid_constructions() {
        let schema = Schema::with_columns(4);
        // Level 0 not row-oriented.
        let bad = LayoutSpec::new(
            schema.clone(),
            vec![LevelLayout::column_oriented(&schema)],
            "bad",
        );
        assert!(bad.is_err());
        // Containment violated between levels 1 and 2.
        let bad = LayoutSpec::new(
            schema.clone(),
            vec![
                LevelLayout::row_oriented(&schema),
                LevelLayout::new(vec![
                    ColumnGroup::new(vec![0, 1]),
                    ColumnGroup::new(vec![2, 3]),
                ]),
                LevelLayout::new(vec![
                    ColumnGroup::new(vec![0]),
                    ColumnGroup::new(vec![1, 2]),
                    ColumnGroup::new(vec![3]),
                ]),
            ],
            "bad",
        );
        assert!(bad.is_err());
        // Empty spec.
        assert!(LayoutSpec::new(schema, vec![], "bad").is_err());
    }

    #[test]
    fn d_opt_matches_figure_9b() {
        let spec = LayoutSpec::d_opt_paper(&Schema::narrow()).unwrap();
        assert_eq!(spec.num_levels(), 8);
        assert_eq!(spec.groups_per_level(), vec![1, 1, 2, 2, 3, 3, 4, 4]);
        assert_eq!(spec.level(6).groups()[3].to_string(), "<28-30>");
        assert_eq!(spec.level(2).groups()[0].to_string(), "<1-15>");
        // Requesting a level beyond the spec clamps to the deepest layout.
        assert_eq!(spec.level(20).num_groups(), 4);
        assert!(LayoutSpec::d_opt_paper(&Schema::wide()).is_err());
    }

    #[test]
    fn spec_display_lists_levels() {
        let spec = LayoutSpec::equi_width(&Schema::with_columns(4), 3, 2);
        let text = spec.to_string();
        assert!(text.contains("L0: <1-4>"));
        assert!(text.contains("L1: <1-2><3-4>"));
    }
}
