//! LASER's merging iterators (Section 4.3–4.4 of the paper).
//!
//! * [`ConcatIterator`] — iterates the non-overlapping SSTs of one sorted run
//!   (one column group at one level) in key order. Since the read-path
//!   overhaul this is the substrate's lazy
//!   [`LevelConcatIterator`](lsm_storage::iterator::LevelConcatIterator)
//!   re-exported: each table is opened only when the cursor crosses into it,
//!   and a seek binary-searches the run and touches exactly one file.
//! * [`ColumnMergingIterator`] — stitches column values from the different
//!   column groups *within one level*: for every user key it combines the
//!   fragments found in each overlapping CG run into a single row fragment.
//! * [`LevelMergingIterator`] — merges entries *across levels* (and the
//!   memtable / Level-0 runs), discarding old column versions: newer sources
//!   are consulted first and only columns not yet seen are filled in from
//!   older sources.
//!
//! All three operate on [`RowFragment`]s keyed by user key, which is the unit
//! the engine's read paths and the CG-local compaction consume.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lsm_storage::iterator::BoxedIterator;
use lsm_storage::types::{InternalKey, SeqNo, UserKey, ValueKind};
use lsm_storage::Result;

/// The non-overlapping-run concatenating iterator, shared with the substrate
/// (one lazily-opened table at a time; see the module docs).
pub use lsm_storage::iterator::LevelConcatIterator as ConcatIterator;

use crate::row::RowFragment;
use crate::schema::Projection;

/// One version of one key produced by a fragment source.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentVersion {
    /// Sequence number of the contributing write (newest of the merged writes).
    pub seq: SeqNo,
    /// Record kind: `Full`, `Partial` or `Tombstone`.
    pub kind: ValueKind,
    /// The column values carried by this version (empty for tombstones).
    pub fragment: RowFragment,
}

/// A stream of `(user key, versions)` pairs in ascending user-key order.
///
/// `versions` are returned newest-first. Implementations include single
/// row-oriented runs (memtable snapshots, Level-0 SSTs) and whole levels
/// stitched across column groups.
pub trait FragmentSource {
    /// Positions the source at the first key `>= target`.
    fn seek(&mut self, target: UserKey) -> Result<()>;
    /// The user key the source is currently positioned on, if any.
    fn current_key(&self) -> Option<UserKey>;
    /// Returns all versions at the current key (newest first) and advances
    /// past that key.
    fn take_versions(&mut self) -> Result<Vec<FragmentVersion>>;
}

/// A boxed fragment source.
pub type BoxedFragmentSource = Box<dyn FragmentSource + Send>;

// ---------------------------------------------------------------------------
// RowSource: a single row-oriented run as a FragmentSource
// ---------------------------------------------------------------------------

/// Adapts a [`KvIterator`] over encoded internal keys / encoded fragments into
/// a [`FragmentSource`]. Used for memtable snapshots and Level-0 SSTs (which
/// store whole rows) as well as individual column-group runs.
pub struct RowSource {
    iter: BoxedIterator,
    schema_columns: usize,
    /// Only versions visible at this snapshot are returned.
    snapshot_seq: SeqNo,
    positioned: bool,
}

impl RowSource {
    /// Wraps `iter`, decoding fragments against a schema of `schema_columns` columns.
    pub fn new(iter: BoxedIterator, schema_columns: usize, snapshot_seq: SeqNo) -> Self {
        RowSource {
            iter,
            schema_columns,
            snapshot_seq,
            positioned: false,
        }
    }

    fn skip_invisible(&mut self) -> Result<()> {
        // Advance past versions newer than the snapshot.
        while self.iter.valid() {
            let ik = InternalKey::decode(self.iter.key())?;
            if ik.seq <= self.snapshot_seq {
                break;
            }
            self.iter.next()?;
        }
        Ok(())
    }
}

impl FragmentSource for RowSource {
    fn seek(&mut self, target: UserKey) -> Result<()> {
        self.iter.seek(&InternalKey::seek_to(target).encode())?;
        self.skip_invisible()?;
        self.positioned = true;
        Ok(())
    }

    fn current_key(&self) -> Option<UserKey> {
        if !self.positioned || !self.iter.valid() {
            return None;
        }
        InternalKey::decode_user_key(self.iter.key()).ok()
    }

    fn take_versions(&mut self) -> Result<Vec<FragmentVersion>> {
        let Some(key) = self.current_key() else {
            return Ok(Vec::new());
        };
        let mut versions = Vec::new();
        while self.iter.valid() {
            let ik = InternalKey::decode(self.iter.key())?;
            if ik.user_key != key {
                break;
            }
            if ik.seq <= self.snapshot_seq {
                let fragment = if ik.kind == ValueKind::Tombstone {
                    RowFragment::empty()
                } else {
                    RowFragment::decode(self.iter.value(), self.schema_columns)?
                };
                versions.push(FragmentVersion {
                    seq: ik.seq,
                    kind: ik.kind,
                    fragment,
                });
            }
            self.iter.next()?;
        }
        self.skip_invisible()?;
        Ok(versions)
    }
}

// ---------------------------------------------------------------------------
// ColumnMergingIterator: stitch CGs within a level
// ---------------------------------------------------------------------------

/// Combines the column-group runs of one level into whole-row fragments.
///
/// Each child iterates one CG run. For every user key, the fragments found in
/// each child are united (their column sets are disjoint by construction);
/// if any child carries a tombstone for the key, the combined version is a
/// tombstone. Within a level there is at most one version per key per CG
/// (Section 4.4), but the implementation tolerates duplicates by letting the
/// newest version of each column win.
pub struct ColumnMergingIterator {
    children: Vec<RowSource>,
}

impl ColumnMergingIterator {
    /// Creates the iterator from one [`RowSource`] per column-group run.
    pub fn new(children: Vec<RowSource>) -> Self {
        ColumnMergingIterator { children }
    }

    /// Number of column-group runs being stitched.
    pub fn num_children(&self) -> usize {
        self.children.len()
    }
}

impl FragmentSource for ColumnMergingIterator {
    fn seek(&mut self, target: UserKey) -> Result<()> {
        for child in &mut self.children {
            child.seek(target)?;
        }
        Ok(())
    }

    fn current_key(&self) -> Option<UserKey> {
        self.children.iter().filter_map(|c| c.current_key()).min()
    }

    fn take_versions(&mut self) -> Result<Vec<FragmentVersion>> {
        let Some(key) = self.current_key() else {
            return Ok(Vec::new());
        };
        let mut combined = RowFragment::empty();
        let mut newest_seq = 0;
        let mut any_tombstone = false;
        // The stitched version counts as `Full` only if *every* CG run of the
        // level produced a complete fragment for this key.
        let mut all_full = true;
        let mut contributed = false;
        for child in &mut self.children {
            if child.current_key() != Some(key) {
                all_full = false;
                continue;
            }
            let versions = child.take_versions()?;
            let mut child_covered = false;
            for v in versions {
                newest_seq = newest_seq.max(v.seq);
                match v.kind {
                    ValueKind::Tombstone => {
                        any_tombstone = true;
                        contributed = true;
                        child_covered = true;
                        // Older values within this child are dead.
                        break;
                    }
                    ValueKind::Full => {
                        combined.fill_missing_from(&v.fragment);
                        contributed = true;
                        child_covered = true;
                        break;
                    }
                    ValueKind::Partial => {
                        combined.fill_missing_from(&v.fragment);
                        contributed = true;
                    }
                }
            }
            if !child_covered {
                all_full = false;
            }
        }
        if !contributed {
            return Ok(Vec::new());
        }
        let kind = if any_tombstone {
            ValueKind::Tombstone
        } else if all_full {
            ValueKind::Full
        } else {
            ValueKind::Partial
        };
        Ok(vec![FragmentVersion {
            seq: newest_seq,
            kind,
            fragment: combined,
        }])
    }
}

// ---------------------------------------------------------------------------
// LevelMergingIterator: merge across levels, newest wins
// ---------------------------------------------------------------------------

/// One stitched row produced by the [`LevelMergingIterator`].
#[derive(Debug, Clone, PartialEq)]
pub struct MergedRow {
    /// The user key.
    pub key: UserKey,
    /// The newest visible values of the projected columns.
    pub fragment: RowFragment,
    /// Sequence number of the newest contributing write.
    pub seq: SeqNo,
}

/// Merges fragment sources across the tree, newest source first.
///
/// `sources` must be ordered newest-to-oldest (mutable memtable, immutable
/// memtables, Level-0 runs newest-first, then level 1, level 2, ...). For each
/// user key the iterator overlays the sources in that order, filling in only
/// columns not yet seen; a `Full` record or a tombstone stops the descent.
/// Keys whose newest record is a tombstone (with no newer partial columns) are
/// skipped.
pub struct LevelMergingIterator {
    sources: Vec<BoxedFragmentSource>,
    projection: Projection,
    /// Upper bound of the scanned key range (inclusive).
    hi: UserKey,
    /// Levels that contributed at least one fragment to the current row, by
    /// source index — used for per-level statistics.
    last_contributors: Vec<usize>,
    /// The merge frontier: `(current key, source index)` per live source, as
    /// a min-heap. Equal keys pop in ascending source index, preserving the
    /// newest-source-first overlay order without a full sweep per row.
    frontier: BinaryHeap<Reverse<(UserKey, usize)>>,
}

impl LevelMergingIterator {
    /// Creates the iterator over `sources` (newest first), returning only the
    /// columns in `projection`, for keys up to `hi` inclusive.
    pub fn new(sources: Vec<BoxedFragmentSource>, projection: Projection, hi: UserKey) -> Self {
        LevelMergingIterator {
            sources,
            projection,
            hi,
            last_contributors: Vec::new(),
            frontier: BinaryHeap::new(),
        }
    }

    /// Positions every source at `lo` and rebuilds the merge frontier.
    pub fn seek(&mut self, lo: UserKey) -> Result<()> {
        self.frontier.clear();
        for (idx, s) in self.sources.iter_mut().enumerate() {
            s.seek(lo)?;
            if let Some(key) = s.current_key() {
                self.frontier.push(Reverse((key, idx)));
            }
        }
        Ok(())
    }

    /// Indices of the sources that contributed to the most recent row.
    pub fn last_contributors(&self) -> &[usize] {
        &self.last_contributors
    }

    /// Number of sources this iterator merges across (the merge width).
    pub fn merge_width(&self) -> usize {
        self.sources.len()
    }

    /// Produces the next stitched row, or `None` when the range is exhausted.
    pub fn next_row(&mut self) -> Result<Option<MergedRow>> {
        loop {
            // Smallest key across live sources: the top of the frontier.
            let Some(&Reverse((key, _))) = self.frontier.peek() else {
                return Ok(None);
            };
            if key > self.hi {
                return Ok(None);
            }
            let mut acc = RowFragment::empty();
            let mut newest_seq = 0;
            let mut deleted = false;
            let mut satisfied = false;
            self.last_contributors.clear();
            while let Some(&Reverse((k, idx))) = self.frontier.peek() {
                if k != key {
                    break;
                }
                self.frontier.pop();
                let source = &mut self.sources[idx];
                // Advances the source past `key`; its next key (strictly
                // greater) rejoins the frontier, so the drain loop below
                // cannot revisit it for this row.
                let versions = source.take_versions()?;
                if let Some(next_key) = source.current_key() {
                    self.frontier.push(Reverse((next_key, idx)));
                }
                if satisfied || deleted {
                    // Source already advanced; just skip the data.
                    continue;
                }
                let mut contributed = false;
                for v in versions {
                    newest_seq = newest_seq.max(v.seq);
                    match v.kind {
                        ValueKind::Tombstone => {
                            deleted = true;
                            break;
                        }
                        ValueKind::Full => {
                            acc.fill_missing_from(&v.fragment.project(&self.projection));
                            contributed = true;
                            satisfied = true;
                            break;
                        }
                        ValueKind::Partial => {
                            acc.fill_missing_from(&v.fragment.project(&self.projection));
                            contributed = true;
                        }
                    }
                }
                if contributed {
                    self.last_contributors.push(idx);
                }
                if acc.covers(&self.projection) {
                    satisfied = true;
                }
            }
            if deleted && acc.is_empty() {
                // The key's newest record is a delete: skip it entirely.
                continue;
            }
            if acc.is_empty() {
                // Nothing visible for the projection (e.g. all contributing
                // columns outside the projection); skip.
                continue;
            }
            return Ok(Some(MergedRow {
                key,
                fragment: acc,
                seq: newest_seq,
            }));
        }
    }

    /// Drains the iterator into a vector (convenience for scans and tests).
    pub fn collect_rows(&mut self) -> Result<Vec<MergedRow>> {
        let mut out = Vec::new();
        while let Some(row) = self.next_row()? {
            out.push(row);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Value;
    use lsm_storage::iterator::{KvIterator, VecIterator};
    use lsm_storage::types::MAX_SEQNO;

    const C: usize = 4;

    fn schema() -> Schema {
        Schema::with_columns(C)
    }

    fn frag(cells: &[(usize, i64)]) -> RowFragment {
        RowFragment::from_cells(cells.iter().map(|&(c, v)| (c, Value::Int(v))).collect())
    }

    fn entry(key: u64, seq: u64, kind: ValueKind, f: &RowFragment) -> (Vec<u8>, Vec<u8>) {
        (
            InternalKey::new(key, seq, kind).encode().to_vec(),
            if kind == ValueKind::Tombstone {
                Vec::new()
            } else {
                f.encode(C)
            },
        )
    }

    fn row_source(mut entries: Vec<(Vec<u8>, Vec<u8>)>) -> RowSource {
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        RowSource::new(Box::new(VecIterator::new(entries)), C, MAX_SEQNO)
    }

    #[test]
    fn row_source_groups_versions_by_key() {
        let mut src = row_source(vec![
            entry(
                1,
                5,
                ValueKind::Full,
                &frag(&[(0, 1), (1, 2), (2, 3), (3, 4)]),
            ),
            entry(1, 8, ValueKind::Partial, &frag(&[(1, 20)])),
            entry(
                2,
                6,
                ValueKind::Full,
                &frag(&[(0, 9), (1, 9), (2, 9), (3, 9)]),
            ),
        ]);
        src.seek(0).unwrap();
        assert_eq!(src.current_key(), Some(1));
        let versions = src.take_versions().unwrap();
        assert_eq!(versions.len(), 2);
        assert_eq!(versions[0].seq, 8, "newest version first");
        assert_eq!(versions[0].kind, ValueKind::Partial);
        assert_eq!(versions[1].kind, ValueKind::Full);
        assert_eq!(src.current_key(), Some(2));
        let versions = src.take_versions().unwrap();
        assert_eq!(versions.len(), 1);
        assert_eq!(src.current_key(), None);
    }

    #[test]
    fn row_source_respects_snapshot() {
        let entries = vec![
            entry(
                1,
                5,
                ValueKind::Full,
                &frag(&[(0, 1), (1, 1), (2, 1), (3, 1)]),
            ),
            entry(
                1,
                9,
                ValueKind::Full,
                &frag(&[(0, 2), (1, 2), (2, 2), (3, 2)]),
            ),
        ];
        let mut sorted = entries.clone();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        let mut src = RowSource::new(Box::new(VecIterator::new(sorted)), C, 6);
        src.seek(0).unwrap();
        let versions = src.take_versions().unwrap();
        assert_eq!(versions.len(), 1);
        assert_eq!(versions[0].seq, 5, "version 9 is invisible at snapshot 6");
    }

    #[test]
    fn column_merging_iterator_stitches_cgs() {
        // Level with two CG runs: <a1,a2> and <a3,a4>.
        let cg_a = row_source(vec![
            entry(10, 3, ValueKind::Full, &frag(&[(0, 1), (1, 2)])),
            entry(11, 4, ValueKind::Full, &frag(&[(0, 5), (1, 6)])),
        ]);
        let cg_b = row_source(vec![
            entry(10, 3, ValueKind::Full, &frag(&[(2, 3), (3, 4)])),
            // Key 11 has no values in CG <a3,a4> (it arrived as a partial update).
        ]);
        let mut cmi = ColumnMergingIterator::new(vec![cg_a, cg_b]);
        assert_eq!(cmi.num_children(), 2);
        cmi.seek(0).unwrap();
        assert_eq!(cmi.current_key(), Some(10));
        let v = cmi.take_versions().unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].fragment, frag(&[(0, 1), (1, 2), (2, 3), (3, 4)]));
        assert_eq!(v[0].kind, ValueKind::Full);
        assert_eq!(cmi.current_key(), Some(11));
        let v = cmi.take_versions().unwrap();
        assert_eq!(v[0].fragment, frag(&[(0, 5), (1, 6)]));
        assert_eq!(cmi.current_key(), None);
    }

    #[test]
    fn column_merging_iterator_propagates_tombstones() {
        let cg_a = row_source(vec![entry(
            10,
            7,
            ValueKind::Tombstone,
            &RowFragment::empty(),
        )]);
        let cg_b = row_source(vec![entry(
            10,
            3,
            ValueKind::Full,
            &frag(&[(2, 3), (3, 4)]),
        )]);
        let mut cmi = ColumnMergingIterator::new(vec![cg_a, cg_b]);
        cmi.seek(0).unwrap();
        let v = cmi.take_versions().unwrap();
        assert_eq!(v[0].kind, ValueKind::Tombstone);
    }

    #[test]
    fn level_merging_iterator_prefers_newer_levels() {
        // Figure 5 style: key 108 has A,B updated in level 0, C,D in level 2.
        let level0 = row_source(vec![entry(
            108,
            50,
            ValueKind::Partial,
            &frag(&[(0, 100), (1, 200)]),
        )]);
        let level2 = row_source(vec![
            entry(
                107,
                10,
                ValueKind::Full,
                &frag(&[(0, 7), (1, 7), (2, 7), (3, 7)]),
            ),
            entry(
                108,
                9,
                ValueKind::Full,
                &frag(&[(0, 1), (1, 2), (2, 3), (3, 4)]),
            ),
        ]);
        let mut lmi = LevelMergingIterator::new(
            vec![Box::new(level0), Box::new(level2)],
            Projection::all(&schema()),
            u64::MAX,
        );
        lmi.seek(50).unwrap();
        let rows = lmi.collect_rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].key, 107);
        assert_eq!(rows[1].key, 108);
        // Latest values of A,B come from level 0; C,D from level 2.
        assert_eq!(
            rows[1].fragment,
            frag(&[(0, 100), (1, 200), (2, 3), (3, 4)])
        );
        assert_eq!(rows[1].seq, 50);
    }

    #[test]
    fn level_merging_iterator_skips_deleted_keys() {
        let level0 = row_source(vec![entry(
            5,
            20,
            ValueKind::Tombstone,
            &RowFragment::empty(),
        )]);
        let level1 = row_source(vec![entry(
            5,
            3,
            ValueKind::Full,
            &frag(&[(0, 1), (1, 1), (2, 1), (3, 1)]),
        )]);
        let mut lmi = LevelMergingIterator::new(
            vec![Box::new(level0), Box::new(level1)],
            Projection::all(&schema()),
            u64::MAX,
        );
        lmi.seek(0).unwrap();
        assert!(lmi.next_row().unwrap().is_none());
    }

    #[test]
    fn level_merging_iterator_honours_projection_and_range() {
        let level1 = row_source(vec![
            entry(
                1,
                1,
                ValueKind::Full,
                &frag(&[(0, 1), (1, 2), (2, 3), (3, 4)]),
            ),
            entry(
                2,
                2,
                ValueKind::Full,
                &frag(&[(0, 5), (1, 6), (2, 7), (3, 8)]),
            ),
            entry(
                3,
                3,
                ValueKind::Full,
                &frag(&[(0, 9), (1, 10), (2, 11), (3, 12)]),
            ),
        ]);
        let mut lmi = LevelMergingIterator::new(
            vec![Box::new(level1)],
            Projection::of([2]),
            2, // hi bound excludes key 3
        );
        lmi.seek(1).unwrap();
        let rows = lmi.collect_rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].fragment.columns().to_vec(), vec![2]);
        assert_eq!(rows[0].fragment.get(2), Some(&Value::Int(3)));
        assert_eq!(rows[1].fragment.get(2), Some(&Value::Int(7)));
    }

    #[test]
    fn level_merging_iterator_stops_overlay_at_full_record() {
        // Newer full row in level 0 must completely shadow the older row below.
        let level0 = row_source(vec![entry(
            1,
            9,
            ValueKind::Full,
            &frag(&[(0, 90), (1, 90), (2, 90), (3, 90)]),
        )]);
        let level1 = row_source(vec![entry(
            1,
            2,
            ValueKind::Full,
            &frag(&[(0, 1), (1, 1), (2, 1), (3, 1)]),
        )]);
        let mut lmi = LevelMergingIterator::new(
            vec![Box::new(level0), Box::new(level1)],
            Projection::all(&schema()),
            u64::MAX,
        );
        lmi.seek(0).unwrap();
        let row = lmi.next_row().unwrap().unwrap();
        assert_eq!(row.fragment, frag(&[(0, 90), (1, 90), (2, 90), (3, 90)]));
        assert_eq!(lmi.last_contributors(), &[0]);
    }

    #[test]
    fn concat_iterator_over_tables() {
        use lsm_storage::sst::{TableBuilder, TableHandle, TableOptions};
        use lsm_storage::storage::MemStorage;
        let storage: lsm_storage::StorageRef = MemStorage::new_ref();
        let mut handles = Vec::new();
        for (idx, range) in [(0u64, 0..50u64), (1, 50..100), (2, 100..150)] {
            let name = format!("{idx}.sst");
            let mut b = TableBuilder::new(storage.create(&name).unwrap(), TableOptions::default());
            for k in range {
                b.add(
                    &InternalKey::new(k, 1, ValueKind::Full).encode(),
                    &frag(&[(0, k as i64)]).encode(C),
                )
                .unwrap();
            }
            b.finish().unwrap();
            handles.push(TableHandle::open(&storage, &name).unwrap());
        }
        let mut it = ConcatIterator::new(handles);
        it.seek_to_first().unwrap();
        let mut count = 0u64;
        while it.valid() {
            assert_eq!(InternalKey::decode(it.key()).unwrap().user_key, count);
            count += 1;
            it.next().unwrap();
        }
        assert_eq!(count, 150);
        // Seek into the middle table.
        it.seek(&InternalKey::seek_to(75).encode()).unwrap();
        assert_eq!(InternalKey::decode(it.key()).unwrap().user_key, 75);
        // Seek past the end.
        it.seek(&InternalKey::seek_to(1000).encode()).unwrap();
        assert!(!it.valid());
        // Seek to a boundary.
        it.seek(&InternalKey::seek_to(100).encode()).unwrap();
        assert_eq!(InternalKey::decode(it.key()).unwrap().user_key, 100);
    }
}
