//! The LASER storage engine: a Real-Time LSM-Tree.
//!
//! The engine keeps the memory component and Level-0 row-oriented (exactly as
//! the paper prescribes, to preserve write throughput) and stores every level
//! beyond Level-0 as one sorted run per column group, where the level's
//! column-group partition is given by the configured [`LayoutSpec`].
//!
//! Supported operations (Section 3.1):
//! * `insert(key, row)` — full-row insert.
//! * `read(key, Π)` — projection-aware point lookup.
//! * `scan(lo, hi, Π)` — projection-aware range scan.
//! * `update(key, valueΠ)` — partial-row (column) update.
//! * `delete(key)` — tombstone.
//!
//! Layout changes happen during compaction: the CG-local compaction strategy
//! (Section 4.4) picks the most-overflowing column group in the
//! most-overflowing level and merges it into the overlapping (contained)
//! column groups of the next level, using the level/column merging iterators.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use telemetry::trace::{self, TraceKind};
use telemetry::Telemetry;

use lsm_storage::cache::{BlockCache, ScopedCache};
use lsm_storage::degrade::{DegradationController, DegradedInfo};
use lsm_storage::iterator::KvIterator;
use lsm_storage::maintenance::{
    attach_engine, BackpressureConfig, BackpressureGate, EngineMaintenance, JobKind, JobScheduler,
    MaintainableEngine, MaintenanceHandle, Throttle,
};
use lsm_storage::manifest::{read_manifest, write_manifest, FileMeta, VersionSnapshot};
use lsm_storage::memtable::{FrozenMemTable, MemTable, MemTableRef};
use lsm_storage::observability::EngineTelemetry;
use lsm_storage::retry::{retry_io, RetryPolicy};
use lsm_storage::sst::{TableBuilder, TableHandle};
use lsm_storage::storage::{MemStorage, StorageRef};
use lsm_storage::types::{InternalKey, SeqNo, UserKey, ValueKind, WriteBatch, MAX_SEQNO};
use lsm_storage::wal_segment::{SegmentedWal, WalStatsSnapshot, WalSyncPolicy};
use lsm_storage::{Error, Result};

use crate::iters::{
    BoxedFragmentSource, ColumnMergingIterator, ConcatIterator, FragmentSource,
    LevelMergingIterator, RowSource,
};
use crate::layout::LayoutSpec;
use crate::options::LaserOptions;
use crate::row::RowFragment;
use crate::schema::{ColumnId, Projection, Schema};
use crate::stats::{EngineStats, EngineStatsSnapshot};
use crate::value::Value;

/// Pre-segmentation WAL file name, still recognised (and migrated) at open.
const LEGACY_WAL_NAME: &str = "laser-wal.log";

/// One SST file belonging to a column-group run.
#[derive(Clone, Debug)]
struct LevelFile {
    meta: FileMeta,
    table: TableHandle,
}

/// The sorted run of one column group at one level.
#[derive(Clone, Debug, Default)]
struct CgRun {
    /// Files of the run. Level 0 files may overlap (ordered oldest→newest);
    /// deeper levels hold disjoint files sorted by key.
    files: Vec<LevelFile>,
}

impl CgRun {
    fn size_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.meta.file_size).sum()
    }

    fn num_entries(&self) -> u64 {
        self.files.iter().map(|f| f.meta.num_entries).sum()
    }
}

/// All column-group runs of one level.
#[derive(Clone, Debug, Default)]
struct LevelState {
    runs: Vec<CgRun>,
}

impl LevelState {
    fn size_bytes(&self) -> u64 {
        self.runs.iter().map(|r| r.size_bytes()).sum()
    }
}

#[derive(Default)]
struct DbInner {
    mutable: Option<MemTableRef>,
    /// Frozen memtables awaiting a background flush (each paired with its
    /// WAL segment), oldest first.
    immutables: Vec<FrozenMemTable>,
    levels: Vec<LevelState>,
    next_file_number: u64,
    last_seq: SeqNo,
}

/// Summary of one level for introspection and experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSummary {
    /// Level number.
    pub level: usize,
    /// Per-column-group `(files, entries, bytes)`.
    pub column_groups: Vec<(usize, u64, u64)>,
    /// Total bytes stored at this level.
    pub total_bytes: u64,
}

/// The LASER Real-Time LSM-Tree storage engine.
pub struct LaserDb {
    storage: StorageRef,
    options: LaserOptions,
    inner: RwLock<DbInner>,
    /// Segmented write-ahead log: one segment per memtable, group commit on
    /// the write path, manifest-tracked lifecycle.
    wal: SegmentedWal,
    stats: EngineStats,
    /// Shared decoded-block cache (None when no cache is configured). May be
    /// a scoped view of a process-wide cache shared with other engines.
    cache: Option<ScopedCache>,
    /// Registered background scheduler handle; set once by
    /// [`LaserDb::attach_maintenance`]. While present, the write path
    /// enqueues flush/CG-compaction jobs instead of running them inline.
    maintenance: OnceLock<MaintenanceHandle>,
    /// Serialises flush jobs so Level-0 keeps its oldest-first order.
    flush_lock: Mutex<()>,
    /// Serialises CG-compaction jobs so two jobs never merge the same run.
    compaction_lock: Mutex<()>,
    /// Writers stalled on backpressure park here; maintenance jobs notify it.
    write_room: BackpressureGate,
    /// Pre-resolved telemetry handles; set once by
    /// [`LaserDb::attach_telemetry`]. While absent, instrumentation costs
    /// one branch per hot-path operation.
    telemetry: OnceLock<EngineTelemetry>,
    /// Read-only degradation state: entered on persistent storage faults
    /// (after WAL rotation recovery and SST/manifest retries are exhausted),
    /// cleared automatically once a storage probe succeeds again.
    degradation: DegradationController,
}

impl LaserDb {
    /// Opens (or creates) an engine on `storage` with the given options,
    /// recovering previous state from the manifest and WAL.
    pub fn open(storage: StorageRef, options: LaserOptions) -> Result<Self> {
        let cache = if options.block_cache_bytes > 0 {
            Some(ScopedCache::unscoped(BlockCache::new(
                options.block_cache_bytes,
            )))
        } else {
            None
        };
        Self::open_with_cache(storage, options, cache)
    }

    /// Opens (or creates) an engine on `storage`, serving block reads
    /// through the given cache view instead of a private per-engine cache
    /// (`block_cache_bytes` is ignored). A sharded deployment passes every
    /// shard a differently-scoped view of one process-wide [`BlockCache`] so
    /// the global byte budget and per-shard accounting are shared.
    pub fn open_with_cache(
        storage: StorageRef,
        options: LaserOptions,
        cache: Option<ScopedCache>,
    ) -> Result<Self> {
        options.validate()?;
        let snapshot = read_manifest(&storage)?;
        let mut inner = DbInner {
            levels: (0..options.num_levels)
                .map(|level| LevelState {
                    runs: vec![CgRun::default(); options.layout.level(level).num_groups()],
                })
                .collect(),
            next_file_number: snapshot.next_file_number.max(1),
            last_seq: snapshot.last_seq,
            ..Default::default()
        };
        for meta in &snapshot.files {
            let table = TableHandle::open_with_cache(&storage, &meta.file_name(), cache.clone())?;
            let level = meta.level as usize;
            let cg = meta.column_group as usize;
            let runs = &mut inner
                .levels
                .get_mut(level)
                .ok_or_else(|| Error::corruption(format!("manifest level {level} out of range")))?
                .runs;
            if cg >= runs.len() {
                return Err(Error::corruption(format!(
                    "manifest references column group {cg} at level {level}, layout has {}",
                    runs.len()
                )));
            }
            runs[cg].files.push(LevelFile {
                meta: meta.clone(),
                table,
            });
        }
        for (level, state) in inner.levels.iter_mut().enumerate() {
            for run in &mut state.runs {
                if level == 0 {
                    run.files.sort_by_key(|f| f.meta.max_seq);
                } else {
                    run.files.sort_by_key(|f| f.meta.min_user_key);
                }
            }
        }

        // Open the segmented WAL, replaying only the segments the manifest
        // lists as live (plus anything newer, plus the legacy single-file
        // WAL if this directory predates segmentation).
        let policy = WalSyncPolicy::from_options(options.sync_wal, options.sync_wal_interval_ms);
        let (wal, recovery) = SegmentedWal::open(
            &storage,
            policy,
            &snapshot.wal_segments,
            &[LEGACY_WAL_NAME],
            snapshot.last_seq + 1,
        )?;

        let stats = EngineStats::new(options.num_levels);
        let db = LaserDb {
            storage,
            options,
            inner: RwLock::new(inner),
            wal,
            stats,
            cache,
            maintenance: OnceLock::new(),
            flush_lock: Mutex::new(()),
            compaction_lock: Mutex::new(()),
            write_room: BackpressureGate::new(),
            telemetry: OnceLock::new(),
            degradation: DegradationController::new(),
        };

        // WAL recovery: replay intact records into fresh memtable state and
        // record the active segment in the manifest. A large clean tail is
        // adopted in place — the replayed segments stay live, paired with one
        // frozen memtable rebuilt from their records — so recovery does O(1)
        // manifest work instead of re-logging every record; a small or dirty
        // tail keeps the re-log path, which compacts it into one segment.
        {
            let mut inner = db.inner.write();
            inner.mutable = Some(Arc::new(MemTable::new()));
            if recovery.adoptable() && recovery.total_bytes() >= db.options.recovery_adopt_bytes {
                let rebuilt = Arc::new(MemTable::new());
                for record in recovery.records() {
                    for (seq, entry) in (record.start_seq..).zip(record.batch.iter()) {
                        rebuilt.insert(seq, entry);
                        inner.last_seq = inner.last_seq.max(seq);
                    }
                }
                let adopted = db.wal.adopt_recovered(&recovery);
                inner.immutables.push(FrozenMemTable {
                    memtable: rebuilt,
                    wal_segments: adopted,
                });
            } else {
                for record in recovery.records() {
                    db.wal.append(record.start_seq, &record.batch)?;
                    for (seq, entry) in (record.start_seq..).zip(record.batch.iter()) {
                        inner.mutable.as_ref().unwrap().insert(seq, entry);
                        inner.last_seq = inner.last_seq.max(seq);
                    }
                }
            }
            db.wal.finish_recovery()?;
            db.persist_manifest(&inner)?;
        }
        Ok(db)
    }

    /// Opens an engine backed by fresh in-memory storage.
    pub fn open_in_memory(options: LaserOptions) -> Result<Self> {
        Self::open(MemStorage::new_ref(), options)
    }

    /// The configured options.
    pub fn options(&self) -> &LaserOptions {
        &self.options
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.options.schema()
    }

    /// The layout (design) in use.
    pub fn layout(&self) -> &LayoutSpec {
        &self.options.layout
    }

    /// The storage backend (exposes I/O statistics).
    pub fn storage(&self) -> &StorageRef {
        &self.storage
    }

    /// Engine statistics (operation counts, per-level profile, write
    /// amplification, block-cache and background-maintenance counters).
    pub fn stats(&self) -> EngineStatsSnapshot {
        let mut snapshot = self.stats.snapshot();
        if let Some(cache) = &self.cache {
            let cache_stats = cache.cache().stats();
            snapshot.cache_hits = cache_stats.hits;
            snapshot.cache_misses = cache_stats.misses;
        }
        if let Some(handle) = self.maintenance.get() {
            let state = handle.state();
            snapshot.bg_jobs_completed = state.completed_jobs();
            snapshot.bg_jobs_failed = state.failed_jobs();
            snapshot.bg_jobs_pending = state.pending_jobs() as u64;
        }
        snapshot.wal = self.wal.stats();
        snapshot
    }

    /// Durability statistics of the segmented WAL (also embedded in
    /// [`LaserDb::stats`]).
    pub fn wal_stats(&self) -> WalStatsSnapshot {
        self.wal.stats()
    }

    /// The shared block cache, if one is configured.
    pub fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        self.cache.as_ref().map(|c| c.cache())
    }

    /// Starts a background maintenance scheduler with `num_workers` threads
    /// and registers it with this engine. From then on the write path freezes
    /// full memtables and enqueues flush / CG-local-compaction jobs instead
    /// of running them inline, applying slowdown/stall backpressure per the
    /// `l0_slowdown_files` / `l0_stall_files` / `max_pending_jobs` options.
    ///
    /// The returned [`JobScheduler`] owns the worker threads: dropping it
    /// drains all queued jobs and joins the workers. The foreground
    /// `flush` / `compact_*` APIs keep working (they share the same internal
    /// locks), which deterministic tests rely on.
    ///
    /// Errors if a scheduler was already attached.
    pub fn attach_maintenance(self: &Arc<Self>, num_workers: usize) -> Result<JobScheduler> {
        attach_engine(self, num_workers)
    }

    /// Registers this engine (and its WAL) with a shared telemetry hub under
    /// `shard_label`: latency histograms on the read/scan/commit paths, byte
    /// counters on flush/CG-compaction, and maintenance events in the hub's
    /// event log. Idempotent — a second attach keeps the first registration.
    pub fn attach_telemetry(&self, hub: &Arc<Telemetry>, shard_label: &str) {
        let _ = self
            .telemetry
            .set(EngineTelemetry::register(hub, "laser", shard_label));
        self.wal.attach_telemetry(hub, shard_label);
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// The last sequence number assigned to a write.
    pub fn last_seq(&self) -> SeqNo {
        self.inner.read().last_seq
    }

    fn num_columns(&self) -> usize {
        self.schema().num_columns()
    }

    // ------------------------------------------------------------------
    // Write operations (Section 4.2)
    // ------------------------------------------------------------------

    /// Inserts (or fully replaces) the row for `key`.
    pub fn insert(&self, key: UserKey, row: RowFragment) -> Result<()> {
        if !row.is_complete(self.schema()) {
            return Err(Error::invalid(
                "insert requires a complete row; use update() for partial rows",
            ));
        }
        self.stats.record_insert();
        let mut batch = WriteBatch::new();
        batch.put(key, row.encode(self.num_columns()));
        self.apply(&batch)
    }

    /// Inserts a benchmark-style integer row (column `ai` = `base + i`).
    pub fn insert_int_row(&self, key: UserKey, base: i64) -> Result<()> {
        self.insert(key, RowFragment::int_row(self.schema(), base))
    }

    /// Updates a subset of columns of `key` (a LASER partial-row insert).
    pub fn update(&self, key: UserKey, values: Vec<(ColumnId, Value)>) -> Result<()> {
        if values.is_empty() {
            return Err(Error::invalid("update requires at least one column"));
        }
        for (c, _) in &values {
            if !self.schema().contains(*c) {
                return Err(Error::invalid(format!("column {c} outside schema")));
            }
        }
        let fragment = RowFragment::from_cells(values);
        self.stats.record_update();
        self.stats.record_update_level(0, &fragment.columns());
        let mut batch = WriteBatch::new();
        batch.put_partial(key, fragment.encode(self.num_columns()));
        self.apply(&batch)
    }

    /// Deletes `key`.
    pub fn delete(&self, key: UserKey) -> Result<()> {
        self.stats.record_delete();
        let mut batch = WriteBatch::new();
        batch.delete(key);
        self.apply(&batch)
    }

    /// Applies a pre-encoded write batch atomically (consecutive sequence
    /// numbers, one WAL record, group-committed durability).
    ///
    /// This is the batch entry point used by sharded deployments, which split
    /// one logical batch across shard engines. Entry payloads must be
    /// [`RowFragment`] encodings for this engine's schema — `Full` entries a
    /// complete row (as [`LaserDb::insert`] produces), `Partial` entries a
    /// column subset (as [`LaserDb::update`] produces); payloads are *not*
    /// re-validated against the schema here.
    pub fn write(&self, batch: &WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        for entry in batch.iter() {
            match entry.kind {
                ValueKind::Full => self.stats.record_insert(),
                ValueKind::Partial => {
                    self.stats.record_update();
                    // Mirror update(): feed the per-level update-column
                    // profile, decoding the fragment to recover which
                    // columns this partial write touches.
                    if let Ok(fragment) = RowFragment::decode(&entry.value, self.num_columns()) {
                        self.stats.record_update_level(0, &fragment.columns());
                    }
                }
                ValueKind::Tombstone => self.stats.record_delete(),
            }
        }
        self.apply(batch)
    }

    fn apply(&self, batch: &WriteBatch) -> Result<()> {
        self.check_writable()?;
        let logical_bytes: u64 = batch
            .iter()
            .map(|e| std::mem::size_of::<UserKey>() as u64 + e.value.len() as u64)
            .sum();
        self.stats.record_ingest_bytes(logical_bytes);
        let telemetry = self.telemetry.get();
        let commit_start = telemetry.map(|_| Instant::now());
        let op = telemetry.map(|t| t.begin_op(TraceKind::Commit));
        // True both when this op won the sampling decision and when an
        // enclosing router-owned sampled trace is active on this thread
        // (nested case): child spans record into whichever trace owns us.
        let traced = trace::is_active();
        EngineMaintenance::apply_backpressure(self);
        let ticket = {
            let _apply_span = if traced {
                trace::span("wal_append")
            } else {
                None
            };
            let mut inner = self.inner.write();
            let start_seq = inner.last_seq + 1;
            let mutable = Arc::clone(inner.mutable.as_ref().ok_or(Error::Closed)?);
            let ticket = self
                .wal
                .append(start_seq, batch)
                .map_err(|e| self.note_write_error(e))?;
            let mut seq = start_seq;
            for entry in batch.iter() {
                mutable.insert(seq, entry);
                seq += 1;
            }
            inner.last_seq = seq - 1;
            ticket
        };
        // The write is acknowledged only once its WAL record is durable
        // (group commit: concurrent writers share one fsync).
        {
            let _durable_span = if traced {
                trace::span("wal_durable")
            } else {
                None
            };
            self.wal
                .ensure_durable(&ticket)
                .map_err(|e| self.note_write_error(e))?;
        }
        if let (Some(telemetry), Some(start), Some(op)) = (telemetry, commit_start, op) {
            let elapsed = start.elapsed();
            telemetry.commit_ns.record(elapsed.as_nanos() as u64);
            telemetry.end_op(
                TraceKind::Commit,
                op,
                elapsed,
                &[("entries", batch.len() as u64)],
            );
        }
        self.after_write_maintenance()
    }

    /// Unconditionally freezes the mutable memtable (sealing its WAL segment
    /// and opening a fresh one), without flushing it. No-op on an empty
    /// memtable. Returns true if a memtable was frozen.
    ///
    /// Used by the flush path and by crash-recovery tests that need the
    /// "frozen but not yet flushed" state.
    pub fn freeze_memtable(&self) -> Result<bool> {
        let mut inner = self.inner.write();
        let Some(mutable) = inner.mutable.as_ref() else {
            return Ok(false);
        };
        if mutable.is_empty() {
            return Ok(false);
        }
        self.freeze_locked(&mut inner)
    }

    /// Freezes the mutable memtable and immediately schedules its flush:
    /// with a maintenance scheduler attached the flush job is enqueued right
    /// away (instead of waiting for the next write-path trigger); without
    /// one the frozen memtable is drained inline. Returns true if a memtable
    /// was frozen.
    pub fn freeze_and_schedule(&self) -> Result<bool> {
        if !self.freeze_memtable()? {
            return Ok(false);
        }
        self.schedule_frozen_flush()?;
        Ok(true)
    }

    /// Freezes the mutable memtable under the held engine lock: rotates to a
    /// fresh WAL segment and pairs the sealed segment with the frozen
    /// memtable.
    fn freeze_locked(&self, inner: &mut DbInner) -> Result<bool> {
        let frozen = Arc::clone(inner.mutable.as_ref().ok_or(Error::Closed)?);
        let sealed_segment = self.wal.rotate(inner.last_seq + 1)?;
        inner
            .immutables
            .push(FrozenMemTable::sealed(frozen, sealed_segment));
        inner.mutable = Some(Arc::new(MemTable::new()));
        // No manifest write here: the previous flush-time manifest already
        // lists the sealed segment, and recovery unconditionally replays any
        // segment newer than the manifest knows, so the fresh active segment
        // needs no record. Keeping the freeze path free of manifest I/O
        // keeps the engine's write lock cheap.
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Read operations (Section 4.3)
    // ------------------------------------------------------------------

    /// Point lookup: returns the newest values of the projected columns for
    /// `key`, or `None` if the key is absent or deleted.
    pub fn read(&self, key: UserKey, projection: &Projection) -> Result<Option<RowFragment>> {
        self.read_at(key, projection, MAX_SEQNO)
    }

    /// Point lookup at a snapshot sequence number.
    pub fn read_at(
        &self,
        key: UserKey,
        projection: &Projection,
        snapshot: SeqNo,
    ) -> Result<Option<RowFragment>> {
        let telemetry = self.telemetry.get();
        let start = telemetry.map(|_| Instant::now());
        let op = telemetry.map(|t| t.begin_op(TraceKind::Get));
        // True both when this op won the sampling decision and when an
        // enclosing router-owned sampled trace is active on this thread
        // (nested case): child spans record into whichever trace owns us.
        let traced = trace::is_active();
        let result = self.read_at_inner(key, projection, snapshot, traced);
        if let (Some(telemetry), Some(start), Some(op)) = (telemetry, start, op) {
            let elapsed = start.elapsed();
            telemetry.get_ns.record(elapsed.as_nanos() as u64);
            telemetry.end_op(TraceKind::Get, op, elapsed, &[("key", key)]);
        }
        result
    }

    fn read_at_inner(
        &self,
        key: UserKey,
        projection: &Projection,
        snapshot: SeqNo,
        traced: bool,
    ) -> Result<Option<RowFragment>> {
        self.stats.record_point_read();
        let needed = if projection.is_empty() {
            Projection::all(self.schema())
        } else {
            projection.clone()
        };
        let inner = self.inner.read();
        let mut acc = RowFragment::empty();
        let mut deleted = false;
        let mut satisfied = false;

        // 1. Memtable.
        {
            let _memtable_span = if traced {
                trace::span("memtable_probe")
            } else {
                None
            };
            if let Some(mutable) = &inner.mutable {
                let versions = mutable.get_versions(key, snapshot);
                Self::overlay_versions(
                    &mut acc,
                    &mut deleted,
                    &mut satisfied,
                    &needed,
                    versions.into_iter(),
                    self.num_columns(),
                    true,
                )?;
            }

            // 1.5. Frozen memtables awaiting flush, newest first
            // (row-oriented).
            if !satisfied && !deleted {
                for imm in inner.immutables.iter().rev() {
                    let versions = imm.memtable.get_versions(key, snapshot);
                    Self::overlay_versions(
                        &mut acc,
                        &mut deleted,
                        &mut satisfied,
                        &needed,
                        versions.into_iter(),
                        self.num_columns(),
                        true,
                    )?;
                    if satisfied || deleted {
                        break;
                    }
                }
            }
        }

        // 2. Level 0, newest file first (row-oriented full rows).
        if !satisfied && !deleted {
            let mut l0_span = if traced {
                trace::span("l0_probe")
            } else {
                None
            };
            let mut bloom_skips = 0u64;
            for file in inner.levels[0].runs[0].files.iter().rev() {
                if !file.table.may_contain(key) {
                    bloom_skips += 1;
                    continue;
                }
                let versions = Self::table_versions(&file.table, key, snapshot)?;
                if !versions.is_empty() {
                    self.stats.record_point_read_level(0, 1, &needed);
                }
                Self::overlay_versions(
                    &mut acc,
                    &mut deleted,
                    &mut satisfied,
                    &needed,
                    versions.into_iter(),
                    self.num_columns(),
                    true,
                )?;
                if satisfied || deleted {
                    break;
                }
            }
            if let Some(span) = l0_span.as_mut() {
                span.annotate("bloom_skips", bloom_skips);
            }
        }

        // 3. Deeper levels: probe only the CGs overlapping the still-needed columns.
        if !satisfied && !deleted {
            let mut level_span = if traced {
                trace::span("level_probe")
            } else {
                None
            };
            let mut total_groups = 0u64;
            let mut bloom_skips = 0u64;
            for level in 1..inner.levels.len() {
                let missing = needed.difference(&acc.columns());
                if missing.is_empty() {
                    break;
                }
                let layout = self.options.layout.level(level);
                let mut groups_fetched = 0u64;
                for (cg_idx, group) in layout.groups().iter().enumerate() {
                    if !group.overlaps_projection(&missing) {
                        continue;
                    }
                    let run = &inner.levels[level].runs[cg_idx];
                    // Binary search the run's disjoint files for the key.
                    let idx = run.files.partition_point(|f| f.meta.max_user_key < key);
                    if idx >= run.files.len() || run.files[idx].meta.min_user_key > key {
                        continue;
                    }
                    let file = &run.files[idx];
                    if !file.table.may_contain(key) {
                        bloom_skips += 1;
                        continue;
                    }
                    let versions = Self::table_versions(&file.table, key, snapshot)?;
                    if versions.is_empty() {
                        continue;
                    }
                    groups_fetched += 1;
                    Self::overlay_versions(
                        &mut acc,
                        &mut deleted,
                        &mut satisfied,
                        &needed,
                        versions.into_iter(),
                        self.num_columns(),
                        false,
                    )?;
                    if deleted {
                        break;
                    }
                }
                if groups_fetched > 0 {
                    self.stats
                        .record_point_read_level(level, groups_fetched, &needed);
                }
                total_groups += groups_fetched;
                if satisfied || deleted {
                    break;
                }
            }
            if let Some(span) = level_span.as_mut() {
                span.annotate("groups_fetched", total_groups);
                span.annotate("bloom_skips", bloom_skips);
            }
        }

        if acc.is_empty() {
            return Ok(None);
        }
        Ok(Some(acc.project(&needed)))
    }

    /// Overlays a list of newest-first versions onto the accumulator.
    ///
    /// `full_covers_row` must be true only for row-oriented sources (memtable,
    /// Level-0 SSTs), where a `Full` record carries the complete row and can
    /// terminate the search. In a column-group run a `Full` record only means
    /// the *group's* columns are complete, so it must not stop the descent.
    fn overlay_versions(
        acc: &mut RowFragment,
        deleted: &mut bool,
        satisfied: &mut bool,
        needed: &Projection,
        versions: impl Iterator<Item = (InternalKey, Vec<u8>)>,
        num_columns: usize,
        full_covers_row: bool,
    ) -> Result<()> {
        for (ik, value) in versions {
            match ik.kind {
                ValueKind::Tombstone => {
                    *deleted = true;
                    break;
                }
                ValueKind::Full => {
                    let fragment = RowFragment::decode(&value, num_columns)?;
                    acc.fill_missing_from(&fragment.project(needed));
                    if full_covers_row {
                        *satisfied = true;
                    }
                    break;
                }
                ValueKind::Partial => {
                    let fragment = RowFragment::decode(&value, num_columns)?;
                    acc.fill_missing_from(&fragment.project(needed));
                }
            }
        }
        if acc.covers(needed) {
            *satisfied = true;
        }
        Ok(())
    }

    /// Collects the visible versions of `key` in one table, newest first,
    /// stopping after the first full row or tombstone.
    fn table_versions(
        table: &TableHandle,
        key: UserKey,
        snapshot: SeqNo,
    ) -> Result<Vec<(InternalKey, Vec<u8>)>> {
        let mut iter = table.iter();
        iter.seek(&InternalKey::seek_to(key).encode())?;
        let mut out = Vec::new();
        while iter.valid() {
            let ik = InternalKey::decode(iter.key())?;
            if ik.user_key != key {
                break;
            }
            if ik.seq <= snapshot {
                out.push((ik, iter.value().to_vec()));
                if ik.kind != ValueKind::Partial {
                    break;
                }
            }
            iter.next()?;
        }
        Ok(out)
    }

    /// Range scan: returns the newest values of the projected columns for
    /// every live key in `[lo, hi]`.
    pub fn scan(
        &self,
        lo: UserKey,
        hi: UserKey,
        projection: &Projection,
    ) -> Result<Vec<(UserKey, RowFragment)>> {
        self.scan_at(lo, hi, projection, MAX_SEQNO)
    }

    /// Range scan at a snapshot sequence number.
    pub fn scan_at(
        &self,
        lo: UserKey,
        hi: UserKey,
        projection: &Projection,
        snapshot: SeqNo,
    ) -> Result<Vec<(UserKey, RowFragment)>> {
        let telemetry = self.telemetry.get();
        let start = telemetry.map(|_| Instant::now());
        let op = telemetry.map(|t| t.begin_op(TraceKind::Scan));
        // True both when this op won the sampling decision and when an
        // enclosing router-owned sampled trace is active on this thread
        // (nested case): child spans record into whichever trace owns us.
        let traced = trace::is_active();
        self.stats.record_scan();
        let projection = if projection.is_empty() {
            Projection::all(self.schema())
        } else {
            projection.clone()
        };
        let mut lmi = {
            let mut setup_span = if traced {
                trace::span("merge_setup")
            } else {
                None
            };
            let mut lmi = self.level_merging_iterator(lo, hi, &projection, snapshot)?;
            lmi.seek(lo)?;
            if let Some(span) = setup_span.as_mut() {
                span.annotate("merge_width", lmi.merge_width() as u64);
            }
            lmi
        };
        let rows = {
            let _drain_span = if traced { trace::span("drain") } else { None };
            lmi.collect_rows()?
        };
        // Attribute scanned entries to levels for the per-level profile: the
        // share of entries scanned at level i is proportional to that level's
        // population, which is what the cost model's s_i denotes.
        let inner = self.inner.read();
        let total_entries: u64 = inner
            .levels
            .iter()
            .map(|l| l.runs.iter().map(|r| r.num_entries()).sum::<u64>())
            .sum();
        for (level, state) in inner.levels.iter().enumerate() {
            let level_entries: u64 = state.runs.iter().map(|r| r.num_entries()).sum();
            if level_entries == 0 {
                continue;
            }
            let Some(share) = (rows.len() as u64 * level_entries).checked_div(total_entries) else {
                break;
            };
            self.stats.record_scan_level(level, share, &projection);
        }
        if let (Some(telemetry), Some(start), Some(op)) = (telemetry, start, op) {
            let elapsed = start.elapsed();
            telemetry.scan_ns.record(elapsed.as_nanos() as u64);
            telemetry.end_op(TraceKind::Scan, op, elapsed, &[("rows", rows.len() as u64)]);
        }
        Ok(rows.into_iter().map(|r| (r.key, r.fragment)).collect())
    }

    /// Builds the paper's LevelMergingIterator for `[lo, hi]` with the given
    /// projection: the memtable and Level-0 runs (row-oriented) come first,
    /// then one ColumnMergingIterator per deeper level, opened only over the
    /// column groups that overlap the projection. Each CG run iterates
    /// through the substrate's lazy [`ConcatIterator`]: a file of the run is
    /// opened only when the scan actually crosses into it.
    fn level_merging_iterator(
        &self,
        lo: UserKey,
        hi: UserKey,
        projection: &Projection,
        snapshot: SeqNo,
    ) -> Result<LevelMergingIterator> {
        let inner = self.inner.read();
        let c = self.num_columns();
        let mut sources: Vec<BoxedFragmentSource> = Vec::new();
        if let Some(mutable) = &inner.mutable {
            sources.push(Box::new(RowSource::new(
                Box::new(mutable.iter()),
                c,
                snapshot,
            )));
        }
        for imm in inner.immutables.iter().rev() {
            sources.push(Box::new(RowSource::new(
                Box::new(imm.memtable.iter()),
                c,
                snapshot,
            )));
        }
        for file in inner.levels[0].runs[0].files.iter().rev() {
            if file.meta.overlaps(lo, hi) {
                sources.push(Box::new(RowSource::new(
                    Box::new(file.table.iter()),
                    c,
                    snapshot,
                )));
            }
        }
        for level in 1..inner.levels.len() {
            let layout = self.options.layout.level(level);
            let mut children = Vec::new();
            for (cg_idx, group) in layout.groups().iter().enumerate() {
                if !group.overlaps_projection(projection) {
                    continue;
                }
                let run = &inner.levels[level].runs[cg_idx];
                let tables: Vec<TableHandle> = run
                    .files
                    .iter()
                    .filter(|f| f.meta.overlaps(lo, hi))
                    .map(|f| f.table.clone())
                    .collect();
                if tables.is_empty() {
                    continue;
                }
                children.push(RowSource::new(
                    Box::new(ConcatIterator::new(tables)),
                    c,
                    snapshot,
                ));
            }
            if !children.is_empty() {
                sources.push(Box::new(ColumnMergingIterator::new(children)));
            }
        }
        Ok(LevelMergingIterator::new(sources, projection.clone(), hi))
    }

    // ------------------------------------------------------------------
    // Graceful degradation (read-only mode on persistent storage faults)
    // ------------------------------------------------------------------

    /// True while the engine can accept writes — its WAL has no unrecovered
    /// damage and it has not entered read-only degradation.
    pub fn is_healthy(&self) -> bool {
        !self.wal.is_damaged() && !self.degradation.is_degraded()
    }

    /// True while the engine is in read-only degradation: writes are
    /// rejected with [`Error::ReadOnly`], reads continue, flushes and
    /// compactions are blocked.
    pub fn is_degraded(&self) -> bool {
        self.degradation.is_degraded()
    }

    /// Why (and for how long) the engine has been read-only, if degraded.
    pub fn degraded_info(&self) -> Option<DegradedInfo> {
        self.degradation.info()
    }

    /// Attempts to leave read-only degradation: re-runs WAL rotation
    /// recovery if the log is still damaged, then probes the storage with a
    /// small write-fsync-delete cycle. Returns true if the engine is (now)
    /// healthy. Called automatically by every rejected write.
    pub fn probe_recovery(&self) -> bool {
        if !self.degradation.is_degraded() {
            return true;
        }
        if self.wal.is_damaged() && self.wal.sync().is_err() {
            return false;
        }
        if self.storage_probe().is_err() {
            return false;
        }
        if let Some(downtime) = self.degradation.clear() {
            if let Some(telemetry) = self.telemetry.get() {
                telemetry.recovered_event(downtime);
            }
            self.notify_write_room();
        }
        true
    }

    /// A minimal durability probe: create, append, fsync and delete a scratch
    /// file — the same failure modes (EIO, ENOSPC) as the real write paths
    /// without touching live data.
    fn storage_probe(&self) -> Result<()> {
        const PROBE_NAME: &str = "health-probe.tmp";
        let result = (|| {
            let mut file = self.storage.create(PROBE_NAME)?;
            file.append(b"laser-storage-probe")?;
            file.sync()
        })();
        let _ = self.storage.delete(PROBE_NAME);
        result
    }

    /// Rejects the write with a typed error while degraded, probing for
    /// recovery first so a healed device resumes service on the very next
    /// write.
    fn check_writable(&self) -> Result<()> {
        if !self.degradation.is_degraded() || self.probe_recovery() {
            return Ok(());
        }
        let reason = self
            .degradation
            .info()
            .map(|i| i.reason)
            .unwrap_or_else(|| "storage fault".to_string());
        Err(Error::read_only(reason))
    }

    /// Enters read-only degradation (idempotently) after a persistent
    /// storage fault, emitting `Degraded` and raising `laser_degraded` on
    /// the transition edge.
    fn enter_degraded(&self, cause: &Error) {
        if self.degradation.enter(cause.to_string()) {
            if let Some(telemetry) = self.telemetry.get() {
                telemetry.degraded_event();
            }
        }
    }

    /// Classifies an error escaping the write or maintenance path: anything
    /// non-transient (the WAL already self-healed transients, `retry_io`
    /// already retried the rest) degrades the engine instead of leaving the
    /// next caller to hit the same broken device.
    fn note_storage_error(&self, e: &Error) {
        if !e.is_transient() && !e.is_read_only() {
            self.enter_degraded(e);
        }
    }

    fn note_write_error(&self, e: Error) -> Error {
        self.note_storage_error(&e);
        e
    }

    fn note_io_retry(&self) {
        if let Some(telemetry) = self.telemetry.get() {
            telemetry.io_retry();
        }
    }

    // ------------------------------------------------------------------
    // Flush
    // ------------------------------------------------------------------

    /// Flushes the mutable memtable and every frozen memtable into
    /// row-oriented Level-0 SSTs, retiring their WAL segments. No-op when
    /// nothing is buffered.
    pub fn flush(&self) -> Result<()> {
        self.check_writable()?;
        let result = (|| {
            self.freeze_memtable()?;
            while self.flush_frozen_one_impl()? {}
            Ok(())
        })();
        if let Err(e) = &result {
            self.note_storage_error(e);
        }
        result
    }

    /// Flushes the oldest frozen memtable, if any. Once the SST is installed
    /// in the manifest, the WAL segment backing the memtable is retired and
    /// its file deleted — recovery never replays data that already lives in
    /// the tree. Returns true if a memtable was flushed.
    fn flush_frozen_one_impl(&self) -> Result<bool> {
        if let Some(info) = self.degradation.info() {
            // While degraded, background flushing is blocked outright:
            // re-running half-failed jobs against a broken device risks
            // double-applying work (at-most-once), and the typed error also
            // trips the backpressure gate's failed-jobs bail-out so stalled
            // writers are released instead of waiting forever.
            return Err(Error::read_only(info.reason));
        }
        let telemetry = self.telemetry.get();
        let flush_start = telemetry.map(|_| Instant::now());
        // Serialise flushes so Level-0 keeps its oldest-first order.
        let _flushing = self.flush_lock.lock();
        let (frozen, file_number) = {
            let mut inner = self.inner.write();
            let Some(frozen) = inner.immutables.first().cloned() else {
                return Ok(false);
            };
            if frozen.memtable.is_empty() {
                inner
                    .immutables
                    .retain(|m| !Arc::ptr_eq(&m.memtable, &frozen.memtable));
                for segment in &frozen.wal_segments {
                    self.wal.retire(*segment);
                }
                self.persist_manifest(&inner)?;
                drop(inner);
                self.wal.delete_retired()?;
                return Ok(true);
            }
            let n = inner.next_file_number;
            inner.next_file_number += 1;
            (frozen, n)
        };
        // Build outside the lock; the frozen memtable stays readable in
        // `immutables` until the SST is installed.
        let meta = self.build_sst(file_number, 0, 0, frozen.memtable.to_sorted_vec())?;
        self.stats.record_flush(meta.file_size, meta.num_entries);
        let (flushed_bytes, flushed_entries) = (meta.file_size, meta.num_entries);
        {
            let mut inner = self.inner.write();
            let table =
                TableHandle::open_with_cache(&self.storage, &meta.file_name(), self.cache.clone())?;
            inner.levels[0].runs[0]
                .files
                .push(LevelFile { meta, table });
            inner
                .immutables
                .retain(|m| !Arc::ptr_eq(&m.memtable, &frozen.memtable));
            // Manifest-first segment GC: drop the segment from the live set,
            // persist a manifest that has the SST and no longer lists the
            // segment, and only then unlink the file.
            for segment in &frozen.wal_segments {
                self.wal.retire(*segment);
            }
            self.persist_manifest(&inner)?;
        }
        self.wal.delete_retired()?;
        if let (Some(telemetry), Some(start)) = (telemetry, flush_start) {
            telemetry.flush_event(start.elapsed(), flushed_bytes, flushed_entries);
        }
        self.notify_write_room();
        Ok(true)
    }

    fn build_sst(
        &self,
        file_number: u64,
        level: u32,
        column_group: u32,
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<FileMeta> {
        let name = format!("{file_number:08}.sst");
        // A transient fault mid-build restarts the whole table from scratch
        // (create truncates), so a retried build never sees torn output.
        let props = retry_io(
            &RetryPolicy::transient_io(),
            |_, _| self.note_io_retry(),
            || {
                let file = self.storage.create(&name)?;
                let mut builder = TableBuilder::new(file, self.options.table.clone());
                for (k, v) in &entries {
                    builder.add(k, v)?;
                }
                builder.finish()
            },
        )?;
        Ok(FileMeta {
            file_number,
            level,
            min_user_key: props.min_user_key,
            max_user_key: props.max_user_key,
            num_entries: props.num_entries,
            file_size: props.file_size,
            min_seq: props.min_seq,
            max_seq: props.max_seq,
            column_group,
        })
    }

    fn persist_manifest(&self, inner: &DbInner) -> Result<()> {
        let snapshot = VersionSnapshot {
            next_file_number: inner.next_file_number,
            last_seq: inner.last_seq,
            files: inner
                .levels
                .iter()
                .flat_map(|state| {
                    state
                        .runs
                        .iter()
                        .flat_map(|r| r.files.iter().map(|f| f.meta.clone()))
                })
                .collect(),
            wal_segments: self.wal.live_segments(),
        };
        // The manifest write is atomic (write-new-then-swap), so a transient
        // fault can simply be retried.
        retry_io(
            &RetryPolicy::transient_io(),
            |_, _| self.note_io_retry(),
            || write_manifest(&self.storage, &snapshot),
        )
    }

    // ------------------------------------------------------------------
    // CG-local compaction (Section 4.4)
    // ------------------------------------------------------------------

    /// Picks `(level, cg_index)` of the most overflowing column group in the
    /// most overflowing level, or `None` if nothing overflows. Level-0
    /// additionally overflows on *file count* (at the slowdown threshold), so
    /// a backpressure pileup always has a compaction that can clear it even
    /// when the files are small.
    fn pick_compaction(&self, inner: &DbInner) -> Option<(usize, usize)> {
        // Most overflowing level first.
        let mut best_level: Option<(usize, f64)> = None;
        for (level, state) in inner.levels.iter().enumerate() {
            if level + 1 >= inner.levels.len() {
                break;
            }
            let capacity = self.options.level_capacity_bytes(level);
            if capacity == 0 {
                continue;
            }
            let mut score = state.size_bytes() as f64 / capacity as f64;
            // The count trigger only applies in background mode: the legacy
            // synchronous path (and the paper's experiments) compacts purely
            // on byte overflow, and must keep doing so.
            if level == 0 && self.maintenance.get().is_some() && self.options.l0_slowdown_files > 0
            {
                // `files + 1` so the score strictly exceeds 1.0 exactly when
                // the count reaches the slowdown threshold — a stalled writer
                // (stall == slowdown is allowed) must always have a runnable
                // compaction, or backpressure would wait forever.
                let files = state.runs[0].files.len();
                if files >= self.options.l0_slowdown_files {
                    score = score.max((files + 1) as f64 / self.options.l0_slowdown_files as f64);
                }
            }
            if score > 1.0 && best_level.map(|(_, s)| score > s).unwrap_or(true) {
                best_level = Some((level, score));
            }
        }
        let (level, _) = best_level?;
        // Most overflowing CG within that level (capacity divided
        // proportionally across the CGs).
        let mut best_cg: Option<(usize, f64)> = None;
        for (cg_idx, run) in inner.levels[level].runs.iter().enumerate() {
            let capacity = self.options.cg_capacity_bytes(level, cg_idx).max(1);
            let score = run.size_bytes() as f64 / capacity as f64;
            if run.size_bytes() > 0 && best_cg.map(|(_, s)| score > s).unwrap_or(true) {
                best_cg = Some((cg_idx, score));
            }
        }
        best_cg.map(|(cg, _)| (level, cg))
    }

    /// Runs one CG-local compaction job if any level overflows. Returns true
    /// if work was done.
    pub fn compact_once(&self) -> Result<bool> {
        if let Some(info) = self.degradation.info() {
            // Same error-state gate as the flush path: no compactions while
            // the engine is read-only.
            return Err(Error::read_only(info.reason));
        }
        let pick = {
            let inner = self.inner.read();
            self.pick_compaction(&inner)
        };
        let Some((level, cg_idx)) = pick else {
            return Ok(false);
        };
        self.compact_cg(level, cg_idx)?;
        Ok(true)
    }

    /// Compacts until no level overflows.
    pub fn compact_until_stable(&self) -> Result<()> {
        while self.compact_once()? {}
        Ok(())
    }

    /// Compacts the whole tree down as far as possible (used by experiments
    /// that want a fully-settled tree regardless of capacity thresholds).
    pub fn compact_all(&self) -> Result<()> {
        self.flush()?;
        loop {
            let pick = {
                let inner = self.inner.read();
                // Find the shallowest non-empty level that is not the last.
                (0..inner.levels.len() - 1)
                    .find(|&l| inner.levels[l].size_bytes() > 0)
                    .map(|l| {
                        let cg = inner.levels[l]
                            .runs
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| r.size_bytes() > 0)
                            .map(|(i, _)| i)
                            .next()
                            .unwrap_or(0);
                        (l, cg)
                    })
            };
            let Some((level, cg)) = pick else { break };
            self.compact_cg(level, cg)?;
        }
        Ok(())
    }

    /// The core of LASER's layout-changing compaction: merges the chosen
    /// column group of `level` into the contained column groups of `level+1`,
    /// re-encoding fragments into the target layout.
    pub fn compact_cg(&self, level: usize, cg_idx: usize) -> Result<()> {
        let telemetry = self.telemetry.get();
        let compact_start = telemetry.map(|_| Instant::now());
        // Serialise compaction jobs (background workers and foreground calls
        // share this lock); the plan below re-reads state after acquiring it,
        // so a stale pick degrades to a no-op rather than a double merge.
        let _compacting = self.compaction_lock.lock();
        let target_level = level + 1;
        let c = self.num_columns();
        // Collect inputs and plan under the read lock.
        let (input_files, source_group_cols, target_cgs) = {
            let inner = self.inner.read();
            if target_level >= inner.levels.len() {
                return Ok(());
            }
            let run = &inner.levels[level].runs[cg_idx];
            if run.files.is_empty() {
                return Ok(());
            }
            let input_files: Vec<LevelFile> = run.files.clone();
            let source_group = self.options.layout.level(level).groups()[cg_idx].clone();
            let target_layout = self.options.layout.level(target_level);
            // Target CGs: those sharing columns with the source CG. Under the
            // containment assumption they are subsets of the source CG.
            let target_cgs: Vec<(usize, Vec<ColumnId>)> = target_layout
                .groups()
                .iter()
                .enumerate()
                .filter(|(_, g)| g.overlaps(&source_group))
                .map(|(i, g)| (i, g.columns().to_vec()))
                .collect();
            (input_files, source_group.columns().to_vec(), target_cgs)
        };

        let bytes_read_inputs: u64 = input_files.iter().map(|f| f.meta.file_size).sum();

        // Materialise the deduplicated source entries: newest version of every
        // key in the source CG, with partial rows merged (Section 4.2).
        let sources: Vec<BoxedFragmentSource> = input_files
            .iter()
            .rev()
            .map(|f| {
                Box::new(RowSource::new(Box::new(f.table.iter()), c, MAX_SEQNO))
                    as BoxedFragmentSource
            })
            .collect();
        let mut source_iter = LevelMergingIteratorForCompaction::new(sources);
        source_iter.seek(0)?;
        let mut source_entries: Vec<(UserKey, SeqNo, ValueKind, RowFragment)> = Vec::new();
        while let Some((key, seq, kind, fragment)) = source_iter.next_merged()? {
            source_entries.push((key, seq, kind, fragment.restrict(&source_group_cols)));
        }

        let mut total_bytes_written = 0u64;
        let mut total_entries_written = 0u64;
        let mut new_outputs: Vec<(usize, Vec<FileMeta>)> = Vec::new();
        let mut replaced: Vec<(usize, Vec<u64>)> = Vec::new();
        let mut bytes_read = bytes_read_inputs;

        let output_is_last_level = target_level + 1 >= self.options.num_levels;

        for (target_cg_idx, target_cols) in &target_cgs {
            // Existing entries of the target CG run (older than the inputs).
            let existing_files: Vec<LevelFile> = {
                let inner = self.inner.read();
                inner.levels[target_level].runs[*target_cg_idx]
                    .files
                    .clone()
            };
            bytes_read += existing_files.iter().map(|f| f.meta.file_size).sum::<u64>();
            let existing_tables: Vec<TableHandle> =
                existing_files.iter().map(|f| f.table.clone()).collect();
            let mut existing =
                RowSource::new(Box::new(ConcatIterator::new(existing_tables)), c, MAX_SEQNO);
            existing.seek(0)?;

            // Merge source entries (newer) with the existing run (older).
            let mut out_entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            let mut push_entry =
                |key: UserKey, seq: SeqNo, kind: ValueKind, fragment: &RowFragment| {
                    if kind == ValueKind::Tombstone {
                        if !output_is_last_level {
                            out_entries.push((
                                InternalKey::new(key, seq, ValueKind::Tombstone)
                                    .encode()
                                    .to_vec(),
                                Vec::new(),
                            ));
                        }
                        return;
                    }
                    let restricted = fragment.restrict(target_cols);
                    if restricted.is_empty() {
                        return;
                    }
                    let kind = if restricted.len() == target_cols.len() {
                        ValueKind::Full
                    } else {
                        ValueKind::Partial
                    };
                    out_entries.push((
                        InternalKey::new(key, seq, kind).encode().to_vec(),
                        restricted.encode(c),
                    ));
                };

            let mut src_idx = 0usize;
            loop {
                let src = source_entries.get(src_idx);
                let existing_key = existing.current_key();
                match (src, existing_key) {
                    (None, None) => break,
                    (Some((key, seq, kind, fragment)), None) => {
                        push_entry(*key, *seq, *kind, fragment);
                        src_idx += 1;
                    }
                    (None, Some(ekey)) => {
                        let versions = existing.take_versions()?;
                        if let Some((eseq, ekind, efrag, _)) = Self::merge_versions(&versions) {
                            push_entry(ekey, eseq, ekind, &efrag);
                        }
                    }
                    (Some((skey, sseq, skind, sfrag)), Some(ekey)) => {
                        if *skey < ekey {
                            push_entry(*skey, *sseq, *skind, sfrag);
                            src_idx += 1;
                        } else if ekey < *skey {
                            let versions = existing.take_versions()?;
                            if let Some((eseq, ekind, efrag, _)) = Self::merge_versions(&versions) {
                                push_entry(ekey, eseq, ekind, &efrag);
                            }
                        } else {
                            // Same key: the source (upper level) is newer.
                            let versions = existing.take_versions()?;
                            let older = Self::merge_versions(&versions);
                            if *skind == ValueKind::Tombstone {
                                push_entry(*skey, *sseq, ValueKind::Tombstone, sfrag);
                            } else if let Some((_, okind, ofrag, _)) = older {
                                if okind == ValueKind::Tombstone {
                                    // Older tombstone: only the newer columns survive.
                                    push_entry(*skey, *sseq, *skind, sfrag);
                                } else {
                                    let merged = sfrag.merge_over(&ofrag);
                                    push_entry(*skey, *sseq, ValueKind::Full, &merged);
                                }
                            } else {
                                push_entry(*skey, *sseq, *skind, sfrag);
                            }
                            src_idx += 1;
                        }
                    }
                }
            }

            // Write the new run, partitioned into SSTs of the target size.
            let mut metas = Vec::new();
            let mut chunk: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
            let mut chunk_bytes = 0u64;
            for (k, v) in out_entries {
                chunk_bytes += (k.len() + v.len()) as u64;
                chunk.push((k, v));
                if chunk_bytes >= self.options.sst_target_size_bytes {
                    let meta = self.write_run_file(
                        target_level as u32,
                        *target_cg_idx as u32,
                        std::mem::take(&mut chunk),
                    )?;
                    total_bytes_written += meta.file_size;
                    total_entries_written += meta.num_entries;
                    metas.push(meta);
                    chunk_bytes = 0;
                }
            }
            if !chunk.is_empty() {
                let meta =
                    self.write_run_file(target_level as u32, *target_cg_idx as u32, chunk)?;
                total_bytes_written += meta.file_size;
                total_entries_written += meta.num_entries;
                metas.push(meta);
            }
            replaced.push((
                *target_cg_idx,
                existing_files.iter().map(|f| f.meta.file_number).collect(),
            ));
            new_outputs.push((*target_cg_idx, metas));
        }

        // Install: remove the source run and the replaced target runs, add outputs.
        {
            let mut inner = self.inner.write();
            let removed_inputs: Vec<u64> = input_files.iter().map(|f| f.meta.file_number).collect();
            inner.levels[level].runs[cg_idx]
                .files
                .retain(|f| !removed_inputs.contains(&f.meta.file_number));
            for (target_cg_idx, old_numbers) in &replaced {
                inner.levels[target_level].runs[*target_cg_idx]
                    .files
                    .retain(|f| !old_numbers.contains(&f.meta.file_number));
            }
            for (target_cg_idx, metas) in &new_outputs {
                for meta in metas {
                    let table = TableHandle::open_with_cache(
                        &self.storage,
                        &meta.file_name(),
                        self.cache.clone(),
                    )?;
                    inner.levels[target_level].runs[*target_cg_idx]
                        .files
                        .push(LevelFile {
                            meta: meta.clone(),
                            table,
                        });
                }
                inner.levels[target_level].runs[*target_cg_idx]
                    .files
                    .sort_by_key(|f| f.meta.min_user_key);
            }
            self.persist_manifest(&inner)?;
            for f in &input_files {
                let _ = self.storage.delete(&f.meta.file_name());
            }
            for (_, old_numbers) in &replaced {
                for n in old_numbers {
                    let _ = self.storage.delete(&format!("{n:08}.sst"));
                }
            }
        }
        self.stats
            .record_compaction(bytes_read, total_bytes_written, total_entries_written);
        if let (Some(telemetry), Some(start)) = (telemetry, compact_start) {
            telemetry.compaction_event(
                start.elapsed(),
                bytes_read,
                total_bytes_written,
                total_entries_written,
            );
        }
        self.notify_write_room();
        Ok(())
    }

    /// Collapses a newest-first version list into a single merged fragment.
    /// Returns `(seq, kind, fragment, key)` of the merged record.
    fn merge_versions(
        versions: &[crate::iters::FragmentVersion],
    ) -> Option<(SeqNo, ValueKind, RowFragment, UserKey)> {
        // Versions coming from RowSource belong to a single key; the key is
        // not part of FragmentVersion, so callers that need it thread it
        // separately. Here we only need the merged fragment and kind.
        let first = versions.first()?;
        let mut acc = RowFragment::empty();
        let mut kind = ValueKind::Partial;
        for v in versions {
            match v.kind {
                ValueKind::Tombstone => {
                    if acc.is_empty() {
                        kind = ValueKind::Tombstone;
                    }
                    break;
                }
                ValueKind::Full => {
                    acc.fill_missing_from(&v.fragment);
                    kind = ValueKind::Full;
                    break;
                }
                ValueKind::Partial => {
                    acc.fill_missing_from(&v.fragment);
                }
            }
        }
        Some((first.seq, kind, acc, 0))
    }

    fn write_run_file(
        &self,
        level: u32,
        column_group: u32,
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<FileMeta> {
        let file_number = {
            let mut inner = self.inner.write();
            let n = inner.next_file_number;
            inner.next_file_number += 1;
            n
        };
        self.build_sst(file_number, level, column_group, entries)
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Per-level, per-column-group summary of the on-disk state.
    pub fn level_summaries(&self) -> Vec<LevelSummary> {
        let inner = self.inner.read();
        inner
            .levels
            .iter()
            .enumerate()
            .map(|(level, state)| LevelSummary {
                level,
                column_groups: state
                    .runs
                    .iter()
                    .map(|r| (r.files.len(), r.num_entries(), r.size_bytes()))
                    .collect(),
                total_bytes: state.size_bytes(),
            })
            .collect()
    }

    /// Every file's metadata grouped by level (all column groups interleaved).
    pub fn level_files(&self) -> Vec<Vec<FileMeta>> {
        let inner = self.inner.read();
        inner
            .levels
            .iter()
            .map(|state| {
                state
                    .runs
                    .iter()
                    .flat_map(|r| r.files.iter().map(|f| f.meta.clone()))
                    .collect()
            })
            .collect()
    }

    /// Total bytes stored per level.
    pub fn level_sizes(&self) -> Vec<u64> {
        let inner = self.inner.read();
        inner.levels.iter().map(|s| s.size_bytes()).collect()
    }

    /// Number of entries in the mutable memtable.
    pub fn memtable_len(&self) -> usize {
        let inner = self.inner.read();
        inner.mutable.as_ref().map(|m| m.len()).unwrap_or(0)
    }

    /// Approximate bytes buffered in the mutable and frozen memtables.
    pub fn buffered_bytes(&self) -> u64 {
        let inner = self.inner.read();
        let mut total = inner
            .mutable
            .as_ref()
            .map(|m| m.approximate_bytes())
            .unwrap_or(0);
        total += inner
            .immutables
            .iter()
            .map(|m| m.memtable.approximate_bytes())
            .sum::<usize>();
        total as u64
    }

    /// Total bytes of all attached SST files.
    pub fn total_sst_bytes(&self) -> u64 {
        self.level_sizes().iter().sum()
    }

    /// Flushes outstanding data and persists the manifest.
    pub fn close(&self) -> Result<()> {
        self.flush()?;
        let inner = self.inner.read();
        self.persist_manifest(&inner)
    }

    /// Deletes every WAL segment file, idempotently (used by tests that
    /// simulate crashes after a clean flush: all durable data must come from
    /// SSTs alone). The engine should be dropped afterwards.
    pub fn remove_wal(&self) -> Result<()> {
        self.wal.remove_all()
    }
}

impl EngineMaintenance for LaserDb {
    fn maintenance_cell(&self) -> &OnceLock<MaintenanceHandle> {
        &self.maintenance
    }

    fn write_room(&self) -> &BackpressureGate {
        &self.write_room
    }

    fn backpressure_config(&self) -> BackpressureConfig {
        BackpressureConfig {
            l0_slowdown_files: self.options.l0_slowdown_files,
            l0_stall_files: self.options.l0_stall_files,
            max_pending_jobs: self.options.max_pending_jobs,
        }
    }

    fn compaction_kind(&self) -> JobKind {
        JobKind::CgCompaction
    }

    /// Freezes the mutable memtable (rotating the WAL segment) when it
    /// crossed the size threshold.
    fn freeze_if_full(&self) -> Result<bool> {
        let mut inner = self.inner.write();
        let Some(mutable) = inner.mutable.as_ref() else {
            return Ok(false);
        };
        if mutable.approximate_bytes() < self.options.memtable_size_bytes || mutable.is_empty() {
            return Ok(false);
        }
        self.freeze_locked(&mut inner)
    }

    fn flush_frozen_one(&self) -> Result<bool> {
        self.flush_frozen_one_impl()
    }

    fn compact_once(&self) -> Result<bool> {
        LaserDb::compact_once(self)
    }

    /// True if some level overflows (by bytes, or Level-0 by file count).
    fn needs_compaction(&self) -> bool {
        let inner = self.inner.read();
        self.pick_compaction(&inner).is_some()
    }

    fn has_frozen_memtables(&self) -> bool {
        !self.inner.read().immutables.is_empty()
    }

    fn l0_pressure(&self) -> usize {
        let inner = self.inner.read();
        inner.levels[0].runs[0].files.len() + inner.immutables.len()
    }

    fn maybe_flush(&self) -> Result<()> {
        let should = {
            let inner = self.inner.read();
            inner
                .mutable
                .as_ref()
                .map(|m| m.approximate_bytes() >= self.options.memtable_size_bytes)
                .unwrap_or(false)
        };
        if should {
            self.flush()?;
        }
        Ok(())
    }

    fn auto_compact(&self) -> bool {
        self.options.auto_compact
    }

    fn record_throttle(&self, throttle: Throttle) {
        match throttle {
            Throttle::Stall => self.stats.record_stall(),
            Throttle::Slowdown => self.stats.record_slowdown(),
            Throttle::None => {}
        }
    }

    fn record_stall_duration(&self, waited: Duration) {
        if let Some(telemetry) = self.telemetry.get() {
            telemetry.stall_event(waited);
        }
    }
}

impl MaintainableEngine for LaserDb {
    /// Forwards to the shared [`EngineMaintenance::run_job`] protocol. A
    /// persistent storage fault escaping a background job degrades the
    /// engine to read-only instead of letting the pool churn against a
    /// broken device.
    fn run_maintenance_job(&self, kind: JobKind) -> Result<()> {
        let result = self.run_job(kind);
        if let Err(e) = &result {
            self.note_storage_error(e);
        }
        result
    }
}

/// A small helper used only by compaction: merges the row-oriented input runs
/// (Level-0 SSTs or a single CG run) into one deduplicated stream of
/// `(key, seq, kind, fragment)` where partial rows within the inputs have
/// already been overlaid newest-first.
struct LevelMergingIteratorForCompaction {
    sources: Vec<BoxedFragmentSource>,
}

impl LevelMergingIteratorForCompaction {
    fn new(sources: Vec<BoxedFragmentSource>) -> Self {
        LevelMergingIteratorForCompaction { sources }
    }

    fn seek(&mut self, lo: UserKey) -> Result<()> {
        for s in &mut self.sources {
            s.seek(lo)?;
        }
        Ok(())
    }

    fn next_merged(&mut self) -> Result<Option<(UserKey, SeqNo, ValueKind, RowFragment)>> {
        let Some(key) = self.sources.iter().filter_map(|s| s.current_key()).min() else {
            return Ok(None);
        };
        let mut acc = RowFragment::empty();
        let mut newest_seq = 0;
        let mut kind = ValueKind::Partial;
        let mut decided = false;
        for source in &mut self.sources {
            if source.current_key() != Some(key) {
                continue;
            }
            let versions = source.take_versions()?;
            if decided {
                continue;
            }
            for v in versions {
                newest_seq = newest_seq.max(v.seq);
                match v.kind {
                    ValueKind::Tombstone => {
                        if acc.is_empty() {
                            kind = ValueKind::Tombstone;
                        }
                        decided = true;
                        break;
                    }
                    ValueKind::Full => {
                        acc.fill_missing_from(&v.fragment);
                        kind = ValueKind::Full;
                        decided = true;
                        break;
                    }
                    ValueKind::Partial => {
                        acc.fill_missing_from(&v.fragment);
                    }
                }
            }
        }
        Ok(Some((key, newest_seq, kind, acc)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutSpec;

    const C: usize = 8;

    fn schema() -> Schema {
        Schema::with_columns(C)
    }

    fn db_with(layout: LayoutSpec) -> LaserDb {
        LaserDb::open_in_memory(LaserOptions::small_for_tests(layout)).unwrap()
    }

    fn designs() -> Vec<LayoutSpec> {
        let s = schema();
        vec![
            LayoutSpec::row_store(&s, 6),
            LayoutSpec::column_store(&s, 6),
            LayoutSpec::equi_width(&s, 6, 2),
            LayoutSpec::equi_width(&s, 6, 4),
            LayoutSpec::htap_simple(&s, 6, 3),
        ]
    }

    #[test]
    fn insert_read_roundtrip_all_designs() {
        for layout in designs() {
            let db = db_with(layout.clone());
            for key in 0..200u64 {
                db.insert_int_row(key, key as i64 * 10).unwrap();
            }
            db.flush().unwrap();
            db.compact_until_stable().unwrap();
            for key in (0..200u64).step_by(7) {
                let row = db
                    .read(key, &Projection::all(&schema()))
                    .unwrap()
                    .unwrap_or_else(|| panic!("key {key} missing in design {}", layout.name()));
                assert!(
                    row.is_complete(&schema()),
                    "incomplete row in {}",
                    layout.name()
                );
                assert_eq!(row.get(0), Some(&Value::Int(key as i64 * 10 + 1)));
                assert_eq!(
                    row.get(C - 1),
                    Some(&Value::Int(key as i64 * 10 + C as i64))
                );
            }
            assert!(db
                .read(10_000, &Projection::all(&schema()))
                .unwrap()
                .is_none());
        }
    }

    #[test]
    fn projection_read_returns_only_projected_columns() {
        let db = db_with(LayoutSpec::equi_width(&schema(), 6, 2));
        for key in 0..100u64 {
            db.insert_int_row(key, key as i64).unwrap();
        }
        db.compact_all().unwrap();
        let proj = Projection::of([1, 5]);
        let row = db.read(42, &proj).unwrap().unwrap();
        assert_eq!(row.columns().to_vec(), vec![1, 5]);
        assert_eq!(row.get(1), Some(&Value::Int(44)));
        assert_eq!(row.get(5), Some(&Value::Int(48)));
    }

    #[test]
    fn update_merges_partial_rows_across_levels() {
        for layout in designs() {
            let db = db_with(layout.clone());
            for key in 0..50u64 {
                db.insert_int_row(key, 0).unwrap();
            }
            // Push the full rows to the disk levels.
            db.compact_all().unwrap();
            // Update a single column of key 7; the rest of the row stays below.
            db.update(7, vec![(3, Value::Int(999))]).unwrap();
            let row = db.read(7, &Projection::all(&schema())).unwrap().unwrap();
            assert_eq!(
                row.get(3),
                Some(&Value::Int(999)),
                "design {}",
                layout.name()
            );
            assert_eq!(row.get(0), Some(&Value::Int(1)), "design {}", layout.name());
            assert_eq!(row.get(7), Some(&Value::Int(8)), "design {}", layout.name());
            // After further compaction the partial row is merged physically.
            db.compact_all().unwrap();
            let row = db.read(7, &Projection::all(&schema())).unwrap().unwrap();
            assert_eq!(row.get(3), Some(&Value::Int(999)));
            assert_eq!(row.get(0), Some(&Value::Int(1)));
        }
    }

    #[test]
    fn delete_hides_key_in_all_designs() {
        for layout in designs() {
            let db = db_with(layout);
            for key in 0..30u64 {
                db.insert_int_row(key, 5).unwrap();
            }
            db.compact_all().unwrap();
            db.delete(13).unwrap();
            assert!(db.read(13, &Projection::all(&schema())).unwrap().is_none());
            // And stays hidden after the tombstone is compacted down.
            db.compact_all().unwrap();
            assert!(db.read(13, &Projection::all(&schema())).unwrap().is_none());
            assert!(db.read(12, &Projection::all(&schema())).unwrap().is_some());
        }
    }

    #[test]
    fn scan_returns_sorted_keys_with_projection() {
        for layout in designs() {
            let db = db_with(layout.clone());
            for key in 0..300u64 {
                db.insert_int_row(key, key as i64).unwrap();
            }
            db.compact_all().unwrap();
            let proj = Projection::of([0, 6]);
            let rows = db.scan(50, 99, &proj).unwrap();
            assert_eq!(rows.len(), 50, "design {}", layout.name());
            assert!(
                rows.windows(2).all(|w| w[0].0 < w[1].0),
                "keys must be sorted"
            );
            for (key, frag) in &rows {
                assert_eq!(frag.get(0), Some(&Value::Int(*key as i64 + 1)));
                assert_eq!(frag.get(6), Some(&Value::Int(*key as i64 + 7)));
                assert!(!frag.contains(3), "unprojected column leaked");
            }
        }
    }

    #[test]
    fn scan_sees_updates_and_deletes() {
        let db = db_with(LayoutSpec::equi_width(&schema(), 6, 2));
        for key in 0..100u64 {
            db.insert_int_row(key, 0).unwrap();
        }
        db.compact_all().unwrap();
        db.update(10, vec![(2, Value::Int(-1))]).unwrap();
        db.delete(11).unwrap();
        let rows = db.scan(0, 99, &Projection::all(&schema())).unwrap();
        assert_eq!(rows.len(), 99, "deleted key must be skipped");
        let updated = rows.iter().find(|(k, _)| *k == 10).unwrap();
        assert_eq!(updated.1.get(2), Some(&Value::Int(-1)));
        assert_eq!(updated.1.get(0), Some(&Value::Int(1)));
        assert!(!rows.iter().any(|(k, _)| *k == 11));
    }

    #[test]
    fn data_reaches_deeper_levels_with_cg_layout() {
        let db = db_with(LayoutSpec::equi_width(&schema(), 6, 2));
        for key in 0..2000u64 {
            db.insert_int_row(key, key as i64).unwrap();
        }
        db.flush().unwrap();
        db.compact_until_stable().unwrap();
        let summaries = db.level_summaries();
        let deepest_populated = summaries
            .iter()
            .rev()
            .find(|s| s.total_bytes > 0)
            .map(|s| s.level)
            .unwrap_or(0);
        assert!(deepest_populated >= 1, "data should age past level 0");
        // Levels >= 1 use the configured number of column groups, and at least
        // one populated level must hold data in several of them (compaction
        // from Level-0 splits full rows into every CG of the next level; a
        // deeper level may legitimately hold only the single CG that
        // overflowed so far).
        let mut some_level_has_multiple_cgs = false;
        for s in &summaries {
            if s.level >= 1 && s.total_bytes > 0 {
                assert_eq!(s.column_groups.len(), 4, "8 columns / cg_size 2");
                let populated = s.column_groups.iter().filter(|(_, e, _)| *e > 0).count();
                if populated >= 2 {
                    some_level_has_multiple_cgs = true;
                }
            }
        }
        assert!(some_level_has_multiple_cgs);
    }

    #[test]
    fn stats_reflect_operations() {
        let db = db_with(LayoutSpec::equi_width(&schema(), 6, 4));
        for key in 0..500u64 {
            db.insert_int_row(key, 1).unwrap();
        }
        db.compact_all().unwrap();
        db.read(5, &Projection::of([0])).unwrap();
        db.scan(0, 50, &Projection::of([7])).unwrap();
        db.update(3, vec![(1, Value::Int(0))]).unwrap();
        db.delete(4).unwrap();
        let stats = db.stats();
        assert_eq!(stats.inserts, 500);
        assert_eq!(stats.point_reads, 1);
        assert_eq!(stats.scans, 1);
        assert_eq!(stats.updates, 1);
        assert_eq!(stats.deletes, 1);
        assert!(stats.flushes >= 1);
        assert!(stats.compactions >= 1);
        assert!(stats.compaction_bytes_written > 0);
    }

    #[test]
    fn recovery_preserves_data_and_layout() {
        let storage: StorageRef = MemStorage::new_ref();
        let layout = LayoutSpec::equi_width(&schema(), 6, 2);
        let options = LaserOptions::small_for_tests(layout.clone());
        {
            let db = LaserDb::open(Arc::clone(&storage), options.clone()).unwrap();
            for key in 0..400u64 {
                db.insert_int_row(key, key as i64).unwrap();
            }
            db.flush().unwrap();
            db.compact_until_stable().unwrap();
            // Unflushed tail in the WAL only.
            for key in 400..450u64 {
                db.insert_int_row(key, key as i64).unwrap();
            }
        }
        let db = LaserDb::open(storage, options).unwrap();
        for key in (0..450u64).step_by(37) {
            let row = db.read(key, &Projection::of([2])).unwrap().unwrap();
            assert_eq!(row.get(2), Some(&Value::Int(key as i64 + 3)));
        }
    }

    #[test]
    fn insert_requires_complete_row() {
        let db = db_with(LayoutSpec::row_store(&schema(), 4));
        let partial = RowFragment::from_cells(vec![(0, Value::Int(1))]);
        assert!(db.insert(1, partial).is_err());
        assert!(db.update(1, vec![]).is_err());
        assert!(
            db.update(1, vec![(C, Value::Int(1))]).is_err(),
            "out-of-schema column"
        );
    }

    #[test]
    fn update_then_delete_then_update() {
        let db = db_with(LayoutSpec::equi_width(&schema(), 6, 2));
        db.insert_int_row(1, 0).unwrap();
        db.compact_all().unwrap();
        db.delete(1).unwrap();
        db.update(1, vec![(0, Value::Int(7))]).unwrap();
        // The newer partial is visible; the deleted older columns are not.
        let row = db.read(1, &Projection::all(&schema())).unwrap().unwrap();
        assert_eq!(row.get(0), Some(&Value::Int(7)));
        assert_eq!(row.get(1), None);
    }

    #[test]
    fn read_empty_projection_returns_whole_row() {
        let db = db_with(LayoutSpec::row_store(&schema(), 4));
        db.insert_int_row(9, 100).unwrap();
        let row = db.read(9, &Projection::empty()).unwrap().unwrap();
        assert!(row.is_complete(&schema()));
    }
}
