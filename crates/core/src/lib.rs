//! # laser-core
//!
//! LASER — a Lifecycle-Aware Storage Engine for Real-time analytics — built
//! on a **Real-Time LSM-Tree**: an LSM-Tree in which every on-disk level may
//! store its data in a different column-group layout, from purely
//! row-oriented (recent data, OLTP access) to purely column-oriented (old
//! data, OLAP access). This crate reproduces the system described in
//! "Real-Time LSM-Trees for HTAP Workloads" (Saxena, Golab, Idreos, Ilyas —
//! ICDE 2023) on top of the from-scratch LSM substrate in `lsm-storage`.
//!
//! ## Concepts
//!
//! * [`schema::Schema`] / [`schema::Projection`] — tables with an integer key
//!   and `c` payload columns; projections are the column sets queries touch.
//! * [`layout::ColumnGroup`] / [`layout::LevelLayout`] / [`layout::LayoutSpec`]
//!   — the design space of Real-Time LSM-Trees (Section 3), including the
//!   paper's baselines (`rocksdb-row`, `rocksdb-col`, `cg-size-k`,
//!   `HTAP-simple`) and the advisor's `D-opt` design (Figure 9b).
//! * [`row::RowFragment`] — full rows, partial rows (column updates, §4.2) and
//!   column-group fragments (§4.1), all with the same encoding.
//! * [`iters`] — `ColumnMergingIterator` and `LevelMergingIterator` (§4.3–4.4).
//! * [`db::LaserDb`] — the engine: `insert`, `read(key, Π)`, `scan(lo, hi, Π)`,
//!   `update(key, valueΠ)`, `delete`, flush, and CG-local compaction that
//!   changes the data layout as records age through the levels.
//! * [`stats`] — per-level workload profiling consumed by the design advisor.
//!
//! ## Quick example
//!
//! ```
//! use laser_core::{LaserDb, LaserOptions, LayoutSpec, Projection, Schema, Value};
//!
//! let schema = Schema::with_columns(8);
//! let design = LayoutSpec::equi_width(&schema, 6, 2);
//! let db = LaserDb::open_in_memory(LaserOptions::small_for_tests(design)).unwrap();
//!
//! db.insert_int_row(1, 100).unwrap();
//! db.update(1, vec![(3, Value::Int(-1))]).unwrap();
//! let row = db.read(1, &Projection::of([0, 3])).unwrap().unwrap();
//! assert_eq!(row.get(3), Some(&Value::Int(-1)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod db;
pub mod iters;
pub mod layout;
pub mod options;
pub mod row;
pub mod schema;
pub mod stats;
pub mod value;

pub use db::{LaserDb, LevelSummary};
pub use iters::{ColumnMergingIterator, ConcatIterator, FragmentSource, LevelMergingIterator};
pub use layout::{ColumnGroup, LayoutSpec, LevelLayout};
pub use options::LaserOptions;
pub use row::RowFragment;
pub use schema::{ColumnId, Projection, Schema};
pub use stats::{EngineStats, EngineStatsSnapshot, LevelProfile};
pub use value::Value;

/// Re-export of the storage substrate for callers that need direct access to
/// storage backends, I/O statistics or the plain key-value LSM engine.
pub use lsm_storage;
