//! Table schema and projections.
//!
//! A table has a 64-bit integer primary key (the paper's `a0`) and `c`
//! payload columns `a1..ac`. A [`Projection`] is the set of payload columns a
//! query touches (the paper's `Π`).

use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a payload column: 0-based index into the schema.
pub type ColumnId = usize;

/// A table schema: ordered payload column names (the key column is implicit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<String>,
}

impl Schema {
    /// Creates a schema from column names.
    pub fn new(columns: Vec<String>) -> Self {
        Schema { columns }
    }

    /// Creates a schema with `c` integer payload columns named `a1..ac`,
    /// matching the paper's benchmark tables (narrow: c=30, wide: c=100).
    pub fn with_columns(c: usize) -> Self {
        Schema {
            columns: (1..=c).map(|i| format!("a{i}")).collect(),
        }
    }

    /// The paper's narrow table: 30 payload columns.
    pub fn narrow() -> Self {
        Self::with_columns(30)
    }

    /// The paper's wide table: 100 payload columns.
    pub fn wide() -> Self {
        Self::with_columns(100)
    }

    /// Number of payload columns (`c` in the paper).
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Name of column `id`.
    pub fn column_name(&self, id: ColumnId) -> Option<&str> {
        self.columns.get(id).map(|s| s.as_str())
    }

    /// Looks up a column id by name.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.columns.iter().position(|c| c == name)
    }

    /// All column ids.
    pub fn all_columns(&self) -> Vec<ColumnId> {
        (0..self.columns.len()).collect()
    }

    /// Returns true if `id` is a valid column of this schema.
    pub fn contains(&self, id: ColumnId) -> bool {
        id < self.columns.len()
    }
}

/// A set of projected payload columns (the paper's `Π`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Projection {
    columns: BTreeSet<ColumnId>,
}

impl Projection {
    /// An empty projection.
    pub fn empty() -> Self {
        Projection::default()
    }

    /// A projection over the given columns.
    pub fn of(columns: impl IntoIterator<Item = ColumnId>) -> Self {
        Projection {
            columns: columns.into_iter().collect(),
        }
    }

    /// Every column of `schema`.
    pub fn all(schema: &Schema) -> Self {
        Projection::of(schema.all_columns())
    }

    /// A contiguous range of columns `[start, end]` using the paper's 1-based
    /// numbering (`columns 16-30` → `Projection::range_1based(16, 30)`).
    pub fn range_1based(start: usize, end: usize) -> Self {
        Projection::of((start..=end).map(|i| i - 1))
    }

    /// Number of projected columns (`|Π|`).
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Returns true if no columns are projected.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Returns true if `col` is projected.
    pub fn contains(&self, col: ColumnId) -> bool {
        self.columns.contains(&col)
    }

    /// Iterates the projected columns in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ColumnId> + '_ {
        self.columns.iter().copied()
    }

    /// Returns the projected columns as a vector.
    pub fn to_vec(&self) -> Vec<ColumnId> {
        self.columns.iter().copied().collect()
    }

    /// Returns true if this projection intersects `other` (any shared column).
    pub fn intersects(&self, other: &[ColumnId]) -> bool {
        other.iter().any(|c| self.columns.contains(c))
    }

    /// Returns the intersection with a column list.
    pub fn intersect(&self, other: &[ColumnId]) -> Projection {
        Projection::of(other.iter().copied().filter(|c| self.columns.contains(c)))
    }

    /// Returns true if every column of this projection appears in `other`.
    pub fn is_subset_of(&self, other: &[ColumnId]) -> bool {
        self.columns.iter().all(|c| other.contains(c))
    }

    /// Adds a column.
    pub fn insert(&mut self, col: ColumnId) {
        self.columns.insert(col);
    }

    /// Removes a column.
    pub fn remove(&mut self, col: ColumnId) {
        self.columns.remove(&col);
    }

    /// Set difference: columns in `self` but not in `other`.
    pub fn difference(&self, other: &Projection) -> Projection {
        Projection {
            columns: self.columns.difference(&other.columns).copied().collect(),
        }
    }

    /// Set union.
    pub fn union(&self, other: &Projection) -> Projection {
        Projection {
            columns: self.columns.union(&other.columns).copied().collect(),
        }
    }
}

impl fmt::Display for Projection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self.columns.iter().map(|c| format!("a{}", c + 1)).collect();
        write!(f, "{{{}}}", cols.join(","))
    }
}

impl FromIterator<ColumnId> for Projection {
    fn from_iter<T: IntoIterator<Item = ColumnId>>(iter: T) -> Self {
        Projection::of(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_construction() {
        let s = Schema::narrow();
        assert_eq!(s.num_columns(), 30);
        assert_eq!(s.column_name(0), Some("a1"));
        assert_eq!(s.column_name(29), Some("a30"));
        assert_eq!(s.column_name(30), None);
        assert_eq!(s.column_id("a15"), Some(14));
        assert_eq!(s.column_id("bogus"), None);
        assert!(s.contains(29));
        assert!(!s.contains(30));
        assert_eq!(Schema::wide().num_columns(), 100);
        let custom = Schema::new(vec!["price".into(), "qty".into()]);
        assert_eq!(custom.column_id("qty"), Some(1));
    }

    #[test]
    fn projection_basics() {
        let p = Projection::of([2, 0, 5]);
        assert_eq!(p.len(), 3);
        assert!(p.contains(0));
        assert!(!p.contains(1));
        assert_eq!(p.to_vec(), vec![0, 2, 5]);
        assert!(Projection::empty().is_empty());
    }

    #[test]
    fn projection_range_is_1based() {
        // "columns 16-30" in the paper = ids 15..=29.
        let p = Projection::range_1based(16, 30);
        assert_eq!(p.len(), 15);
        assert!(p.contains(15));
        assert!(p.contains(29));
        assert!(!p.contains(14));
    }

    #[test]
    fn projection_set_operations() {
        let a = Projection::of([0, 1, 2, 3]);
        let b = Projection::of([2, 3, 4]);
        assert_eq!(a.intersect(&[2, 3, 4]).to_vec(), vec![2, 3]);
        assert!(a.intersects(&[3, 9]));
        assert!(!a.intersects(&[9, 10]));
        assert!(Projection::of([2, 3]).is_subset_of(&[1, 2, 3, 4]));
        assert!(!Projection::of([2, 5]).is_subset_of(&[1, 2, 3, 4]));
        assert_eq!(a.difference(&b).to_vec(), vec![0, 1]);
        assert_eq!(a.union(&b).to_vec(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn projection_all_and_display() {
        let s = Schema::with_columns(4);
        let p = Projection::all(&s);
        assert_eq!(p.len(), 4);
        assert_eq!(p.to_string(), "{a1,a2,a3,a4}");
    }

    #[test]
    fn projection_mutation() {
        let mut p = Projection::empty();
        p.insert(3);
        p.insert(1);
        p.insert(3);
        assert_eq!(p.to_vec(), vec![1, 3]);
        p.remove(1);
        assert_eq!(p.to_vec(), vec![3]);
    }
}
