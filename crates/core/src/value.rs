//! Cell values and their binary encoding.
//!
//! The HTAP benchmark of the paper uses integer columns, but the engine is
//! value-type agnostic: a cell is an [`Value`] (integer, float or byte
//! string). Values are encoded compactly (zig-zag varints for integers) so
//! the storage-size experiment of Section 4.1 is meaningful.

use lsm_storage::coding::{get_varint64, put_varint64};
use lsm_storage::{Error, Result};

/// A single cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A 64-bit signed integer (covers the benchmark's 4-byte int columns).
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// An arbitrary byte string.
    Bytes(Vec<u8>),
}

impl Value {
    /// Convenience constructor for integer values.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Convenience constructor for string values.
    pub fn string(s: impl Into<String>) -> Self {
        Value::Bytes(s.into().into_bytes())
    }

    /// Returns the integer payload if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload if this is an [`Value::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the byte payload if this is an [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(v) => Some(v),
            _ => None,
        }
    }

    /// Approximate in-memory size of the value in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Bytes(b) => b.len() + 4,
        }
    }

    /// Encodes the value: a one-byte tag followed by the payload.
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        match self {
            Value::Int(v) => {
                dst.push(0);
                put_varint64(dst, zigzag_encode(*v));
            }
            Value::Float(v) => {
                dst.push(1);
                dst.extend_from_slice(&v.to_le_bytes());
            }
            Value::Bytes(b) => {
                dst.push(2);
                put_varint64(dst, b.len() as u64);
                dst.extend_from_slice(b);
            }
        }
    }

    /// Decodes a value from `src`, returning the value and bytes consumed.
    pub fn decode(src: &[u8]) -> Result<(Value, usize)> {
        if src.is_empty() {
            return Err(Error::corruption("empty value encoding"));
        }
        match src[0] {
            0 => {
                let (raw, n) = get_varint64(&src[1..])?;
                Ok((Value::Int(zigzag_decode(raw)), 1 + n))
            }
            1 => {
                if src.len() < 9 {
                    return Err(Error::corruption("truncated float value"));
                }
                let mut b = [0u8; 8];
                b.copy_from_slice(&src[1..9]);
                Ok((Value::Float(f64::from_le_bytes(b)), 9))
            }
            2 => {
                let (len, n) = get_varint64(&src[1..])?;
                let len = len as usize;
                if src.len() < 1 + n + len {
                    return Err(Error::corruption("truncated bytes value"));
                }
                Ok((Value::Bytes(src[1 + n..1 + n + len].to_vec()), 1 + n + len))
            }
            t => Err(Error::corruption(format!("unknown value tag {t}"))),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Bytes(v.as_bytes().to_vec())
    }
}

fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN, 1 << 40] {
            let mut buf = Vec::new();
            Value::Int(v).encode_to(&mut buf);
            let (decoded, n) = Value::decode(&buf).unwrap();
            assert_eq!(decoded, Value::Int(v));
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn small_ints_encode_compactly() {
        let mut buf = Vec::new();
        Value::Int(5).encode_to(&mut buf);
        assert!(
            buf.len() <= 2,
            "small int should take <= 2 bytes, took {}",
            buf.len()
        );
    }

    #[test]
    fn float_roundtrip() {
        for v in [
            0.0f64,
            -1.5,
            std::f64::consts::PI,
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            let mut buf = Vec::new();
            Value::Float(v).encode_to(&mut buf);
            let (decoded, _) = Value::decode(&buf).unwrap();
            assert_eq!(decoded, Value::Float(v));
        }
    }

    #[test]
    fn bytes_roundtrip() {
        for v in [b"".to_vec(), b"hello".to_vec(), vec![0u8; 1000]] {
            let mut buf = Vec::new();
            Value::Bytes(v.clone()).encode_to(&mut buf);
            let (decoded, n) = Value::decode(&buf).unwrap();
            assert_eq!(decoded, Value::Bytes(v));
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn concatenated_values_decode_sequentially() {
        let values = vec![Value::Int(-7), Value::string("abc"), Value::Float(2.5)];
        let mut buf = Vec::new();
        for v in &values {
            v.encode_to(&mut buf);
        }
        let mut pos = 0;
        let mut decoded = Vec::new();
        while pos < buf.len() {
            let (v, n) = Value::decode(&buf[pos..]).unwrap();
            decoded.push(v);
            pos += n;
        }
        assert_eq!(decoded, values);
    }

    #[test]
    fn corrupt_values_rejected() {
        assert!(Value::decode(&[]).is_err());
        assert!(Value::decode(&[9, 0]).is_err());
        assert!(Value::decode(&[1, 0, 0]).is_err());
        assert!(Value::decode(&[2, 10, 1, 2]).is_err());
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), None);
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::string("x").as_bytes(), Some(&b"x"[..]));
        assert_eq!(Value::from(7i32), Value::Int(7));
        assert_eq!(Value::from("hi"), Value::Bytes(b"hi".to_vec()));
        assert!(Value::Bytes(vec![0; 10]).size_bytes() >= 10);
    }

    #[test]
    fn zigzag_properties() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        for v in [-1000i64, -3, 0, 3, 1000, i64::MAX, i64::MIN] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }
}
