//! LASER engine configuration.

use crate::layout::LayoutSpec;
use crate::schema::Schema;
use lsm_storage::sst::TableOptions;
use lsm_storage::Result;

/// Options for the Real-Time LSM-Tree engine ([`crate::db::LaserDb`]).
#[derive(Debug, Clone)]
pub struct LaserOptions {
    /// The per-level column-group design (includes the schema).
    pub layout: LayoutSpec,
    /// Size at which the mutable memtable is frozen and flushed, in bytes.
    pub memtable_size_bytes: usize,
    /// Capacity of Level-0 in bytes; level `i` holds `level0 * T^i` bytes.
    pub level0_size_bytes: u64,
    /// Size ratio `T` between adjacent levels.
    pub size_ratio: u64,
    /// Number of on-disk levels `L` (levels are numbered `0..L-1`).
    pub num_levels: usize,
    /// Target size of individual SST files produced by flush/compaction.
    pub sst_target_size_bytes: u64,
    /// Whether acknowledged writes wait for WAL durability. Concurrent
    /// writers coalesce into one fsync per sync window (group commit).
    pub sync_wal: bool,
    /// Group-commit window in milliseconds, effective only with `sync_wal`:
    /// 0 means every acknowledged write waits for an fsync covering it
    /// (strict group commit); a positive value issues at most one fsync per
    /// window, bounding data loss to that window.
    pub sync_wal_interval_ms: u64,
    /// Whether compaction runs automatically after writes and flushes.
    /// Ignored while a background maintenance scheduler is attached — the
    /// scheduler then owns compaction.
    pub auto_compact: bool,
    /// Capacity of the shared decoded-block cache in bytes; 0 disables it.
    pub block_cache_bytes: usize,
    /// With background maintenance attached: Level-0 file count (including
    /// frozen memtables awaiting flush) at which writers briefly yield.
    pub l0_slowdown_files: usize,
    /// With background maintenance attached: Level-0 file count at which
    /// writers block until a background job completes.
    pub l0_stall_files: usize,
    /// With background maintenance attached: pending background jobs at
    /// which writers block (bounds queue depth).
    pub max_pending_jobs: usize,
    /// Recovery tail size (intact WAL bytes) at or above which a clean
    /// recovery adopts the replayed sealed segments in place instead of
    /// re-logging every record into a fresh active segment. `u64::MAX`
    /// disables adoption.
    pub recovery_adopt_bytes: u64,
    /// SST/block construction parameters.
    pub table: TableOptions,
}

impl LaserOptions {
    /// Reasonable defaults for the given design: RocksDB-like sizes.
    pub fn new(layout: LayoutSpec) -> Self {
        LaserOptions {
            layout,
            memtable_size_bytes: 4 << 20,
            level0_size_bytes: 64 << 20,
            size_ratio: 2,
            num_levels: 8,
            sst_target_size_bytes: 8 << 20,
            sync_wal: false,
            sync_wal_interval_ms: 0,
            auto_compact: true,
            block_cache_bytes: 32 << 20,
            l0_slowdown_files: 8,
            l0_stall_files: 16,
            max_pending_jobs: 64,
            recovery_adopt_bytes: 1 << 20,
            table: TableOptions::default(),
        }
    }

    /// A scaled-down configuration for tests and laptop-scale experiments:
    /// tiny memtable and Level-0 so a few thousand rows populate many levels.
    pub fn small_for_tests(layout: LayoutSpec) -> Self {
        LaserOptions {
            layout,
            memtable_size_bytes: 32 << 10,
            level0_size_bytes: 48 << 10,
            size_ratio: 2,
            num_levels: 6,
            sst_target_size_bytes: 32 << 10,
            sync_wal: false,
            sync_wal_interval_ms: 0,
            auto_compact: true,
            // Tests opt into caching explicitly so I/O-accounting experiments
            // keep the paper's uncached cost shapes.
            block_cache_bytes: 0,
            l0_slowdown_files: 8,
            l0_stall_files: 16,
            max_pending_jobs: 64,
            // Small enough that scaled-down tests exercise the adoption path.
            recovery_adopt_bytes: 4 << 10,
            table: TableOptions::default(),
        }
    }

    /// The schema this engine stores.
    pub fn schema(&self) -> &Schema {
        self.layout.schema()
    }

    /// Capacity of level `i` in bytes.
    pub fn level_capacity_bytes(&self, level: usize) -> u64 {
        self.level0_size_bytes
            .saturating_mul(self.size_ratio.saturating_pow(level as u32))
    }

    /// Capacity of column group `cg_index` within `level`, obtained by
    /// dividing the level capacity proportionally to each CG's width
    /// (columns + the co-stored key), as Section 4.4 prescribes.
    pub fn cg_capacity_bytes(&self, level: usize, cg_index: usize) -> u64 {
        let layout = self.layout.level(level);
        let total_width: usize = layout.groups().iter().map(|g| g.size() + 1).sum();
        let this_width = layout
            .groups()
            .get(cg_index)
            .map(|g| g.size() + 1)
            .unwrap_or(1);
        let level_cap = self.level_capacity_bytes(level);
        ((level_cap as u128 * this_width as u128) / total_width.max(1) as u128) as u64
    }

    /// Validates option consistency (including the layout).
    pub fn validate(&self) -> Result<()> {
        self.layout.validate()?;
        if self.size_ratio < 2 {
            return Err(lsm_storage::Error::invalid("size_ratio must be at least 2"));
        }
        if self.num_levels == 0 {
            return Err(lsm_storage::Error::invalid("num_levels must be at least 1"));
        }
        if self.memtable_size_bytes == 0 || self.level0_size_bytes == 0 {
            return Err(lsm_storage::Error::invalid("sizes must be non-zero"));
        }
        if self.l0_slowdown_files == 0 || self.l0_stall_files < self.l0_slowdown_files {
            return Err(lsm_storage::Error::invalid(
                "backpressure thresholds require 1 <= l0_slowdown_files <= l0_stall_files",
            ));
        }
        if self.max_pending_jobs == 0 {
            return Err(lsm_storage::Error::invalid(
                "max_pending_jobs must be non-zero",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutSpec;

    #[test]
    fn defaults_are_valid() {
        let schema = Schema::narrow();
        LaserOptions::new(LayoutSpec::d_opt_paper(&schema).unwrap())
            .validate()
            .unwrap();
        LaserOptions::small_for_tests(LayoutSpec::row_store(&schema, 6))
            .validate()
            .unwrap();
    }

    #[test]
    fn cg_capacity_is_proportional_to_width() {
        let schema = Schema::with_columns(4);
        let spec = LayoutSpec::new(
            schema.clone(),
            vec![
                crate::layout::LevelLayout::row_oriented(&schema),
                crate::layout::LevelLayout::new(vec![
                    crate::layout::ColumnGroup::new(vec![0, 1, 2]),
                    crate::layout::ColumnGroup::new(vec![3]),
                ]),
            ],
            "test",
        )
        .unwrap();
        let mut opts = LaserOptions::small_for_tests(spec);
        opts.level0_size_bytes = 600;
        opts.size_ratio = 2;
        // Level 1 capacity = 1200; widths are (3+1)=4 and (1+1)=2, total 6.
        assert_eq!(opts.cg_capacity_bytes(1, 0), 800);
        assert_eq!(opts.cg_capacity_bytes(1, 1), 400);
        // Level 0 has one CG spanning everything.
        assert_eq!(opts.cg_capacity_bytes(0, 0), 600);
    }

    #[test]
    fn invalid_options_rejected() {
        let schema = Schema::narrow();
        let layout = LayoutSpec::row_store(&schema, 4);
        let mut o = LaserOptions::new(layout.clone());
        o.size_ratio = 1;
        assert!(o.validate().is_err());
        let mut o = LaserOptions::new(layout.clone());
        o.num_levels = 0;
        assert!(o.validate().is_err());
        let mut o = LaserOptions::new(layout);
        o.level0_size_bytes = 0;
        assert!(o.validate().is_err());
    }
}
