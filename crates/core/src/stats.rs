//! Engine statistics: per-operation counters, per-level access profiling and
//! write-amplification accounting.
//!
//! The per-level profile is what the design advisor (Section 6.1: "Profiling
//! the workload wl_i at each level allows us to determine w, p_i, q_i, u_i and
//! s_i") consumes, and what EXPERIMENTS.md reports alongside the paper's
//! figures.

use parking_lot::Mutex;

use crate::schema::Projection;
use lsm_storage::wal_segment::WalStatsSnapshot;

/// Per-level workload observation: how many operations of each kind were
/// served at that level and with which projections.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LevelProfile {
    /// Point reads that touched this level (`p_i`).
    pub point_reads: u64,
    /// Column groups fetched by point reads at this level (sums `E^g_i`).
    pub point_read_groups_fetched: u64,
    /// Range scans that touched this level (`q_i`).
    pub scans: u64,
    /// Entries returned by scans from this level (`s_i`, summed).
    pub scan_entries: u64,
    /// Updates whose columns were eventually merged at this level (`u_i`).
    pub updates: u64,
    /// Projections observed at this level (reads, scans and updates),
    /// with multiplicity. The advisor splits candidate column groups on these.
    pub projections: Vec<(Projection, u64)>,
    /// Point-read projections alone, with multiplicity — kept separate from
    /// the combined list so a workload trace can be rebuilt losslessly per
    /// operation kind.
    pub read_projections: Vec<(Projection, u64)>,
    /// Scan projections alone: `(projection, entries returned, scans)`.
    pub scan_projections: Vec<(Projection, u64, u64)>,
    /// Update projections alone, with multiplicity.
    pub update_projections: Vec<(Projection, u64)>,
}

impl LevelProfile {
    /// Records one occurrence of a projection.
    pub fn record_projection(&mut self, projection: &Projection) {
        bump_projection(&mut self.projections, projection, 1);
    }
}

/// Bumps `projection` by `count` in a `(projection, count)` list.
fn bump_projection(list: &mut Vec<(Projection, u64)>, projection: &Projection, count: u64) {
    if let Some(entry) = list.iter_mut().find(|(p, _)| p == projection) {
        entry.1 += count;
    } else {
        list.push((projection.clone(), count));
    }
}

/// Aggregate engine statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStatsSnapshot {
    /// Number of insert operations.
    pub inserts: u64,
    /// Number of update (partial-row) operations.
    pub updates: u64,
    /// Number of delete operations.
    pub deletes: u64,
    /// Number of point reads.
    pub point_reads: u64,
    /// Number of range scans.
    pub scans: u64,
    /// Memtable flushes.
    pub flushes: u64,
    /// Compaction jobs executed.
    pub compactions: u64,
    /// Bytes written by flushes and compactions (write amplification).
    pub compaction_bytes_written: u64,
    /// Bytes read by compactions.
    pub compaction_bytes_read: u64,
    /// Entries written by flushes and compactions.
    pub compaction_entries_written: u64,
    /// Logical bytes accepted on the write path (key + encoded fragment),
    /// before any storage overhead — the denominator of measured write
    /// amplification.
    pub ingest_bytes: u64,
    /// Writes that blocked on backpressure (stall threshold reached).
    pub stall_events: u64,
    /// Writes that briefly yielded on backpressure (slowdown threshold).
    pub slowdown_events: u64,
    /// Block-cache hits (0 when no cache is configured).
    pub cache_hits: u64,
    /// Block-cache misses (0 when no cache is configured).
    pub cache_misses: u64,
    /// Background jobs completed by an attached maintenance scheduler.
    pub bg_jobs_completed: u64,
    /// Background jobs that failed.
    pub bg_jobs_failed: u64,
    /// Background jobs queued or running at snapshot time.
    pub bg_jobs_pending: u64,
    /// Durability counters of the segmented write-ahead log.
    pub wal: WalStatsSnapshot,
    /// Per-level access profile.
    pub levels: Vec<LevelProfile>,
}

impl EngineStatsSnapshot {
    /// Total column groups fetched by point reads across all levels
    /// (the empirical counterpart of Equation 5 summed over the workload).
    pub fn total_point_read_groups(&self) -> u64 {
        self.levels
            .iter()
            .map(|l| l.point_read_groups_fetched)
            .sum()
    }

    /// Returns the counters accumulated since `earlier`. All subtractions
    /// saturate at zero, so a counter reset between the two snapshots yields
    /// zeros instead of wrapping. `bg_jobs_pending` is a gauge and keeps this
    /// snapshot's value; per-level profiles likewise keep the current values.
    pub fn delta_since(&self, earlier: &EngineStatsSnapshot) -> EngineStatsSnapshot {
        EngineStatsSnapshot {
            inserts: self.inserts.saturating_sub(earlier.inserts),
            updates: self.updates.saturating_sub(earlier.updates),
            deletes: self.deletes.saturating_sub(earlier.deletes),
            point_reads: self.point_reads.saturating_sub(earlier.point_reads),
            scans: self.scans.saturating_sub(earlier.scans),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            compactions: self.compactions.saturating_sub(earlier.compactions),
            compaction_bytes_written: self
                .compaction_bytes_written
                .saturating_sub(earlier.compaction_bytes_written),
            compaction_bytes_read: self
                .compaction_bytes_read
                .saturating_sub(earlier.compaction_bytes_read),
            compaction_entries_written: self
                .compaction_entries_written
                .saturating_sub(earlier.compaction_entries_written),
            ingest_bytes: self.ingest_bytes.saturating_sub(earlier.ingest_bytes),
            stall_events: self.stall_events.saturating_sub(earlier.stall_events),
            slowdown_events: self.slowdown_events.saturating_sub(earlier.slowdown_events),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            bg_jobs_completed: self
                .bg_jobs_completed
                .saturating_sub(earlier.bg_jobs_completed),
            bg_jobs_failed: self.bg_jobs_failed.saturating_sub(earlier.bg_jobs_failed),
            bg_jobs_pending: self.bg_jobs_pending,
            wal: self.wal.delta_since(&earlier.wal),
            levels: self.levels.clone(),
        }
    }

    /// Block-cache hit rate in `[0, 1]`; zero when no cache is configured.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Thread-safe statistics collector owned by the engine.
#[derive(Debug)]
pub struct EngineStats {
    inner: Mutex<EngineStatsSnapshot>,
}

impl EngineStats {
    /// Creates a collector for a tree with `num_levels` levels.
    pub fn new(num_levels: usize) -> Self {
        EngineStats {
            inner: Mutex::new(EngineStatsSnapshot {
                levels: vec![LevelProfile::default(); num_levels],
                ..Default::default()
            }),
        }
    }

    /// Records an insert.
    pub fn record_insert(&self) {
        self.inner.lock().inserts += 1;
    }

    /// Records an update.
    pub fn record_update(&self) {
        self.inner.lock().updates += 1;
    }

    /// Records a delete.
    pub fn record_delete(&self) {
        self.inner.lock().deletes += 1;
    }

    /// Records a point read that fetched `groups_fetched` CGs at `level`.
    pub fn record_point_read_level(
        &self,
        level: usize,
        groups_fetched: u64,
        projection: &Projection,
    ) {
        let mut inner = self.inner.lock();
        if let Some(profile) = inner.levels.get_mut(level) {
            profile.point_reads += 1;
            profile.point_read_groups_fetched += groups_fetched;
            profile.record_projection(projection);
            bump_projection(&mut profile.read_projections, projection, 1);
        }
    }

    /// Records the completion of a point read.
    pub fn record_point_read(&self) {
        self.inner.lock().point_reads += 1;
    }

    /// Records a scan that returned `entries` entries from `level`.
    pub fn record_scan_level(&self, level: usize, entries: u64, projection: &Projection) {
        let mut inner = self.inner.lock();
        if let Some(profile) = inner.levels.get_mut(level) {
            profile.scans += 1;
            profile.scan_entries += entries;
            profile.record_projection(projection);
            if let Some(entry) = profile
                .scan_projections
                .iter_mut()
                .find(|(p, _, _)| p == projection)
            {
                entry.1 += entries;
                entry.2 += 1;
            } else {
                profile
                    .scan_projections
                    .push((projection.clone(), entries, 1));
            }
        }
    }

    /// Records the completion of a range scan.
    pub fn record_scan(&self) {
        self.inner.lock().scans += 1;
    }

    /// Records an update projection profile against `level`.
    pub fn record_update_level(&self, level: usize, projection: &Projection) {
        let mut inner = self.inner.lock();
        if let Some(profile) = inner.levels.get_mut(level) {
            profile.updates += 1;
            profile.record_projection(projection);
            bump_projection(&mut profile.update_projections, projection, 1);
        }
    }

    /// Records `bytes` of logical payload accepted on the write path.
    pub fn record_ingest_bytes(&self, bytes: u64) {
        self.inner.lock().ingest_bytes += bytes;
    }

    /// Records a flush that wrote `bytes` / `entries`.
    pub fn record_flush(&self, bytes: u64, entries: u64) {
        let mut inner = self.inner.lock();
        inner.flushes += 1;
        inner.compaction_bytes_written += bytes;
        inner.compaction_entries_written += entries;
    }

    /// Records a write that blocked on backpressure.
    pub fn record_stall(&self) {
        self.inner.lock().stall_events += 1;
    }

    /// Records a write that briefly yielded on backpressure.
    pub fn record_slowdown(&self) {
        self.inner.lock().slowdown_events += 1;
    }

    /// Records a compaction job.
    pub fn record_compaction(&self, bytes_read: u64, bytes_written: u64, entries: u64) {
        let mut inner = self.inner.lock();
        inner.compactions += 1;
        inner.compaction_bytes_read += bytes_read;
        inner.compaction_bytes_written += bytes_written;
        inner.compaction_entries_written += entries;
    }

    /// Returns a point-in-time copy of all counters.
    pub fn snapshot(&self) -> EngineStatsSnapshot {
        self.inner.lock().clone()
    }

    /// Resets every counter (level profiles keep their size).
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        let levels = inner.levels.len();
        *inner = EngineStatsSnapshot {
            levels: vec![LevelProfile::default(); levels],
            ..Default::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = EngineStats::new(4);
        stats.record_insert();
        stats.record_insert();
        stats.record_update();
        stats.record_delete();
        stats.record_point_read();
        stats.record_scan();
        stats.record_flush(1000, 10);
        stats.record_compaction(500, 800, 8);
        let snap = stats.snapshot();
        assert_eq!(snap.inserts, 2);
        assert_eq!(snap.updates, 1);
        assert_eq!(snap.deletes, 1);
        assert_eq!(snap.point_reads, 1);
        assert_eq!(snap.scans, 1);
        assert_eq!(snap.flushes, 1);
        assert_eq!(snap.compactions, 1);
        assert_eq!(snap.compaction_bytes_written, 1800);
        assert_eq!(snap.compaction_bytes_read, 500);
        assert_eq!(snap.compaction_entries_written, 18);
    }

    #[test]
    fn per_level_profiles() {
        let stats = EngineStats::new(3);
        let proj = Projection::of([0, 1]);
        stats.record_point_read_level(1, 2, &proj);
        stats.record_point_read_level(1, 1, &proj);
        stats.record_scan_level(2, 100, &Projection::of([5]));
        stats.record_update_level(0, &proj);
        let snap = stats.snapshot();
        assert_eq!(snap.levels[1].point_reads, 2);
        assert_eq!(snap.levels[1].point_read_groups_fetched, 3);
        assert_eq!(snap.levels[1].projections, vec![(proj.clone(), 2)]);
        assert_eq!(snap.levels[1].read_projections, vec![(proj.clone(), 2)]);
        assert_eq!(snap.levels[0].update_projections, vec![(proj.clone(), 1)]);
        assert_eq!(
            snap.levels[2].scan_projections,
            vec![(Projection::of([5]), 100, 1)]
        );
        assert_eq!(snap.levels[2].scans, 1);
        assert_eq!(snap.levels[2].scan_entries, 100);
        assert_eq!(snap.levels[0].updates, 1);
        assert_eq!(snap.total_point_read_groups(), 3);
        // Out-of-range level is ignored, not a panic.
        stats.record_point_read_level(99, 1, &proj);
    }

    #[test]
    fn reset_clears_counters_but_keeps_levels() {
        let stats = EngineStats::new(5);
        stats.record_insert();
        stats.record_point_read_level(3, 1, &Projection::of([0]));
        stats.reset();
        let snap = stats.snapshot();
        assert_eq!(snap.inserts, 0);
        assert_eq!(snap.levels.len(), 5);
        assert_eq!(snap.levels[3].point_reads, 0);
    }
}
