//! The maintenance event log: a bounded ring buffer of everything the
//! storage stack did in the background, with durations and byte counts.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// What kind of maintenance activity an [`Event`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A frozen memtable was flushed to a Level-0 SST.
    Flush,
    /// A compaction merged SSTs into the next level (or rewrote a column
    /// group).
    Compaction,
    /// A trim pass rewrote an SST to drop out-of-bound entries left behind
    /// by a shard split.
    Trim,
    /// A shard split: one shard became two, with a crash-safe manifest swap.
    Split,
    /// A write stalled on backpressure until maintenance caught up.
    Stall,
    /// The WAL sealed its active segment and started a new one.
    WalRotation,
    /// A WAL group-commit fsync that crossed the slow-op threshold (fast
    /// fsyncs are only recorded in the latency histogram, not the log).
    WalFsync,
    /// A lagging replica caught up from the leader's retained WAL (sealed
    /// segment images plus the live tail).
    ReplicaCatchup,
    /// A replica stopped acknowledging and was declared lost by the health
    /// monitor.
    ReplicaLost,
    /// A replica was promoted to leader after the previous leader was lost
    /// (two-phase: intent record, then manifest commit).
    Promotion,
    /// A WAL append, fsync or rotation errored (transient or persistent);
    /// the rotation-recovery path handled it.
    WalSyncError,
    /// An engine entered read-only degradation after a persistent storage
    /// fault.
    Degraded,
    /// A degraded engine recovered full writability (the fault cleared).
    Recovered,
    /// The health monitor provisioned a replacement replica after a
    /// promotion or replica loss.
    ReplicaProvision,
}

impl EventKind {
    /// Stable lower-case name used in exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::Flush => "flush",
            EventKind::Compaction => "compaction",
            EventKind::Trim => "trim",
            EventKind::Split => "split",
            EventKind::Stall => "stall",
            EventKind::WalRotation => "wal_rotation",
            EventKind::WalFsync => "wal_fsync",
            EventKind::ReplicaCatchup => "replica_catchup",
            EventKind::ReplicaLost => "replica_lost",
            EventKind::Promotion => "promotion",
            EventKind::WalSyncError => "wal_sync_error",
            EventKind::Degraded => "degraded",
            EventKind::Recovered => "recovered",
            EventKind::ReplicaProvision => "replica_provision",
        }
    }
}

/// One entry of the maintenance event log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Which component it happened to (shard label, e.g. `"3"`, or `"db"`
    /// for an unsharded engine).
    pub label: String,
    /// Wall-clock completion time, milliseconds since the Unix epoch.
    pub at_unix_ms: u64,
    /// How long the operation took, in microseconds.
    pub duration_us: u64,
    /// Bytes read by the operation (compaction / trim inputs).
    pub bytes_read: u64,
    /// Bytes written by the operation (flush / compaction outputs).
    pub bytes_written: u64,
    /// Entries written (or trimmed, for [`EventKind::Trim`]).
    pub entries: u64,
    /// True if the duration crossed the configured slow-op threshold.
    pub slow: bool,
}

/// Per-kind duration thresholds above which an event is flagged `slow` and
/// counted in `laser_slow_ops_total`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlowOpThresholds {
    /// Threshold for memtable flushes.
    pub flush: Duration,
    /// Threshold for compactions.
    pub compaction: Duration,
    /// Threshold for post-split trim passes.
    pub trim: Duration,
    /// Threshold for shard splits.
    pub split: Duration,
    /// Threshold for backpressure stalls.
    pub stall: Duration,
    /// Threshold for WAL segment rotations.
    pub wal_rotation: Duration,
    /// Threshold for WAL group-commit fsyncs.
    pub wal_fsync: Duration,
    /// Threshold for replica catch-up transfers.
    pub replica_catchup: Duration,
    /// Threshold for leader promotions (and replica-loss handling).
    pub promotion: Duration,
    /// Threshold for fault events (WAL errors, degradation transitions).
    /// Zero by default: a storage fault is always notable, however fast the
    /// handling was.
    pub fault: Duration,
}

impl Default for SlowOpThresholds {
    fn default() -> Self {
        SlowOpThresholds {
            flush: Duration::from_millis(250),
            compaction: Duration::from_millis(500),
            trim: Duration::from_millis(500),
            split: Duration::from_secs(1),
            stall: Duration::from_millis(100),
            wal_rotation: Duration::from_millis(100),
            wal_fsync: Duration::from_millis(50),
            replica_catchup: Duration::from_secs(1),
            promotion: Duration::from_secs(1),
            fault: Duration::ZERO,
        }
    }
}

impl SlowOpThresholds {
    /// The threshold applying to `kind`.
    pub fn threshold_for(&self, kind: EventKind) -> Duration {
        match kind {
            EventKind::Flush => self.flush,
            EventKind::Compaction => self.compaction,
            EventKind::Trim => self.trim,
            EventKind::Split => self.split,
            EventKind::Stall => self.stall,
            EventKind::WalRotation => self.wal_rotation,
            EventKind::WalFsync => self.wal_fsync,
            EventKind::ReplicaCatchup => self.replica_catchup,
            EventKind::ReplicaLost | EventKind::Promotion | EventKind::ReplicaProvision => {
                self.promotion
            }
            EventKind::WalSyncError | EventKind::Degraded | EventKind::Recovered => self.fault,
        }
    }
}

/// A bounded ring buffer of [`Event`]s: pushing past capacity drops the
/// oldest entry, so the log always holds the newest `capacity` events.
#[derive(Debug)]
pub struct EventLog {
    inner: Mutex<VecDeque<Event>>,
    capacity: usize,
}

impl EventLog {
    /// Default ring capacity.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A log keeping the newest `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// The configured ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn push(&self, event: Event) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.len() == self.capacity {
            inner.pop_front();
        }
        inner.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::with_capacity(EventLog::DEFAULT_CAPACITY)
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before the epoch).
pub(crate) fn unix_millis() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(n: u64) -> Event {
        Event {
            kind: EventKind::Flush,
            label: "db".to_string(),
            at_unix_ms: n,
            duration_us: n,
            bytes_read: 0,
            bytes_written: 0,
            entries: 0,
            slow: false,
        }
    }

    #[test]
    fn ring_keeps_newest_k() {
        let log = EventLog::with_capacity(4);
        for n in 0..10 {
            log.push(event(n));
        }
        let kept: Vec<u64> = log.recent().iter().map(|e| e.at_unix_ms).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn thresholds_route_by_kind() {
        let thresholds = SlowOpThresholds::default();
        assert_eq!(
            thresholds.threshold_for(EventKind::Compaction),
            Duration::from_millis(500)
        );
        assert_eq!(
            thresholds.threshold_for(EventKind::WalFsync),
            Duration::from_millis(50)
        );
    }
}
