//! Lock-free metric primitives and the label-aware registry.
//!
//! The hot path never takes a lock: [`Counter`], [`Gauge`] and [`Histogram`]
//! are `Arc`-wrapped atomics that instrumented code clones once at
//! registration time and then updates with relaxed atomic operations. The
//! registry's `Mutex` guards only the cold paths — registration and export
//! enumeration.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotonically increasing counter.
///
/// Cloning is cheap and every clone updates the same underlying cell, so a
/// handle obtained from [`MetricsRegistry::counter`] can be stashed in hot
/// structures and bumped without ever touching the registry again.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move in both directions (queue depths, live
/// bytes, shard counts). Refreshed wholesale via [`Gauge::set`].
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Replaces the current value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an `f64` (amplification ratios, residuals — values that
/// are genuinely fractional). Stored as raw bits in an `AtomicU64`, so reads
/// and writes stay lock-free like every other metric.
#[derive(Clone, Debug, Default)]
pub struct FloatGauge(Arc<AtomicU64>);

impl FloatGauge {
    /// Replaces the current value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of logarithmic buckets in a [`Histogram`].
pub const NUM_BUCKETS: usize = 64;

/// Bucket index of `value`: bucket 0 holds exactly 0, bucket `i` (for
/// `i >= 1`) holds `[2^(i-1), 2^i - 1]`, and the last bucket absorbs
/// everything from `2^62` up.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `index` (the last bucket is unbounded and
/// reports `u64::MAX`).
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// Inclusive lower bound of bucket `index`.
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        HistogramInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log-bucketed latency histogram: 64 power-of-two buckets, a total count
/// and a running sum, all relaxed atomics. Recording is lock-free and
/// wait-free; quantiles are extracted from a [`HistogramSnapshot`].
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one observation (typically nanoseconds).
    pub fn record(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.0.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }

    /// Convenience: `quantile` over a fresh snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time copy of a [`Histogram`], from which quantiles are read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_upper_bound`]).
    pub buckets: [u64; NUM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Estimated value at quantile `q` in `[0, 1]`, linearly interpolated
    /// inside the containing bucket. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &in_bucket) in self.buckets.iter().enumerate() {
            if in_bucket == 0 {
                continue;
            }
            if seen + in_bucket >= rank {
                let lo = bucket_lower_bound(index);
                let hi = bucket_upper_bound(index);
                // Interpolate assuming observations spread evenly across the
                // bucket; the last (unbounded) bucket reports its lower bound
                // rather than inventing values up to u64::MAX.
                if index >= NUM_BUCKETS - 1 {
                    return lo;
                }
                let into = (rank - seen) as f64 / in_bucket as f64;
                return lo + ((hi - lo) as f64 * into) as u64;
            }
            seen += in_bucket;
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another snapshot into this one (used to aggregate one metric
    /// across label sets, e.g. per-shard histograms into a whole-db view).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// The value half of a registered metric.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// A monotonic counter.
    Counter(Counter),
    /// A set-in-place gauge.
    Gauge(Gauge),
    /// A set-in-place floating-point gauge.
    Float(FloatGauge),
    /// A latency distribution.
    Histogram(Histogram),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Float(_) => "float gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One registered metric: name, sorted label pairs, and the live handle.
#[derive(Clone, Debug)]
pub struct RegisteredMetric {
    /// Metric name (Prometheus-style, e.g. `laser_get_latency_ns`).
    pub name: String,
    /// Label pairs, sorted by label name at registration.
    pub labels: Vec<(String, String)>,
    /// The live handle; reading it observes the current value.
    pub value: MetricValue,
}

/// A registry of named, labelled metrics.
///
/// Registration is idempotent: asking for the same name + label set again
/// returns a clone of the existing handle, so an engine reopened onto the
/// same shard label keeps accumulating into the same series rather than
/// shadowing it.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<RegisteredMetric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or re-fetches) a counter.
    ///
    /// # Panics
    /// If `name` + `labels` is already registered as a different metric kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.find_or_insert(name, labels, || MetricValue::Counter(Counter::default())) {
            MetricValue::Counter(counter) => counter,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or re-fetches) a gauge.
    ///
    /// # Panics
    /// If `name` + `labels` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.find_or_insert(name, labels, || MetricValue::Gauge(Gauge::default())) {
            MetricValue::Gauge(gauge) => gauge,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or re-fetches) a floating-point gauge.
    ///
    /// # Panics
    /// If `name` + `labels` is already registered as a different metric kind.
    pub fn float_gauge(&self, name: &str, labels: &[(&str, &str)]) -> FloatGauge {
        match self.find_or_insert(name, labels, || MetricValue::Float(FloatGauge::default())) {
            MetricValue::Float(gauge) => gauge,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or re-fetches) a histogram.
    ///
    /// # Panics
    /// If `name` + `labels` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.find_or_insert(
            name,
            labels,
            || MetricValue::Histogram(Histogram::default()),
        ) {
            MetricValue::Histogram(histogram) => histogram,
            other => panic!("{name} already registered as a {}", other.kind()),
        }
    }

    fn find_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> MetricValue,
    ) -> MetricValue {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(existing) = entries
            .iter()
            .find(|m| m.name == name && m.labels == labels)
        {
            return existing.value.clone();
        }
        let value = make();
        entries.push(RegisteredMetric {
            name: name.to_string(),
            labels,
            value: value.clone(),
        });
        value
    }

    /// Clones the full metric list (handles stay live — reading a clone
    /// observes current values).
    pub fn metrics(&self) -> Vec<RegisteredMetric> {
        self.entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Merges every histogram registered under `name` (across all label
    /// sets) into one snapshot; `None` if the name has no histograms.
    pub fn aggregate_histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let mut merged: Option<HistogramSnapshot> = None;
        for metric in self
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
        {
            if metric.name != name {
                continue;
            }
            if let MetricValue::Histogram(histogram) = &metric.value {
                let snapshot = histogram.snapshot();
                match merged.as_mut() {
                    Some(acc) => acc.merge(&snapshot),
                    None => merged = Some(snapshot),
                }
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_stable() {
        // The bucketing scheme is part of the exposition contract: bucket 0
        // holds exactly 0, bucket i holds [2^(i-1), 2^i - 1].
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        for index in 1..NUM_BUCKETS - 1 {
            assert_eq!(bucket_lower_bound(index), (1u64 << index) / 2);
            assert_eq!(bucket_upper_bound(index), (1u64 << index) - 1);
            assert_eq!(bucket_index(bucket_lower_bound(index)), index);
            assert_eq!(bucket_index(bucket_upper_bound(index)), index);
        }
        assert_eq!(bucket_upper_bound(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_order_and_bound() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, 500_500);
        let (p50, p95, p99) = (snap.p50(), snap.p95(), snap.p99());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Log buckets are coarse, but the estimates must stay within the
        // observed range and the right power-of-two neighbourhood.
        assert!((256..=1023).contains(&p50), "p50 = {p50}");
        assert!((512..=1023).contains(&p99), "p99 = {p99}");
        assert_eq!(snap.quantile(0.0), snap.quantile(1e-9));
        assert!(snap.quantile(1.0) <= 1023);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let snap = Histogram::default().snapshot();
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn registry_returns_same_handle_for_same_series() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("ops", &[("shard", "0")]);
        let b = registry.counter("ops", &[("shard", "0")]);
        let other = registry.counter("ops", &[("shard", "1")]);
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(other.get(), 1);
        assert_eq!(registry.metrics().len(), 2);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("ops", &[("engine", "lsm"), ("shard", "0")]);
        let b = registry.counter("ops", &[("shard", "0"), ("engine", "lsm")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn float_gauge_round_trips_fractional_values() {
        let registry = MetricsRegistry::new();
        let amp = registry.float_gauge("laser_write_amp", &[("shard", "0")]);
        assert_eq!(amp.get(), 0.0);
        amp.set(3.75);
        assert_eq!(amp.get(), 3.75);
        // Idempotent registration returns the same cell.
        let again = registry.float_gauge("laser_write_amp", &[("shard", "0")]);
        assert_eq!(again.get(), 3.75);
        assert_eq!(registry.metrics().len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("m", &[]);
        registry.gauge("m", &[]);
    }

    #[test]
    fn aggregate_merges_across_labels() {
        let registry = MetricsRegistry::new();
        registry.histogram("lat", &[("shard", "0")]).record(10);
        registry.histogram("lat", &[("shard", "1")]).record(10_000);
        let merged = registry.aggregate_histogram("lat").unwrap();
        assert_eq!(merged.count, 2);
        assert_eq!(merged.sum, 10_010);
        assert!(registry.aggregate_histogram("missing").is_none());
    }
}
