//! # telemetry
//!
//! Unified observability for the LASER stack: one [`Telemetry`] handle
//! bundles
//!
//! * a lock-free [`MetricsRegistry`] of labelled counters, gauges and
//!   log-bucketed latency [`Histogram`]s (p50/p95/p99 extraction),
//! * a bounded ring-buffer [`EventLog`] recording every
//!   flush/compaction/trim/split/stall/WAL-rotation with timestamps,
//!   durations and byte counts, and
//! * a [`SlowOpThresholds`] policy that flags events crossing a per-kind
//!   duration threshold (`slow: true` plus the `laser_slow_ops_total`
//!   counter).
//!
//! Engines register metrics once with per-shard labels and then update them
//! through cheap `Arc`-cloned handles; the registry `Mutex` is only taken on
//! registration and export. Instrumented code is expected to gate on an
//! `Option<&...>` handle so a disabled registry costs a single branch on the
//! hot path.
//!
//! Two exports serve every consumer the same view: a Prometheus-style text
//! exposition ([`Telemetry::prometheus_text`]) and a self-contained JSON
//! snapshot ([`Telemetry::json_snapshot`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod export;
mod metrics;
pub mod profile;
pub mod trace;

pub use events::{Event, EventKind, EventLog, SlowOpThresholds};
pub use export::{parse_prometheus_text, ExpositionSample};
pub use metrics::{
    bucket_lower_bound, bucket_upper_bound, Counter, FloatGauge, Gauge, Histogram,
    HistogramSnapshot, MetricValue, MetricsRegistry, RegisteredMetric, NUM_BUCKETS,
};
pub use profile::{LevelMix, MeasuredTreeParams, WorkloadProfiler, WorkloadSnapshot, HEAT_BUCKETS};
pub use trace::{
    AnnotationValue, SpanGuard, SpanRecord, Trace, TraceConfig, TraceContext, TraceDecision,
    TraceKind, Tracer,
};

use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The shared telemetry hub: metrics registry + event log + slow-op policy.
///
/// Created once per process (or per test), wrapped in an [`Arc`], and
/// attached to engines, WALs and the sharding layer, which register their
/// metrics into it with per-shard labels.
#[derive(Debug)]
pub struct Telemetry {
    registry: MetricsRegistry,
    events: EventLog,
    thresholds: SlowOpThresholds,
    slow_ops: Counter,
    tracer: Tracer,
    profilers: Mutex<Vec<Arc<WorkloadProfiler>>>,
}

/// Everything configurable about a [`Telemetry`] hub, bundled so callers
/// (and env-var overrides in CI harnesses) set policy in one place instead
/// of threading three positional arguments around.
#[derive(Clone, Debug)]
pub struct TelemetryOptions {
    /// Per-kind duration thresholds above which an event is flagged slow.
    pub thresholds: SlowOpThresholds,
    /// Maintenance event ring capacity.
    pub event_capacity: usize,
    /// Request-trace sampling and flight-recorder configuration.
    pub trace: TraceConfig,
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        TelemetryOptions {
            thresholds: SlowOpThresholds::default(),
            event_capacity: EventLog::DEFAULT_CAPACITY,
            trace: TraceConfig::default(),
        }
    }
}

impl TelemetryOptions {
    /// Sets the trace sampling rate (sample one op in `n` per kind; 0
    /// disables sampling).
    pub fn sample_every(mut self, n: u64) -> Self {
        self.trace.sample_every = n;
        self
    }
}

impl Telemetry {
    /// A hub with default thresholds, event capacity and trace sampling.
    pub fn new() -> Arc<Telemetry> {
        Telemetry::with_options(TelemetryOptions::default())
    }

    /// A hub configured by a [`TelemetryOptions`] bundle.
    pub fn with_options(options: TelemetryOptions) -> Arc<Telemetry> {
        Telemetry::with_trace_config(options.thresholds, options.event_capacity, options.trace)
    }

    /// A hub with explicit slow-op thresholds and event-ring capacity.
    pub fn with_config(thresholds: SlowOpThresholds, event_capacity: usize) -> Arc<Telemetry> {
        Telemetry::with_trace_config(thresholds, event_capacity, TraceConfig::default())
    }

    /// A hub with an explicit tracing configuration as well.
    pub fn with_trace_config(
        thresholds: SlowOpThresholds,
        event_capacity: usize,
        trace_config: TraceConfig,
    ) -> Arc<Telemetry> {
        let registry = MetricsRegistry::new();
        let slow_ops = registry.counter("laser_slow_ops_total", &[]);
        Arc::new(Telemetry {
            registry,
            events: EventLog::with_capacity(event_capacity),
            thresholds,
            slow_ops,
            tracer: Tracer::new(trace_config),
            profilers: Mutex::new(Vec::new()),
        })
    }

    /// The metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The span tracer and its slow-trace flight recorder.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The slow-op thresholds in force.
    pub fn thresholds(&self) -> &SlowOpThresholds {
        &self.thresholds
    }

    /// How many events have crossed their slow-op threshold.
    pub fn slow_ops(&self) -> u64 {
        self.slow_ops.get()
    }

    /// The retained maintenance events, oldest first.
    pub fn recent_events(&self) -> Vec<Event> {
        self.events.recent()
    }

    /// Records a maintenance event: stamps the wall clock, applies the
    /// slow-op policy (flag + counter) and appends to the ring buffer.
    /// Returns whether the event was flagged slow.
    pub fn record_event(
        &self,
        kind: EventKind,
        label: &str,
        duration: Duration,
        bytes_read: u64,
        bytes_written: u64,
        entries: u64,
    ) -> bool {
        let slow = duration >= self.thresholds.threshold_for(kind);
        if slow {
            self.slow_ops.inc();
        }
        self.events.push(Event {
            kind,
            label: label.to_string(),
            at_unix_ms: events::unix_millis(),
            duration_us: duration.as_micros() as u64,
            bytes_read,
            bytes_written,
            entries,
            slow,
        });
        slow
    }

    /// Prometheus-style text exposition of every registered metric
    /// (workload heat gauges are refreshed first).
    pub fn prometheus_text(&self) -> String {
        for profiler in self.workload_profiles() {
            profiler.refresh_gauges();
        }
        export::prometheus_text(&self.registry)
    }

    /// Self-contained JSON snapshot: metrics, event log and slow-op count.
    pub fn json_snapshot(&self) -> String {
        export::json_snapshot(self)
    }

    /// The flight recorder's retained traces as a JSON array (the
    /// `/debug/traces` endpoint body).
    pub fn traces_json(&self) -> String {
        trace::traces_json_array(&self.tracer.all_traces())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_policy_flags_and_counts() {
        let telemetry = Telemetry::new();
        let fast = telemetry.record_event(
            EventKind::Compaction,
            "0",
            Duration::from_millis(10),
            0,
            0,
            0,
        );
        let slow = telemetry.record_event(
            EventKind::Compaction,
            "0",
            Duration::from_millis(900),
            0,
            0,
            0,
        );
        assert!(!fast && slow);
        assert_eq!(telemetry.slow_ops(), 1);
        let events = telemetry.recent_events();
        assert_eq!(events.len(), 2);
        assert!(!events[0].slow && events[1].slow);
        assert!(events[1].duration_us >= 900_000);
    }

    #[test]
    fn concurrent_updates_sum_exactly() {
        let telemetry = Telemetry::new();
        let counter = telemetry.registry().counter("c", &[]);
        let histogram = telemetry.registry().histogram("h", &[]);
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let counter = counter.clone();
                let histogram = histogram.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        counter.inc();
                        histogram.record(i);
                    }
                });
            }
        });
        assert_eq!(counter.get(), threads * per_thread);
        let snap = histogram.snapshot();
        assert_eq!(snap.count, threads * per_thread);
        assert_eq!(snap.sum, threads * per_thread * (per_thread - 1) / 2);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }
}
