//! Sampled per-operation span traces and a slowest-K flight recorder.
//!
//! Aggregate histograms say *that* a p99 commit was slow; a trace says
//! *why*: how long the write stalled on backpressure, waited on the WAL
//! group commit, or spent probing L0 tables. The pieces:
//!
//! * [`Tracer`] — per-hub sampling policy (deterministic 1-in-N per op
//!   kind, seeded) plus the flight recorder that retains the slowest-K
//!   completed traces per [`TraceKind`].
//! * [`TraceContext`] — one in-flight operation: a trace id, a monotonic
//!   clock, and the growing list of completed [`SpanRecord`]s.
//! * [`SpanGuard`] — an RAII child span. Spans nest through an implicit
//!   per-thread context (installed by [`TraceContext::attach`]), so deep
//!   layers (engine probes, WAL waits, backpressure stalls) annotate the
//!   active trace without any parameter threading.
//!
//! Cost discipline matches the metrics layer: a detached engine never
//! touches thread-local state (instrumented code gates on its telemetry
//! `Option` first), an attached-but-unsampled operation pays one sampling
//! decision (an atomic increment and a hash), and only the sampled 1-in-N
//! pay for span collection. Operations that were *not* sampled but cross
//! their slow-op threshold are force-sampled retroactively: the layer that
//! owns the op records a root-only trace, so tail latency excursions never
//! vanish just because the sampler skipped them.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::events::unix_millis;

/// The operation kinds that get root spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A point get.
    Get,
    /// A range scan.
    Scan,
    /// A write-batch commit (including WAL durability and backpressure).
    Commit,
    /// A replication round: shipping tail records or catch-up segments to a
    /// replica and waiting for its acknowledgement.
    Replicate,
}

/// Number of [`TraceKind`] variants (sizes the per-kind state arrays).
pub const NUM_TRACE_KINDS: usize = 4;

/// Every trace kind, in index order.
pub const TRACE_KINDS: [TraceKind; NUM_TRACE_KINDS] = [
    TraceKind::Get,
    TraceKind::Scan,
    TraceKind::Commit,
    TraceKind::Replicate,
];

impl TraceKind {
    /// Stable lower-case name (root span name, export key).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceKind::Get => "get",
            TraceKind::Scan => "scan",
            TraceKind::Commit => "commit",
            TraceKind::Replicate => "replicate",
        }
    }

    fn index(self) -> usize {
        match self {
            TraceKind::Get => 0,
            TraceKind::Scan => 1,
            TraceKind::Commit => 2,
            TraceKind::Replicate => 3,
        }
    }
}

/// A span or trace annotation value.
#[derive(Debug, Clone, PartialEq)]
pub enum AnnotationValue {
    /// An integer (counts, byte sizes, keys).
    U64(u64),
    /// Free-form text.
    Text(String),
}

impl From<u64> for AnnotationValue {
    fn from(v: u64) -> Self {
        AnnotationValue::U64(v)
    }
}

impl From<usize> for AnnotationValue {
    fn from(v: usize) -> Self {
        AnnotationValue::U64(v as u64)
    }
}

impl From<&str> for AnnotationValue {
    fn from(v: &str) -> Self {
        AnnotationValue::Text(v.to_string())
    }
}

impl AnnotationValue {
    fn to_json(&self) -> String {
        match self {
            AnnotationValue::U64(v) => v.to_string(),
            AnnotationValue::Text(s) => crate::export::json_escape(s),
        }
    }
}

/// One completed span. Timings are nanoseconds relative to the trace start
/// (monotonic clock), so `start_ns..end_ns` of every child nests inside its
/// parent's interval.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span id, unique within the trace. The root span is id 1.
    pub id: u32,
    /// Parent span id (0 for the root).
    pub parent: u32,
    /// Static span name (see the README span taxonomy).
    pub name: &'static str,
    /// Start offset from the trace start, nanoseconds.
    pub start_ns: u64,
    /// End offset from the trace start, nanoseconds.
    pub end_ns: u64,
    /// Key/value annotations.
    pub annotations: Vec<(&'static str, AnnotationValue)>,
}

/// One completed trace retained by the flight recorder.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Process-unique trace id.
    pub trace_id: u64,
    /// Operation kind.
    pub kind: TraceKind,
    /// Wall-clock completion time.
    pub at_unix_ms: u64,
    /// Total root duration, nanoseconds.
    pub total_ns: u64,
    /// True if this trace was force-sampled because the operation crossed
    /// its slow-op threshold (rather than winning the 1-in-N sample).
    pub forced: bool,
    /// Completed spans; the root (id 1, parent 0) is always present.
    pub spans: Vec<SpanRecord>,
}

#[derive(Debug)]
struct TraceInner {
    trace_id: u64,
    kind: TraceKind,
    started: Instant,
    next_span_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    root_annotations: Mutex<Vec<(&'static str, AnnotationValue)>>,
}

/// One in-flight traced operation. Cheap to clone (an `Arc`), so cross-shard
/// fan-out can hand a copy to every worker leg.
#[derive(Debug, Clone)]
pub struct TraceContext {
    inner: Arc<TraceInner>,
}

/// Root span id: parent of every top-level child span.
pub const ROOT_SPAN_ID: u32 = 1;

impl TraceContext {
    fn new(trace_id: u64, kind: TraceKind) -> TraceContext {
        TraceContext {
            inner: Arc::new(TraceInner {
                trace_id,
                kind,
                started: Instant::now(),
                next_span_id: AtomicU64::new(ROOT_SPAN_ID as u64 + 1),
                spans: Mutex::new(Vec::new()),
                root_annotations: Mutex::new(Vec::new()),
            }),
        }
    }

    /// The process-unique trace id.
    pub fn trace_id(&self) -> u64 {
        self.inner.trace_id
    }

    /// Adds a root-level annotation.
    pub fn annotate(&self, key: &'static str, value: impl Into<AnnotationValue>) {
        self.inner
            .root_annotations
            .lock()
            .unwrap()
            .push((key, value.into()));
    }

    /// Installs this trace as the current thread's active trace, with the
    /// root span as the parent of subsequent [`span`] calls. Restores the
    /// previous thread state on drop.
    pub fn attach(&self) -> AttachGuard {
        self.attach_child_of(ROOT_SPAN_ID)
    }

    /// Installs this trace on the current thread with `parent_span` as the
    /// span parent — the fan-out legs of a cross-shard operation use this to
    /// parent their work under the coordinating span.
    pub fn attach_child_of(&self, parent_span: u32) -> AttachGuard {
        let prev = ACTIVE.with(|a| {
            a.borrow_mut().replace(ThreadState::Traced {
                ctx: self.clone(),
                stack: vec![parent_span],
            })
        });
        AttachGuard { prev }
    }

    fn alloc_span_id(&self) -> u32 {
        self.inner.next_span_id.fetch_add(1, Ordering::Relaxed) as u32
    }

    fn elapsed_ns(&self) -> u64 {
        self.inner.started.elapsed().as_nanos() as u64
    }

    fn push_span(&self, record: SpanRecord) {
        self.inner.spans.lock().unwrap().push(record);
    }

    fn into_trace(self, forced: bool) -> Trace {
        let total_ns = self.elapsed_ns();
        let inner = match Arc::try_unwrap(self.inner) {
            Ok(inner) => inner,
            // A fan-out leg still holds a clone (it should have been joined
            // before finish; tolerate it rather than lose the trace).
            Err(arc) => TraceInner {
                trace_id: arc.trace_id,
                kind: arc.kind,
                started: arc.started,
                next_span_id: AtomicU64::new(arc.next_span_id.load(Ordering::Relaxed)),
                spans: Mutex::new(arc.spans.lock().unwrap().clone()),
                root_annotations: Mutex::new(arc.root_annotations.lock().unwrap().clone()),
            },
        };
        let mut spans = inner.spans.into_inner().unwrap();
        // Clamp straggler spans into the root window so the invariant
        // "children nest inside the parent" holds by construction.
        for span in &mut spans {
            span.end_ns = span.end_ns.min(total_ns);
            span.start_ns = span.start_ns.min(span.end_ns);
        }
        spans.push(SpanRecord {
            id: ROOT_SPAN_ID,
            parent: 0,
            name: inner.kind.as_str(),
            start_ns: 0,
            end_ns: total_ns,
            annotations: inner.root_annotations.into_inner().unwrap(),
        });
        spans.sort_by_key(|s| (s.start_ns, s.id));
        Trace {
            trace_id: inner.trace_id,
            kind: inner.kind,
            at_unix_ms: unix_millis(),
            total_ns,
            forced,
            spans,
        }
    }
}

enum ThreadState {
    /// A sampled trace is active: spans record into it.
    Traced { ctx: TraceContext, stack: Vec<u32> },
    /// An enclosing layer owns the operation but did not sample it: inner
    /// layers must not start their own root traces (or force-sample).
    Suppressed,
}

thread_local! {
    static ACTIVE: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
}

/// Restores the previous per-thread trace state on drop.
pub struct AttachGuard {
    prev: Option<ThreadState>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| {
            *a.borrow_mut() = self.prev.take();
        });
    }
}

/// Marks the current thread as "operation owned but unsampled": inner
/// layers skip their own sampling decision (and their force-sampling — the
/// owning layer will do it). Used by `ShardedDb` so the engine beneath never
/// double-samples one logical operation.
pub fn suppress() -> AttachGuard {
    let prev = ACTIVE.with(|a| a.borrow_mut().replace(ThreadState::Suppressed));
    AttachGuard { prev }
}

/// True if a sampled trace is active on this thread.
pub fn is_active() -> bool {
    ACTIVE.with(|a| matches!(&*a.borrow(), Some(ThreadState::Traced { .. })))
}

/// Starts a child span of the active trace; `None` (one thread-local read)
/// when no sampled trace is active on this thread.
pub fn span(name: &'static str) -> Option<SpanGuard> {
    ACTIVE.with(|a| {
        let mut state = a.borrow_mut();
        let Some(ThreadState::Traced { ctx, stack }) = &mut *state else {
            return None;
        };
        let id = ctx.alloc_span_id();
        let parent = stack.last().copied().unwrap_or(ROOT_SPAN_ID);
        stack.push(id);
        Some(SpanGuard {
            ctx: ctx.clone(),
            id,
            parent,
            name,
            start_ns: ctx.elapsed_ns(),
            annotations: Vec::new(),
        })
    })
}

/// Records an already-measured child span on the active trace: a span that
/// ends now and started `duration` ago. This is how cold-path costs whose
/// duration is measured anyway (backpressure stalls, WAL fsyncs, rotations)
/// attribute themselves without any hot-path bookkeeping.
pub fn retro_span(name: &'static str, duration: Duration, annotations: &[(&'static str, u64)]) {
    ACTIVE.with(|a| {
        let state = a.borrow();
        let Some(ThreadState::Traced { ctx, stack }) = &*state else {
            return;
        };
        let end_ns = ctx.elapsed_ns();
        let record = SpanRecord {
            id: ctx.alloc_span_id(),
            parent: stack.last().copied().unwrap_or(ROOT_SPAN_ID),
            name,
            start_ns: end_ns.saturating_sub(duration.as_nanos() as u64),
            end_ns,
            annotations: annotations
                .iter()
                .map(|(k, v)| (*k, AnnotationValue::U64(*v)))
                .collect(),
        };
        ctx.push_span(record);
    });
}

/// Adds a root-level annotation to the active trace, if any.
pub fn annotate(key: &'static str, value: u64) {
    ACTIVE.with(|a| {
        if let Some(ThreadState::Traced { ctx, .. }) = &*a.borrow() {
            ctx.annotate(key, value);
        }
    });
}

/// RAII child span: records its duration (and buffered annotations) into
/// the owning trace on drop.
pub struct SpanGuard {
    ctx: TraceContext,
    id: u32,
    parent: u32,
    name: &'static str,
    start_ns: u64,
    annotations: Vec<(&'static str, AnnotationValue)>,
}

impl SpanGuard {
    /// Buffers a k/v annotation (written out when the span closes).
    pub fn annotate(&mut self, key: &'static str, value: impl Into<AnnotationValue>) {
        self.annotations.push((key, value.into()));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_ns: self.start_ns,
            end_ns: self.ctx.elapsed_ns(),
            annotations: std::mem::take(&mut self.annotations),
        };
        self.ctx.push_span(record);
        ACTIVE.with(|a| {
            if let Some(ThreadState::Traced { stack, .. }) = &mut *a.borrow_mut() {
                if stack.last() == Some(&self.id) {
                    stack.pop();
                } else if let Some(pos) = stack.iter().rposition(|&s| s == self.id) {
                    stack.remove(pos);
                }
            }
        });
    }
}

/// The outcome of one layer's sampling decision for one operation.
#[derive(Debug)]
pub enum TraceDecision {
    /// This layer owns the root: collect spans and call [`Tracer::finish`].
    Sampled(TraceContext),
    /// This layer owns the op but the sampler skipped it: suppress inner
    /// layers and call [`Tracer::maybe_force_sample`] with the measured
    /// duration at the end.
    Unsampled,
    /// An enclosing layer owns the op (active or suppressed): record child
    /// spans only, no root and no force-sampling here.
    Nested,
}

/// Tracer configuration.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Sample one operation in `sample_every` per kind (0 disables
    /// sampling; force-sampling of slow ops still applies).
    pub sample_every: u64,
    /// Seed for the deterministic sampling hash: the same seed over the
    /// same operation sequence selects the same set.
    pub seed: u64,
    /// How many slowest completed traces the flight recorder retains per
    /// op kind.
    pub slowest_per_kind: usize,
    /// Force-sample thresholds per kind (get, scan, commit, replicate): an
    /// unsampled op whose duration crosses its threshold is recorded
    /// root-only.
    pub slow_op: [Duration; NUM_TRACE_KINDS],
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: 64,
            seed: 0x5eed_1a5e_0b5e_71e0,
            slowest_per_kind: 8,
            // Commit matches the stall slow-op threshold so a write blocked
            // behind the L0 gate always leaves a trace; replication rounds
            // tolerate a catch-up transfer before they count as slow.
            slow_op: [
                Duration::from_millis(10),
                Duration::from_millis(250),
                Duration::from_millis(100),
                Duration::from_millis(250),
            ],
        }
    }
}

/// SplitMix64 finalizer: the deterministic sampling hash.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Sampling policy plus the slowest-K flight recorder; one per
/// [`crate::Telemetry`] hub.
#[derive(Debug)]
pub struct Tracer {
    seed: u64,
    sample_every: AtomicU64,
    slowest_per_kind: usize,
    slow_op_ns: [AtomicU64; NUM_TRACE_KINDS],
    seqs: [AtomicU64; NUM_TRACE_KINDS],
    next_trace_id: AtomicU64,
    recorder: [Mutex<Vec<Trace>>; NUM_TRACE_KINDS],
    sampled_total: AtomicU64,
    forced_total: AtomicU64,
}

impl Tracer {
    /// Builds a tracer from a config.
    pub fn new(config: TraceConfig) -> Tracer {
        Tracer {
            seed: config.seed,
            sample_every: AtomicU64::new(config.sample_every),
            slowest_per_kind: config.slowest_per_kind.max(1),
            slow_op_ns: std::array::from_fn(
                |i| AtomicU64::new(config.slow_op[i].as_nanos() as u64),
            ),
            seqs: std::array::from_fn(|_| AtomicU64::new(0)),
            next_trace_id: AtomicU64::new(1),
            recorder: std::array::from_fn(|_| Mutex::new(Vec::new())),
            sampled_total: AtomicU64::new(0),
            forced_total: AtomicU64::new(0),
        }
    }

    /// The current 1-in-N sampling rate (0 = sampling disabled).
    pub fn sample_every(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Changes the sampling rate at runtime (benches flip this between
    /// passes; ops tooling can crank it up while debugging).
    pub fn set_sample_every(&self, n: u64) {
        self.sample_every.store(n, Ordering::Relaxed);
    }

    /// Changes one kind's force-sample threshold at runtime.
    pub fn set_slow_op(&self, kind: TraceKind, threshold: Duration) {
        self.slow_op_ns[kind.index()].store(threshold.as_nanos() as u64, Ordering::Relaxed);
    }

    /// The deterministic per-kind sampling decision for sequence number
    /// `seq` (exposed for tests; [`Tracer::decide`] drives it).
    pub fn is_sampled(&self, kind: TraceKind, seq: u64) -> bool {
        let n = self.sample_every();
        n != 0 && mix64(self.seed ^ (kind.index() as u64) << 56 ^ seq).is_multiple_of(n)
    }

    /// One layer's per-operation entry point: claims the op if no enclosing
    /// layer did, and applies the sampling policy.
    pub fn decide(&self, kind: TraceKind) -> TraceDecision {
        let nested = ACTIVE.with(|a| a.borrow().is_some());
        if nested {
            return TraceDecision::Nested;
        }
        let seq = self.seqs[kind.index()].fetch_add(1, Ordering::Relaxed);
        if self.is_sampled(kind, seq) {
            let trace_id = self.next_trace_id.fetch_add(1, Ordering::Relaxed);
            TraceDecision::Sampled(TraceContext::new(trace_id, kind))
        } else {
            TraceDecision::Unsampled
        }
    }

    /// Completes a sampled trace: closes the root span and offers the trace
    /// to the flight recorder. Call after every child span (and fan-out
    /// leg) has finished.
    pub fn finish(&self, ctx: TraceContext) {
        let kind = ctx.inner.kind;
        self.sampled_total.fetch_add(1, Ordering::Relaxed);
        self.offer(kind, ctx.into_trace(false));
    }

    /// Retroactive force-sampling: records a root-only trace for an
    /// *unsampled* operation that crossed its slow-op threshold. No-op for
    /// fast ops.
    pub fn maybe_force_sample(
        &self,
        kind: TraceKind,
        total: Duration,
        annotations: &[(&'static str, u64)],
    ) {
        let total_ns = total.as_nanos() as u64;
        if total_ns < self.slow_op_ns[kind.index()].load(Ordering::Relaxed) {
            return;
        }
        self.forced_total.fetch_add(1, Ordering::Relaxed);
        let trace_id = self.next_trace_id.fetch_add(1, Ordering::Relaxed);
        self.offer(
            kind,
            Trace {
                trace_id,
                kind,
                at_unix_ms: unix_millis(),
                total_ns,
                forced: true,
                spans: vec![SpanRecord {
                    id: ROOT_SPAN_ID,
                    parent: 0,
                    name: kind.as_str(),
                    start_ns: 0,
                    end_ns: total_ns,
                    annotations: annotations
                        .iter()
                        .map(|(k, v)| (*k, AnnotationValue::U64(*v)))
                        .collect(),
                }],
            },
        );
    }

    /// Inserts a completed trace, keeping the per-kind list sorted slowest
    /// first and bounded at `slowest_per_kind`.
    fn offer(&self, kind: TraceKind, trace: Trace) {
        let mut slot = self.recorder[kind.index()].lock().unwrap();
        let pos = slot.partition_point(|t| t.total_ns >= trace.total_ns);
        if pos >= self.slowest_per_kind {
            return; // faster than everything retained, recorder full
        }
        slot.insert(pos, trace);
        slot.truncate(self.slowest_per_kind);
    }

    /// The retained slowest traces of one kind, slowest first.
    pub fn slowest(&self, kind: TraceKind) -> Vec<Trace> {
        self.recorder[kind.index()].lock().unwrap().clone()
    }

    /// Every retained trace across all kinds, slowest first per kind in
    /// kind order.
    pub fn all_traces(&self) -> Vec<Trace> {
        TRACE_KINDS.iter().flat_map(|&k| self.slowest(k)).collect()
    }

    /// How many traces completed via sampling.
    pub fn sampled_total(&self) -> u64 {
        self.sampled_total.load(Ordering::Relaxed)
    }

    /// How many traces were force-sampled for crossing a slow-op threshold.
    pub fn forced_total(&self) -> u64 {
        self.forced_total.load(Ordering::Relaxed)
    }

    /// The flight recorder as a self-contained JSON document:
    /// `{"traces":[{trace_id, kind, total_ns, spans:[...]}, ...]}`.
    pub fn traces_json(&self) -> String {
        let mut out = String::from("{\"traces\":");
        out.push_str(&traces_json_array(&self.all_traces()));
        out.push('}');
        out
    }

    /// The flight recorder in Chrome trace-event format (load via
    /// `chrome://tracing` or Perfetto): one complete (`"ph":"X"`) event per
    /// span, with the trace id as the lane (`tid`).
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for trace in self.all_traces() {
            let base_us = trace.at_unix_ms as f64 * 1_000.0;
            for span in &trace.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                let mut args = format!(
                    "{{\"trace_id\":{},\"span_id\":{},\"parent\":{},\"forced\":{}",
                    trace.trace_id, span.id, span.parent, trace.forced
                );
                for (key, value) in &span.annotations {
                    args.push(',');
                    args.push_str(&crate::export::json_escape(key));
                    args.push(':');
                    args.push_str(&value.to_json());
                }
                args.push('}');
                out.push_str(&format!(
                    "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{}}}",
                    crate::export::json_escape(span.name),
                    crate::export::json_escape(trace.kind.as_str()),
                    base_us + span.start_ns as f64 / 1_000.0,
                    (span.end_ns - span.start_ns) as f64 / 1_000.0,
                    trace.trace_id,
                    args
                ));
            }
        }
        out.push_str("]}");
        out
    }
}

/// Renders a slice of traces as a JSON array (shared by
/// [`Tracer::traces_json`] and the hub's `json_snapshot`).
pub(crate) fn traces_json_array(traces: &[Trace]) -> String {
    let mut out = String::from("[");
    for (ti, trace) in traces.iter().enumerate() {
        if ti > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"trace_id\":{},\"kind\":{},\"at_unix_ms\":{},\"total_ns\":{},\"forced\":{},\"spans\":[",
            trace.trace_id,
            crate::export::json_escape(trace.kind.as_str()),
            trace.at_unix_ms,
            trace.total_ns,
            trace.forced
        ));
        for (si, span) in trace.spans.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"parent\":{},\"name\":{},\"start_ns\":{},\"end_ns\":{},\"annotations\":{{",
                span.id,
                span.parent,
                crate::export::json_escape(span.name),
                span.start_ns,
                span.end_ns
            ));
            for (ai, (key, value)) in span.annotations.iter().enumerate() {
                if ai > 0 {
                    out.push(',');
                }
                out.push_str(&crate::export::json_escape(key));
                out.push(':');
                out.push_str(&value.to_json());
            }
            out.push_str("}}");
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracer(sample_every: u64, seed: u64, k: usize) -> Tracer {
        Tracer::new(TraceConfig {
            sample_every,
            seed,
            slowest_per_kind: k,
            ..TraceConfig::default()
        })
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = tracer(4, 42, 8);
        let b = tracer(4, 42, 8);
        let c = tracer(4, 43, 8);
        let pick = |t: &Tracer| -> Vec<u64> {
            (0..256)
                .filter(|&s| t.is_sampled(TraceKind::Get, s))
                .collect()
        };
        let set_a = pick(&a);
        assert!(!set_a.is_empty(), "1-in-4 over 256 ops must sample some");
        assert_eq!(set_a, pick(&b), "same seed must select the same set");
        assert_ne!(set_a, pick(&c), "different seed must select differently");
        // Rate sanity: 1-in-4 over 256 ops lands near 64.
        assert!((32..=110).contains(&set_a.len()), "got {}", set_a.len());
        // Kinds sample independently.
        assert_ne!(
            pick(&a),
            (0..256)
                .filter(|&s| a.is_sampled(TraceKind::Commit, s))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_rate_disables_sampling_but_not_forcing() {
        let t = tracer(0, 1, 4);
        t.set_slow_op(TraceKind::Get, Duration::from_millis(5));
        for seq in 0..64 {
            assert!(!t.is_sampled(TraceKind::Get, seq));
        }
        assert!(matches!(t.decide(TraceKind::Get), TraceDecision::Unsampled));
        t.maybe_force_sample(TraceKind::Get, Duration::from_millis(1), &[]);
        assert_eq!(t.forced_total(), 0, "fast op must not force-sample");
        t.maybe_force_sample(TraceKind::Get, Duration::from_millis(9), &[("key", 7)]);
        assert_eq!(t.forced_total(), 1);
        let traces = t.slowest(TraceKind::Get);
        assert_eq!(traces.len(), 1);
        assert!(traces[0].forced);
        assert_eq!(traces[0].spans.len(), 1, "forced traces are root-only");
        assert_eq!(traces[0].spans[0].name, "get");
    }

    #[test]
    fn flight_recorder_keeps_the_slowest_k_in_order() {
        let t = tracer(0, 1, 3);
        t.set_slow_op(TraceKind::Scan, Duration::ZERO);
        for ms in [10u64, 50, 20, 40, 30] {
            t.maybe_force_sample(TraceKind::Scan, Duration::from_millis(ms), &[]);
        }
        let kept: Vec<u64> = t
            .slowest(TraceKind::Scan)
            .iter()
            .map(|tr| tr.total_ns / 1_000_000)
            .collect();
        assert_eq!(kept, vec![50, 40, 30], "slowest three, slowest first");
    }

    #[test]
    fn spans_nest_and_annotations_survive() {
        let t = tracer(1, 1, 4);
        let TraceDecision::Sampled(ctx) = t.decide(TraceKind::Get) else {
            panic!("1-in-1 must sample");
        };
        ctx.annotate("key", 99u64);
        {
            let _attach = ctx.attach();
            assert!(is_active());
            {
                let mut outer = span("outer").expect("active trace yields spans");
                outer.annotate("width", 3u64);
                let _inner = span("inner").expect("nested span");
                retro_span("measured", Duration::from_nanos(100), &[("bytes", 8)]);
            }
        }
        assert!(!is_active());
        assert!(span("after").is_none(), "no span outside an active trace");
        t.finish(ctx);
        let trace = t.slowest(TraceKind::Get).remove(0);
        let by_name = |n: &str| trace.spans.iter().find(|s| s.name == n).unwrap();
        let root = by_name("get");
        assert_eq!(root.id, ROOT_SPAN_ID);
        assert_eq!(root.parent, 0);
        assert!(root
            .annotations
            .contains(&("key", AnnotationValue::U64(99))));
        let outer = by_name("outer");
        let inner = by_name("inner");
        let measured = by_name("measured");
        assert_eq!(outer.parent, ROOT_SPAN_ID);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(measured.parent, inner.id);
        for s in [outer, inner, measured] {
            assert!(s.start_ns <= s.end_ns && s.end_ns <= root.end_ns);
        }
        assert!(inner.start_ns >= outer.start_ns && inner.end_ns <= outer.end_ns);
        assert!(outer
            .annotations
            .contains(&("width", AnnotationValue::U64(3))));
    }

    #[test]
    fn nested_layers_do_not_double_sample() {
        let t = tracer(1, 1, 4);
        let TraceDecision::Sampled(ctx) = t.decide(TraceKind::Commit) else {
            panic!()
        };
        let attach = ctx.attach();
        assert!(matches!(t.decide(TraceKind::Commit), TraceDecision::Nested));
        drop(attach);
        let guard = suppress();
        assert!(matches!(t.decide(TraceKind::Commit), TraceDecision::Nested));
        drop(guard);
        t.finish(ctx);
    }

    #[test]
    fn chrome_export_shape() {
        let t = tracer(1, 1, 4);
        let TraceDecision::Sampled(ctx) = t.decide(TraceKind::Scan) else {
            panic!()
        };
        {
            let _attach = ctx.attach();
            let mut s = span("merge_setup").unwrap();
            s.annotate("merge_width", 5u64);
        }
        t.finish(ctx);
        let chrome = t.chrome_trace_json();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"name\":\"merge_setup\""));
        assert!(chrome.contains("\"merge_width\":5"));
        assert!(chrome.contains("\"tid\":"));
        assert_eq!(chrome.matches('{').count(), chrome.matches('}').count());
        let json = t.traces_json();
        assert!(json.contains("\"kind\":\"scan\""));
        assert!(json.contains("\"total_ns\":"));
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
