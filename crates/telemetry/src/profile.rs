//! Per-shard workload profiling: a sampled key-range heatmap plus
//! read/write/scan mix counters.
//!
//! The router records every op's key into its shard's [`WorkloadProfiler`]:
//! mix counters are plain registry counters (free Prometheus/JSON export),
//! and keys feed a deterministic reservoir sample from which the profiler
//! derives a fixed-width [`WorkloadProfiler::heatmap`] over the observed
//! key range and a [`WorkloadProfiler::suggest_split_key`] — the split-key
//! source `SplitPolicy` falls back to for write-heavy shards that have not
//! flushed an SST yet (where byte-weighted file metadata does not exist).
//!
//! Costs: mix counters are one relaxed atomic add per op; the reservoir
//! admits key `n` with probability `RESERVOIR_SIZE / n`, so the per-op lock
//! is only taken on admission and the steady-state cost is the admission
//! hash.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge};
use crate::Telemetry;

/// Number of fixed-width buckets in an exported heatmap.
pub const HEAT_BUCKETS: usize = 16;

/// Reservoir capacity: enough resolution for a 16-bucket heatmap and a
/// median split key, small enough to copy on export.
pub const RESERVOIR_SIZE: usize = 256;

/// SplitMix64 finalizer (deterministic reservoir admission).
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One shard's workload profile. Registered on a [`Telemetry`] hub via
/// [`Telemetry::register_profiler`]; the hub folds every live profiler into
/// `prometheus_text()` / `json_snapshot()`.
#[derive(Debug)]
pub struct WorkloadProfiler {
    shard: String,
    reads: Counter,
    writes: Counter,
    scans: Counter,
    heat_gauges: Vec<Gauge>,
    /// Keys offered so far (reservoir admission sequence).
    seen: AtomicU64,
    lo_seen: AtomicU64,
    hi_seen: AtomicU64,
    reservoir: Mutex<Vec<u64>>,
}

impl WorkloadProfiler {
    pub(crate) fn new(hub: &Telemetry, shard: &str) -> WorkloadProfiler {
        let registry = hub.registry();
        let labels = [("shard", shard)];
        let heat_gauges = (0..HEAT_BUCKETS)
            .map(|b| {
                registry.gauge(
                    "laser_workload_heat",
                    &[("shard", shard), ("bucket", &b.to_string())],
                )
            })
            .collect();
        WorkloadProfiler {
            shard: shard.to_string(),
            reads: registry.counter("laser_workload_reads_total", &labels),
            writes: registry.counter("laser_workload_writes_total", &labels),
            scans: registry.counter("laser_workload_scans_total", &labels),
            heat_gauges,
            seen: AtomicU64::new(0),
            lo_seen: AtomicU64::new(u64::MAX),
            hi_seen: AtomicU64::new(0),
            reservoir: Mutex::new(Vec::with_capacity(RESERVOIR_SIZE)),
        }
    }

    /// The shard label this profiler reports under.
    pub fn shard(&self) -> &str {
        &self.shard
    }

    /// Offers one key to the reservoir and the observed-range bounds.
    fn offer(&self, key: u64) {
        self.lo_seen.fetch_min(key, Ordering::Relaxed);
        self.hi_seen.fetch_max(key, Ordering::Relaxed);
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        if n < RESERVOIR_SIZE as u64 {
            self.reservoir.lock().unwrap().push(key);
            return;
        }
        // Algorithm R with a deterministic hash in place of an RNG: key n
        // replaces a random slot with probability RESERVOIR_SIZE / (n + 1).
        let j = mix64(key ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % (n + 1);
        if (j as usize) < RESERVOIR_SIZE {
            let mut reservoir = self.reservoir.lock().unwrap();
            if let Some(slot) = reservoir.get_mut(j as usize) {
                *slot = key;
            }
        }
    }

    /// Records one point read of `key`.
    pub fn record_read(&self, key: u64) {
        self.reads.inc();
        self.offer(key);
    }

    /// Records one write of `key` (call per batch entry routed here).
    pub fn record_write(&self, key: u64) {
        self.writes.inc();
        self.offer(key);
    }

    /// Records one scan leg clamped to `[lo, hi]` on this shard.
    pub fn record_scan(&self, lo: u64, hi: u64) {
        self.scans.inc();
        self.offer(lo);
        if hi != lo {
            self.offer(hi);
        }
    }

    /// `(reads, writes, scans)` op-mix counts.
    pub fn mix(&self) -> (u64, u64, u64) {
        (self.reads.get(), self.writes.get(), self.scans.get())
    }

    /// Total keys sampled (offered) so far.
    pub fn keys_seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// The observed key range, `None` before the first sample.
    pub fn observed_range(&self) -> Option<(u64, u64)> {
        let lo = self.lo_seen.load(Ordering::Relaxed);
        let hi = self.hi_seen.load(Ordering::Relaxed);
        (lo <= hi).then_some((lo, hi))
    }

    /// The [`HEAT_BUCKETS`]-wide fixed-width heatmap of sampled keys over
    /// the observed key range (all zeros before the first sample).
    pub fn heatmap(&self) -> [u64; HEAT_BUCKETS] {
        let mut heat = [0u64; HEAT_BUCKETS];
        let Some((lo, hi)) = self.observed_range() else {
            return heat;
        };
        let width = ((hi - lo) / HEAT_BUCKETS as u64).max(1);
        for &key in self.reservoir.lock().unwrap().iter() {
            let bucket = ((key.saturating_sub(lo)) / width).min(HEAT_BUCKETS as u64 - 1);
            heat[bucket as usize] += 1;
        }
        heat
    }

    /// A split key from the sampled workload: the median sampled key, i.e.
    /// the point that splits recent traffic (not bytes) in half. `None`
    /// until the sample is meaningful (too few keys, or all keys equal).
    pub fn suggest_split_key(&self) -> Option<u64> {
        let mut keys = self.reservoir.lock().unwrap().clone();
        if keys.len() < 16 {
            return None;
        }
        keys.sort_unstable();
        let median = keys[keys.len() / 2];
        // A split at the minimum would create an empty left shard.
        (median > keys[0]).then_some(median)
    }

    /// Pushes the current heatmap into the per-bucket export gauges (the
    /// hub calls this before rendering an export).
    pub(crate) fn refresh_gauges(&self) {
        for (gauge, count) in self.heat_gauges.iter().zip(self.heatmap()) {
            gauge.set(count);
        }
    }

    /// This profiler's slice of the JSON snapshot.
    pub(crate) fn json_fragment(&self) -> String {
        let (reads, writes, scans) = self.mix();
        let (lo, hi) = self.observed_range().unwrap_or((0, 0));
        let heat = self.heatmap();
        let mut out = format!(
            "{{\"shard\":{},\"reads\":{reads},\"writes\":{writes},\"scans\":{scans},\"keys_seen\":{},\"key_lo\":{lo},\"key_hi\":{hi},\"heat\":[",
            crate::export::json_escape(&self.shard),
            self.keys_seen(),
        );
        for (i, count) in heat.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&count.to_string());
        }
        out.push_str("]}");
        out
    }
}

impl Telemetry {
    /// Creates (or replaces) the workload profiler for `shard` and folds it
    /// into this hub's exports. Replacement (e.g. a shard re-attach after a
    /// split) starts a fresh sample but resumes the existing mix counters.
    pub fn register_profiler(&self, shard: &str) -> Arc<WorkloadProfiler> {
        let profiler = Arc::new(WorkloadProfiler::new(self, shard));
        let mut profilers = self.profilers.lock().unwrap();
        profilers.retain(|p| p.shard() != shard);
        profilers.push(Arc::clone(&profiler));
        profiler
    }

    /// Drops the profiler for `shard` from exports (a shard retired by a
    /// split). Its registry counters remain, as retired series do.
    pub fn remove_profiler(&self, shard: &str) {
        self.profilers
            .lock()
            .unwrap()
            .retain(|p| p.shard() != shard);
    }

    /// The live workload profilers.
    pub fn workload_profiles(&self) -> Vec<Arc<WorkloadProfiler>> {
        self.profilers.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_tracks_key_distribution_and_mix() {
        let hub = Telemetry::new();
        let profiler = hub.register_profiler("0");
        for key in 0..1000u64 {
            profiler.record_write(key);
        }
        for key in (0..1000u64).step_by(10) {
            profiler.record_read(key);
        }
        profiler.record_scan(0, 999);
        let (reads, writes, scans) = profiler.mix();
        assert_eq!((reads, writes, scans), (100, 1000, 1));
        assert_eq!(profiler.observed_range(), Some((0, 999)));
        let heat = profiler.heatmap();
        assert_eq!(heat.iter().sum::<u64>(), RESERVOIR_SIZE as u64);
        // Uniform keys: no bucket may hog the sample.
        assert!(
            heat.iter().all(|&h| h > 0),
            "uniform keys fill every bucket: {heat:?}"
        );
        let split = profiler.suggest_split_key().expect("enough samples");
        assert!(
            (200..=800).contains(&split),
            "median of uniform 0..1000: {split}"
        );
    }

    #[test]
    fn split_suggestion_follows_skew() {
        let hub = Telemetry::new();
        let profiler = hub.register_profiler("1");
        // 90% of traffic in [0, 100), 10% in [100_000, 100_100).
        for i in 0..900u64 {
            profiler.record_write(i % 100);
        }
        for i in 0..100u64 {
            profiler.record_write(100_000 + i);
        }
        let split = profiler.suggest_split_key().unwrap();
        assert!(
            split < 100,
            "median must stay inside the hot range: {split}"
        );
    }

    #[test]
    fn sparse_profilers_decline_to_suggest() {
        let hub = Telemetry::new();
        let profiler = hub.register_profiler("2");
        assert_eq!(profiler.suggest_split_key(), None);
        for _ in 0..100 {
            profiler.record_write(7);
        }
        assert_eq!(
            profiler.suggest_split_key(),
            None,
            "a single-key workload has no useful split point"
        );
    }

    #[test]
    fn hub_exports_carry_the_profile() {
        let hub = Telemetry::new();
        let profiler = hub.register_profiler("3");
        for key in 0..64u64 {
            profiler.record_write(key * 100);
        }
        let text = hub.prometheus_text();
        assert!(text.contains("laser_workload_writes_total{shard=\"3\"} 64"));
        assert!(text.contains("laser_workload_heat{bucket=\"0\",shard=\"3\"}"));
        let json = hub.json_snapshot();
        assert!(json.contains("\"workload\":["));
        assert!(json.contains("\"keys_seen\":64"));
        hub.remove_profiler("3");
        assert!(hub.workload_profiles().is_empty());
        assert!(!hub.json_snapshot().contains("\"keys_seen\":64"));
    }
}
