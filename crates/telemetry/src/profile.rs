//! Per-shard workload profiling: a sampled key-range heatmap plus
//! read/write/scan mix counters.
//!
//! The router records every op's key into its shard's [`WorkloadProfiler`]:
//! mix counters are plain registry counters (free Prometheus/JSON export),
//! and keys feed a deterministic reservoir sample from which the profiler
//! derives a fixed-width [`WorkloadProfiler::heatmap`] over the observed
//! key range and a [`WorkloadProfiler::suggest_split_key`] — the split-key
//! source `SplitPolicy` falls back to for write-heavy shards that have not
//! flushed an SST yet (where byte-weighted file metadata does not exist).
//!
//! Costs: mix counters are one relaxed atomic add per op; the reservoir
//! admits key `n` with probability `RESERVOIR_SIZE / n`, so the per-op lock
//! is only taken on admission and the steady-state cost is the admission
//! hash.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::export::json_escape;
use crate::metrics::{Counter, Gauge};
use crate::Telemetry;

/// Number of fixed-width buckets in an exported heatmap.
pub const HEAT_BUCKETS: usize = 16;

/// Cap on distinct projections retained per profiler (and per level mix):
/// real workloads use a handful of column sets, and the cap bounds the
/// export size if a client sprays random projections.
pub const MAX_PROJECTIONS: usize = 32;

/// One level's observed operation mix, keyed by projected column set
/// (0-based column indexes, sorted). This is the measured counterpart of
/// the advisor's `LevelWorkload`: the bridge in `laser-advisor` converts a
/// [`WorkloadSnapshot`] into a `WorkloadTrace` level-for-level.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelMix {
    /// Entries first written at this level (level 0 for every engine).
    pub inserts: u64,
    /// Point lookups answered at this level: `(columns, lookups)`.
    pub point_reads: Vec<(Vec<u32>, u64)>,
    /// Column-group fetches performed by those lookups (≥ lookup count on a
    /// columnar engine; equal to it on a row engine).
    pub point_read_groups: u64,
    /// Scans touching this level: `(columns, scans, entries returned)`.
    pub scans: Vec<(Vec<u32>, u64, u64)>,
    /// Updates (partial-row writes) landing at this level.
    pub updates: Vec<(Vec<u32>, u64)>,
}

impl LevelMix {
    /// True if no operation has been attributed to this level.
    pub fn is_empty(&self) -> bool {
        self.inserts == 0
            && self.point_reads.is_empty()
            && self.scans.is_empty()
            && self.updates.is_empty()
    }
}

/// Tree parameters measured from the live engine rather than assumed: the
/// observed counterpart of the cost model's `TreeParameters`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MeasuredTreeParams {
    /// Total entries across all SSTs (plus a memtable estimate).
    pub num_entries: u64,
    /// Configured level size ratio `T`.
    pub size_ratio: u64,
    /// Entries per 4 KiB block, estimated from on-disk bytes per entry.
    pub entries_per_block: u64,
    /// Write buffer capacity in 4 KiB blocks.
    pub level0_blocks: u64,
    /// Columns in the schema (1 for a plain key-value engine).
    pub num_columns: u32,
}

impl Default for MeasuredTreeParams {
    fn default() -> Self {
        MeasuredTreeParams {
            num_entries: 0,
            size_ratio: 10,
            entries_per_block: 1,
            level0_blocks: 1,
            num_columns: 1,
        }
    }
}

/// A serializable point-in-time workload profile for one shard: routing-layer
/// op mix and observed projections, engine-attributed per-level mix, and the
/// measured tree parameters — everything `laser_advisor` needs to run
/// `select_design` on real traffic.
#[derive(Clone, Debug)]
pub struct WorkloadSnapshot {
    /// Shard label.
    pub shard: String,
    /// Engine name (`"lsm"` / `"laser"`).
    pub engine: String,
    /// Point reads routed to this shard.
    pub reads: u64,
    /// Writes routed to this shard.
    pub writes: u64,
    /// Scan legs routed to this shard.
    pub scans: u64,
    /// Measured tree parameters.
    pub params: MeasuredTreeParams,
    /// Per-level operation mix, index = level number.
    pub levels: Vec<LevelMix>,
    /// Projections observed at the routing layer: `(columns, reads)`.
    pub projections: Vec<(Vec<u32>, u64)>,
}

fn json_columns(columns: &[u32]) -> String {
    let mut out = String::from("[");
    for (i, c) in columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&c.to_string());
    }
    out.push(']');
    out
}

fn json_projection_counts(items: &[(Vec<u32>, u64)]) -> String {
    let mut out = String::from("[");
    for (i, (columns, count)) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"columns\":{},\"count\":{count}}}",
            json_columns(columns)
        ));
    }
    out.push(']');
    out
}

impl LevelMix {
    fn json_fragment(&self) -> String {
        let mut out = format!(
            "{{\"inserts\":{},\"point_read_groups\":{},\"point_reads\":{},\"scans\":[",
            self.inserts,
            self.point_read_groups,
            json_projection_counts(&self.point_reads)
        );
        for (i, (columns, count, entries)) in self.scans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"columns\":{},\"count\":{count},\"entries\":{entries}}}",
                json_columns(columns)
            ));
        }
        out.push_str(&format!(
            "],\"updates\":{}}}",
            json_projection_counts(&self.updates)
        ));
        out
    }
}

impl WorkloadSnapshot {
    /// Renders the snapshot as a self-contained JSON object (the
    /// `/debug/workload` endpoint body and the nightly `advisor_trace.json`
    /// artifact are arrays of these).
    pub fn to_json(&self) -> String {
        let p = &self.params;
        let mut out = format!(
            "{{\"shard\":{},\"engine\":{},\"reads\":{},\"writes\":{},\"scans\":{},\
             \"params\":{{\"num_entries\":{},\"size_ratio\":{},\"entries_per_block\":{},\
             \"level0_blocks\":{},\"num_columns\":{}}},\"projections\":{},\"levels\":[",
            json_escape(&self.shard),
            json_escape(&self.engine),
            self.reads,
            self.writes,
            self.scans,
            p.num_entries,
            p.size_ratio,
            p.entries_per_block,
            p.level0_blocks,
            p.num_columns,
            json_projection_counts(&self.projections),
        );
        for (i, level) in self.levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&level.json_fragment());
        }
        out.push_str("]}");
        out
    }
}

/// Bumps `columns` by `count` in a capped distinct-projection list.
fn bump_projection(list: &mut Vec<(Vec<u32>, u64)>, columns: &[u32], count: u64) {
    let mut columns = columns.to_vec();
    columns.sort_unstable();
    columns.dedup();
    if let Some(slot) = list.iter_mut().find(|(c, _)| *c == columns) {
        slot.1 += count;
        return;
    }
    if list.len() < MAX_PROJECTIONS {
        list.push((columns, count));
    }
}

/// Reservoir capacity: enough resolution for a 16-bucket heatmap and a
/// median split key, small enough to copy on export.
pub const RESERVOIR_SIZE: usize = 256;

/// SplitMix64 finalizer (deterministic reservoir admission).
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One shard's workload profile. Registered on a [`Telemetry`] hub via
/// [`Telemetry::register_profiler`]; the hub folds every live profiler into
/// `prometheus_text()` / `json_snapshot()`.
#[derive(Debug)]
pub struct WorkloadProfiler {
    shard: String,
    reads: Counter,
    writes: Counter,
    scans: Counter,
    heat_gauges: Vec<Gauge>,
    /// Keys offered so far (reservoir admission sequence).
    seen: AtomicU64,
    lo_seen: AtomicU64,
    hi_seen: AtomicU64,
    reservoir: Mutex<Vec<u64>>,
    /// Projections observed on the read path, `(sorted columns, reads)`.
    projections: Mutex<Vec<(Vec<u32>, u64)>>,
    /// Engine-attributed per-level mix, refreshed wholesale by the owner
    /// (the sharding layer pulls it from engine stats before exports).
    levels: Mutex<Vec<LevelMix>>,
    /// Measured tree parameters, refreshed alongside `levels`.
    params: Mutex<MeasuredTreeParams>,
}

impl WorkloadProfiler {
    pub(crate) fn new(hub: &Telemetry, shard: &str) -> WorkloadProfiler {
        let registry = hub.registry();
        let labels = [("shard", shard)];
        let heat_gauges = (0..HEAT_BUCKETS)
            .map(|b| {
                registry.gauge(
                    "laser_workload_heat",
                    &[("shard", shard), ("bucket", &b.to_string())],
                )
            })
            .collect();
        WorkloadProfiler {
            shard: shard.to_string(),
            reads: registry.counter("laser_workload_reads_total", &labels),
            writes: registry.counter("laser_workload_writes_total", &labels),
            scans: registry.counter("laser_workload_scans_total", &labels),
            heat_gauges,
            seen: AtomicU64::new(0),
            lo_seen: AtomicU64::new(u64::MAX),
            hi_seen: AtomicU64::new(0),
            reservoir: Mutex::new(Vec::with_capacity(RESERVOIR_SIZE)),
            projections: Mutex::new(Vec::new()),
            levels: Mutex::new(Vec::new()),
            params: Mutex::new(MeasuredTreeParams::default()),
        }
    }

    /// The shard label this profiler reports under.
    pub fn shard(&self) -> &str {
        &self.shard
    }

    /// Offers one key to the reservoir and the observed-range bounds.
    fn offer(&self, key: u64) {
        self.lo_seen.fetch_min(key, Ordering::Relaxed);
        self.hi_seen.fetch_max(key, Ordering::Relaxed);
        let n = self.seen.fetch_add(1, Ordering::Relaxed);
        if n < RESERVOIR_SIZE as u64 {
            self.reservoir.lock().unwrap().push(key);
            return;
        }
        // Algorithm R with a deterministic hash in place of an RNG: key n
        // replaces a random slot with probability RESERVOIR_SIZE / (n + 1).
        let j = mix64(key ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % (n + 1);
        if (j as usize) < RESERVOIR_SIZE {
            let mut reservoir = self.reservoir.lock().unwrap();
            if let Some(slot) = reservoir.get_mut(j as usize) {
                *slot = key;
            }
        }
    }

    /// Records one point read of `key`.
    pub fn record_read(&self, key: u64) {
        self.reads.inc();
        self.offer(key);
    }

    /// Records one write of `key` (call per batch entry routed here).
    pub fn record_write(&self, key: u64) {
        self.writes.inc();
        self.offer(key);
    }

    /// Records one scan leg clamped to `[lo, hi]` on this shard.
    pub fn record_scan(&self, lo: u64, hi: u64) {
        self.scans.inc();
        self.offer(lo);
        if hi != lo {
            self.offer(hi);
        }
    }

    /// Records the column set a read projected (0-based column indexes).
    /// Call alongside [`WorkloadProfiler::record_read`] /
    /// [`WorkloadProfiler::record_scan`] on engines whose read context
    /// carries a projection.
    pub fn record_projection(&self, columns: &[u32]) {
        bump_projection(&mut self.projections.lock().unwrap(), columns, 1);
    }

    /// Distinct projections observed so far, `(sorted columns, reads)`.
    pub fn observed_projections(&self) -> Vec<(Vec<u32>, u64)> {
        self.projections.lock().unwrap().clone()
    }

    /// Replaces the engine-attributed per-level mix and measured tree
    /// parameters (the owner refreshes these from engine stats before an
    /// export or snapshot).
    pub fn set_level_mix(&self, params: MeasuredTreeParams, levels: Vec<LevelMix>) {
        *self.params.lock().unwrap() = params;
        *self.levels.lock().unwrap() = levels;
    }

    /// The latest per-level mix pushed via
    /// [`WorkloadProfiler::set_level_mix`].
    pub fn level_mix(&self) -> Vec<LevelMix> {
        self.levels.lock().unwrap().clone()
    }

    /// The latest measured tree parameters.
    pub fn measured_params(&self) -> MeasuredTreeParams {
        *self.params.lock().unwrap()
    }

    /// A serializable snapshot of everything this profiler knows, tagged
    /// with the engine name it profiles.
    pub fn snapshot(&self, engine: &str) -> WorkloadSnapshot {
        let (reads, writes, scans) = self.mix();
        WorkloadSnapshot {
            shard: self.shard.clone(),
            engine: engine.to_string(),
            reads,
            writes,
            scans,
            params: self.measured_params(),
            levels: self.level_mix(),
            projections: self.observed_projections(),
        }
    }

    /// `(reads, writes, scans)` op-mix counts.
    pub fn mix(&self) -> (u64, u64, u64) {
        (self.reads.get(), self.writes.get(), self.scans.get())
    }

    /// Total keys sampled (offered) so far.
    pub fn keys_seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// The observed key range, `None` before the first sample.
    pub fn observed_range(&self) -> Option<(u64, u64)> {
        let lo = self.lo_seen.load(Ordering::Relaxed);
        let hi = self.hi_seen.load(Ordering::Relaxed);
        (lo <= hi).then_some((lo, hi))
    }

    /// The [`HEAT_BUCKETS`]-wide fixed-width heatmap of sampled keys over
    /// the observed key range (all zeros before the first sample).
    pub fn heatmap(&self) -> [u64; HEAT_BUCKETS] {
        let mut heat = [0u64; HEAT_BUCKETS];
        let Some((lo, hi)) = self.observed_range() else {
            return heat;
        };
        let width = ((hi - lo) / HEAT_BUCKETS as u64).max(1);
        for &key in self.reservoir.lock().unwrap().iter() {
            let bucket = ((key.saturating_sub(lo)) / width).min(HEAT_BUCKETS as u64 - 1);
            heat[bucket as usize] += 1;
        }
        heat
    }

    /// A split key from the sampled workload: the median sampled key, i.e.
    /// the point that splits recent traffic (not bytes) in half. `None`
    /// until the sample is meaningful (too few keys, or all keys equal).
    pub fn suggest_split_key(&self) -> Option<u64> {
        let mut keys = self.reservoir.lock().unwrap().clone();
        if keys.len() < 16 {
            return None;
        }
        keys.sort_unstable();
        let median = keys[keys.len() / 2];
        // A split at the minimum would create an empty left shard.
        (median > keys[0]).then_some(median)
    }

    /// Pushes the current heatmap into the per-bucket export gauges (the
    /// hub calls this before rendering an export).
    pub(crate) fn refresh_gauges(&self) {
        for (gauge, count) in self.heat_gauges.iter().zip(self.heatmap()) {
            gauge.set(count);
        }
    }

    /// This profiler's slice of the JSON snapshot.
    pub(crate) fn json_fragment(&self) -> String {
        let (reads, writes, scans) = self.mix();
        let (lo, hi) = self.observed_range().unwrap_or((0, 0));
        let heat = self.heatmap();
        let mut out = format!(
            "{{\"shard\":{},\"reads\":{reads},\"writes\":{writes},\"scans\":{scans},\"keys_seen\":{},\"key_lo\":{lo},\"key_hi\":{hi},\"heat\":[",
            crate::export::json_escape(&self.shard),
            self.keys_seen(),
        );
        for (i, count) in heat.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&count.to_string());
        }
        out.push_str("],\"projections\":");
        out.push_str(&json_projection_counts(&self.observed_projections()));
        out.push_str(",\"levels\":[");
        for (i, level) in self.level_mix().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&level.json_fragment());
        }
        out.push_str("]}");
        out
    }
}

impl Telemetry {
    /// Creates (or replaces) the workload profiler for `shard` and folds it
    /// into this hub's exports. Replacement (e.g. a shard re-attach after a
    /// split) starts a fresh sample but resumes the existing mix counters.
    pub fn register_profiler(&self, shard: &str) -> Arc<WorkloadProfiler> {
        let profiler = Arc::new(WorkloadProfiler::new(self, shard));
        let mut profilers = self.profilers.lock().unwrap();
        profilers.retain(|p| p.shard() != shard);
        profilers.push(Arc::clone(&profiler));
        profiler
    }

    /// Drops the profiler for `shard` from exports (a shard retired by a
    /// split). Its registry counters remain, as retired series do.
    pub fn remove_profiler(&self, shard: &str) {
        self.profilers
            .lock()
            .unwrap()
            .retain(|p| p.shard() != shard);
    }

    /// The live workload profilers.
    pub fn workload_profiles(&self) -> Vec<Arc<WorkloadProfiler>> {
        self.profilers.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_tracks_key_distribution_and_mix() {
        let hub = Telemetry::new();
        let profiler = hub.register_profiler("0");
        for key in 0..1000u64 {
            profiler.record_write(key);
        }
        for key in (0..1000u64).step_by(10) {
            profiler.record_read(key);
        }
        profiler.record_scan(0, 999);
        let (reads, writes, scans) = profiler.mix();
        assert_eq!((reads, writes, scans), (100, 1000, 1));
        assert_eq!(profiler.observed_range(), Some((0, 999)));
        let heat = profiler.heatmap();
        assert_eq!(heat.iter().sum::<u64>(), RESERVOIR_SIZE as u64);
        // Uniform keys: no bucket may hog the sample.
        assert!(
            heat.iter().all(|&h| h > 0),
            "uniform keys fill every bucket: {heat:?}"
        );
        let split = profiler.suggest_split_key().expect("enough samples");
        assert!(
            (200..=800).contains(&split),
            "median of uniform 0..1000: {split}"
        );
    }

    #[test]
    fn split_suggestion_follows_skew() {
        let hub = Telemetry::new();
        let profiler = hub.register_profiler("1");
        // 90% of traffic in [0, 100), 10% in [100_000, 100_100).
        for i in 0..900u64 {
            profiler.record_write(i % 100);
        }
        for i in 0..100u64 {
            profiler.record_write(100_000 + i);
        }
        let split = profiler.suggest_split_key().unwrap();
        assert!(
            split < 100,
            "median must stay inside the hot range: {split}"
        );
    }

    #[test]
    fn sparse_profilers_decline_to_suggest() {
        let hub = Telemetry::new();
        let profiler = hub.register_profiler("2");
        assert_eq!(profiler.suggest_split_key(), None);
        for _ in 0..100 {
            profiler.record_write(7);
        }
        assert_eq!(
            profiler.suggest_split_key(),
            None,
            "a single-key workload has no useful split point"
        );
    }

    #[test]
    fn snapshot_carries_levels_projections_and_params() {
        let hub = Telemetry::new();
        let profiler = hub.register_profiler("4");
        profiler.record_read(1);
        profiler.record_projection(&[2, 0, 2]);
        profiler.record_projection(&[0, 2]);
        profiler.record_projection(&[1]);
        let params = MeasuredTreeParams {
            num_entries: 5000,
            size_ratio: 4,
            entries_per_block: 32,
            level0_blocks: 8,
            num_columns: 3,
        };
        let levels = vec![
            LevelMix {
                inserts: 100,
                point_reads: vec![(vec![0, 2], 7)],
                point_read_groups: 9,
                scans: vec![(vec![1], 2, 40)],
                updates: vec![(vec![1], 3)],
            },
            LevelMix::default(),
        ];
        profiler.set_level_mix(params, levels.clone());
        let snapshot = profiler.snapshot("laser");
        assert_eq!(snapshot.shard, "4");
        assert_eq!(snapshot.engine, "laser");
        assert_eq!(snapshot.reads, 1);
        assert_eq!(snapshot.params, params);
        assert_eq!(snapshot.levels, levels);
        // Unsorted + duplicate columns collapse onto one projection entry.
        assert_eq!(snapshot.projections, vec![(vec![0, 2], 2), (vec![1], 1)]);
        assert!(levels[1].is_empty() && !levels[0].is_empty());
        let json = snapshot.to_json();
        assert!(json.contains("\"engine\":\"laser\""));
        assert!(json.contains("\"num_entries\":5000"));
        assert!(json.contains("{\"columns\":[0,2],\"count\":2}"));
        assert!(json.contains("\"scans\":[{\"columns\":[1],\"count\":2,\"entries\":40}]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // The hub JSON snapshot picks the same detail up via json_fragment.
        assert!(hub.json_snapshot().contains("\"point_read_groups\":9"));
    }

    #[test]
    fn hub_exports_carry_the_profile() {
        let hub = Telemetry::new();
        let profiler = hub.register_profiler("3");
        for key in 0..64u64 {
            profiler.record_write(key * 100);
        }
        let text = hub.prometheus_text();
        assert!(text.contains("laser_workload_writes_total{shard=\"3\"} 64"));
        assert!(text.contains("laser_workload_heat{bucket=\"0\",shard=\"3\"}"));
        let json = hub.json_snapshot();
        assert!(json.contains("\"workload\":["));
        assert!(json.contains("\"keys_seen\":64"));
        hub.remove_profiler("3");
        assert!(hub.workload_profiles().is_empty());
        assert!(!hub.json_snapshot().contains("\"keys_seen\":64"));
    }
}
