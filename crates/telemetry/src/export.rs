//! Exports: Prometheus-style text exposition, a JSON snapshot, and a small
//! parser for the exposition format (used by CI to validate that every
//! registered metric actually reaches the export).

use crate::metrics::{MetricValue, MetricsRegistry, RegisteredMetric};
use crate::{events, Telemetry};

/// Escapes a Prometheus label value (`\`, `"`, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `{k="v",...}` (empty string for no labels), with `extra` appended
/// after the registered labels.
fn label_block(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (key, value) in labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(key);
        out.push_str("=\"");
        out.push_str(&escape_label(value));
        out.push('"');
    }
    out.push('}');
    out
}

/// Renders the registry in Prometheus text exposition format. Counters and
/// gauges emit one sample per label set; histograms emit summary-style
/// quantile samples plus `_sum` and `_count`.
pub fn prometheus_text(registry: &MetricsRegistry) -> String {
    let mut metrics = registry.metrics();
    metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    let mut out = String::new();
    let mut last_name = String::new();
    for metric in &metrics {
        if metric.name != last_name {
            let kind = match metric.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) | MetricValue::Float(_) => "gauge",
                MetricValue::Histogram(_) => "summary",
            };
            out.push_str(&format!("# TYPE {} {kind}\n", metric.name));
            last_name.clone_from(&metric.name);
        }
        match &metric.value {
            MetricValue::Counter(counter) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    metric.name,
                    label_block(&metric.labels, &[]),
                    counter.get()
                ));
            }
            MetricValue::Gauge(gauge) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    metric.name,
                    label_block(&metric.labels, &[]),
                    gauge.get()
                ));
            }
            MetricValue::Float(gauge) => {
                // `{}` on an f64 always includes enough digits to round-trip
                // and never produces exponent-free ambiguity the parser
                // chokes on; non-finite values render as `NaN`/`inf`, which
                // `f64::parse` also accepts.
                out.push_str(&format!(
                    "{}{} {}\n",
                    metric.name,
                    label_block(&metric.labels, &[]),
                    gauge.get()
                ));
            }
            MetricValue::Histogram(histogram) => {
                let snap = histogram.snapshot();
                for (q, value) in [
                    ("0.5", snap.p50()),
                    ("0.95", snap.p95()),
                    ("0.99", snap.p99()),
                ] {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        metric.name,
                        label_block(&metric.labels, &[("quantile", q)]),
                        value
                    ));
                }
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    metric.name,
                    label_block(&metric.labels, &[]),
                    snap.sum
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    metric.name,
                    label_block(&metric.labels, &[]),
                    snap.count
                ));
            }
        }
    }
    out
}

/// One parsed exposition sample.
#[derive(Clone, Debug, PartialEq)]
pub struct ExpositionSample {
    /// Sample name (`_sum` / `_count` suffixes included as written).
    pub name: String,
    /// Label pairs in exposition order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parses text produced by [`prometheus_text`] back into samples, skipping
/// comment lines. Returns `None` on any malformed sample line — good enough
/// for round-trip validation of our own exposition, not a general parser.
pub fn parse_prometheus_text(text: &str) -> Option<Vec<ExpositionSample>> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ')?;
        let value: f64 = value.parse().ok()?;
        let (name, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest.strip_suffix('}')?;
                let mut labels = Vec::new();
                let mut remaining = body;
                while !remaining.is_empty() {
                    let (key, rest) = remaining.split_once("=\"")?;
                    // Label values we emit escape `"`, so an unescaped quote
                    // terminates the value.
                    let mut end = None;
                    let bytes = rest.as_bytes();
                    let mut index = 0;
                    while index < bytes.len() {
                        match bytes[index] {
                            b'\\' => index += 2,
                            b'"' => {
                                end = Some(index);
                                break;
                            }
                            _ => index += 1,
                        }
                    }
                    let end = end?;
                    let raw = &rest[..end];
                    let unescaped = raw
                        .replace("\\n", "\n")
                        .replace("\\\"", "\"")
                        .replace("\\\\", "\\");
                    labels.push((key.to_string(), unescaped));
                    remaining = rest[end + 1..].trim_start_matches(',');
                }
                (name.to_string(), labels)
            }
        };
        samples.push(ExpositionSample {
            name,
            labels,
            value,
        });
    }
    Some(samples)
}

/// Renders an `f64` as a JSON value. JSON has no literal for non-finite
/// numbers, so those degrade to `null` rather than emitting an invalid
/// document.
pub(crate) fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

pub(crate) fn json_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (index, (key, value)) in labels.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(&json_escape(key));
        out.push(':');
        out.push_str(&json_escape(value));
    }
    out.push('}');
    out
}

fn json_metric(metric: &RegisteredMetric) -> String {
    let head = format!(
        "{{\"name\":{},\"labels\":{}",
        json_escape(&metric.name),
        json_labels(&metric.labels)
    );
    match &metric.value {
        MetricValue::Counter(counter) => {
            format!("{head},\"type\":\"counter\",\"value\":{}}}", counter.get())
        }
        MetricValue::Gauge(gauge) => {
            format!("{head},\"type\":\"gauge\",\"value\":{}}}", gauge.get())
        }
        MetricValue::Float(gauge) => {
            format!(
                "{head},\"type\":\"gauge\",\"value\":{}}}",
                json_f64(gauge.get())
            )
        }
        MetricValue::Histogram(histogram) => {
            let snap = histogram.snapshot();
            format!(
                "{head},\"type\":\"histogram\",\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"mean\":{:.1}}}",
                snap.count,
                snap.sum,
                snap.p50(),
                snap.p95(),
                snap.p99(),
                snap.mean()
            )
        }
    }
}

/// Renders the full telemetry state (metrics, event log, slow-op count,
/// slow-trace flight recorder, per-shard workload profiles) as a
/// self-contained JSON document.
pub fn json_snapshot(telemetry: &Telemetry) -> String {
    for profiler in telemetry.workload_profiles() {
        profiler.refresh_gauges();
    }
    let mut metrics = telemetry.registry().metrics();
    metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    let mut out = String::from("{");
    out.push_str(&format!("\"at_unix_ms\":{}", events::unix_millis()));
    out.push_str(&format!(",\"slow_ops\":{}", telemetry.slow_ops()));
    out.push_str(",\"metrics\":[");
    for (index, metric) in metrics.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(&json_metric(metric));
    }
    out.push_str("],\"events\":[");
    for (index, event) in telemetry.recent_events().iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"kind\":{},\"label\":{},\"at_unix_ms\":{},\"duration_us\":{},\"bytes_read\":{},\"bytes_written\":{},\"entries\":{},\"slow\":{}}}",
            json_escape(event.kind.as_str()),
            json_escape(&event.label),
            event.at_unix_ms,
            event.duration_us,
            event.bytes_read,
            event.bytes_written,
            event.entries,
            event.slow
        ));
    }
    out.push_str("],\"traces\":");
    out.push_str(&crate::trace::traces_json_array(
        &telemetry.tracer().all_traces(),
    ));
    out.push_str(",\"workload\":[");
    for (index, profiler) in telemetry.workload_profiles().iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str(&profiler.json_fragment());
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Telemetry};
    use std::time::Duration;

    #[test]
    fn exposition_round_trips_every_metric() {
        let telemetry = Telemetry::new();
        let registry = telemetry.registry();
        registry.counter("ops_total", &[("shard", "0")]).add(7);
        registry.gauge("live_bytes", &[]).set(42);
        let latency = registry.histogram("lat_ns", &[("shard", "a\"b")]);
        for v in [5u64, 50, 500] {
            latency.record(v);
        }
        let text = telemetry.prometheus_text();
        let samples = parse_prometheus_text(&text).expect("exposition must parse");
        // Every registered metric appears: counter + gauge + slow_ops
        // (implicit) + 3 quantiles + sum + count for the histogram.
        let find = |name: &str| samples.iter().find(|s| s.name == name);
        assert_eq!(find("ops_total").unwrap().value, 7.0);
        assert_eq!(find("live_bytes").unwrap().value, 42.0);
        assert_eq!(find("lat_ns_count").unwrap().value, 3.0);
        assert_eq!(find("lat_ns_sum").unwrap().value, 555.0);
        assert!(find("laser_slow_ops_total").is_some());
        let quantile = samples
            .iter()
            .find(|s| s.name == "lat_ns" && s.labels.iter().any(|(k, _)| k == "quantile"))
            .unwrap();
        // The escaped label value survives the round trip.
        assert!(quantile.labels.contains(&("shard".into(), "a\"b".into())));
        for sample in &samples {
            assert!(sample.value.is_finite(), "{sample:?}");
        }
    }

    #[test]
    fn float_gauges_round_trip_through_the_exposition() {
        let telemetry = Telemetry::new();
        let amp = telemetry
            .registry()
            .float_gauge("laser_write_amp", &[("shard", "0")]);
        amp.set(2.625);
        let text = telemetry.prometheus_text();
        assert!(text.contains("# TYPE laser_write_amp gauge"));
        let samples = parse_prometheus_text(&text).expect("exposition must parse");
        let sample = samples
            .iter()
            .find(|s| s.name == "laser_write_amp")
            .unwrap();
        assert_eq!(sample.value, 2.625);
        assert!(telemetry.json_snapshot().contains("\"value\":2.625"));
    }

    #[test]
    fn json_snapshot_contains_metrics_and_events() {
        let telemetry = Telemetry::new();
        telemetry.registry().counter("ops_total", &[]).add(3);
        telemetry.record_event(
            EventKind::Compaction,
            "0",
            Duration::from_secs(2),
            100,
            80,
            9,
        );
        let json = telemetry.json_snapshot();
        assert!(json.contains("\"name\":\"ops_total\""));
        assert!(json.contains("\"kind\":\"compaction\""));
        assert!(json.contains("\"slow\":true"));
        assert!(json.contains("\"slow_ops\":1"));
        // Crude structural sanity: balanced braces/brackets.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
