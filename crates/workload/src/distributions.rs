//! Key-selection distributions for lifecycle-driven access patterns.
//!
//! The paper selects the key `v` of point queries from a normal distribution
//! over the *time-since-insertion* of the keys, expressed as a fraction of the
//! lifetime of the data set: a mean of 0.98 targets the freshest ~2% of keys
//! (memtable / Level-0 / Level-1), a mean of 0.85 targets slightly older data
//! (Level-2 / Level-3). Figure 9(a).

use rand::Rng;

/// A (truncated) normal distribution over recency ranks in `[0, 1]`, where
/// `1.0` is the most recently inserted key and `0.0` the oldest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyAgeDistribution {
    /// Mean recency (0.98 for the paper's Q2a, 0.85 for Q2b).
    pub mean: f64,
    /// Standard deviation (0.02 in the paper).
    pub std_dev: f64,
}

impl KeyAgeDistribution {
    /// The paper's Q2a pattern: mean 0.98, σ 0.02.
    pub fn q2a() -> Self {
        KeyAgeDistribution {
            mean: 0.98,
            std_dev: 0.02,
        }
    }

    /// The paper's Q2b pattern: mean 0.85, σ 0.02.
    pub fn q2b() -> Self {
        KeyAgeDistribution {
            mean: 0.85,
            std_dev: 0.02,
        }
    }

    /// Applies a vertical shift (Figure 10a): the mean moves toward older
    /// data by `offset`.
    pub fn shifted(self, offset: f64) -> Self {
        KeyAgeDistribution {
            mean: (self.mean - offset).clamp(0.0, 1.0),
            std_dev: self.std_dev,
        }
    }

    /// Samples a recency rank in `[0, 1]` using the Box–Muller transform,
    /// clamped to the unit interval.
    pub fn sample_rank<R: Rng>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mean + z * self.std_dev).clamp(0.0, 1.0)
    }

    /// Samples a key given that keys `0..num_keys` were inserted in order
    /// (key `num_keys - 1` is the most recent).
    pub fn sample_key<R: Rng>(&self, rng: &mut R, num_keys: u64) -> u64 {
        if num_keys == 0 {
            return 0;
        }
        let rank = self.sample_rank(rng);
        ((rank * (num_keys - 1) as f64).round() as u64).min(num_keys - 1)
    }
}

/// Samples a uniformly random key in `[0, num_keys)`.
pub fn uniform_key<R: Rng>(rng: &mut R, num_keys: u64) -> u64 {
    if num_keys == 0 {
        0
    } else {
        rng.gen_range(0..num_keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range_and_cluster_near_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let dist = KeyAgeDistribution::q2a();
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let r = dist.sample_rank(&mut rng);
            assert!((0.0..=1.0).contains(&r));
            sum += r;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.98).abs() < 0.01, "empirical mean {mean}");
    }

    #[test]
    fn q2b_targets_older_keys_than_q2a() {
        let mut rng = StdRng::seed_from_u64(9);
        let a: f64 = (0..5000)
            .map(|_| KeyAgeDistribution::q2a().sample_rank(&mut rng))
            .sum::<f64>()
            / 5000.0;
        let b: f64 = (0..5000)
            .map(|_| KeyAgeDistribution::q2b().sample_rank(&mut rng))
            .sum::<f64>()
            / 5000.0;
        assert!(b < a);
    }

    #[test]
    fn shifted_moves_mean_down_and_clamps() {
        let d = KeyAgeDistribution::q2a().shifted(0.1);
        assert!((d.mean - 0.88).abs() < 1e-12);
        let d = KeyAgeDistribution::q2a().shifted(2.0);
        assert_eq!(d.mean, 0.0);
    }

    #[test]
    fn sample_key_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = KeyAgeDistribution::q2b();
        for _ in 0..1000 {
            let k = dist.sample_key(&mut rng, 100);
            assert!(k < 100);
        }
        assert_eq!(dist.sample_key(&mut rng, 0), 0);
        assert_eq!(dist.sample_key(&mut rng, 1), 0);
        for _ in 0..100 {
            assert!(uniform_key(&mut rng, 50) < 50);
        }
        assert_eq!(uniform_key(&mut rng, 0), 0);
    }
}
