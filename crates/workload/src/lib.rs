//! # laser-workload
//!
//! The HTAP benchmark workload of the paper's evaluation (Section 7), built
//! from five query templates over a table with an integer primary key and
//! `c` integer payload columns:
//!
//! * **Q1** — `INSERT INTO R VALUES (a0, a1, ..., ac)`
//! * **Q2** — point query: `SELECT a1..ak FROM R WHERE a0 = v`
//! * **Q3** — update: `UPDATE R SET a1=v1..ak=vk WHERE a0 = v`
//! * **Q4** — arithmetic range query: `SELECT a1+..+ak FROM R WHERE a0 ∈ [vs, ve)`
//! * **Q5** — aggregate range query: `SELECT MAX(a1)..MAX(ak) FROM R WHERE a0 ∈ [vs, ve)`
//!
//! plus the composite lifecycle-driven workload **HW** of Table 3 (Q2a/Q2b
//! read patterns drawn from normal distributions over time-since-insertion,
//! Q4/Q5 analytics over 5% / 50% of the keys) and the workload *shifts* used
//! by the robustness experiment (Figure 10).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distributions;
pub mod htap;
pub mod ops;
pub mod trace;

pub use distributions::KeyAgeDistribution;
pub use htap::{HtapWorkloadSpec, HwQuery, WorkloadShift};
pub use ops::{Operation, OperationKind, OperationStream};
pub use trace::build_workload_trace;
