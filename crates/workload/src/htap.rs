//! The paper's lifecycle-driven HTAP workload **HW** (Section 7.2, Table 3)
//! and the workload shifts of the robustness experiment (Section 7.3).
//!
//! | Query | Projection | Key distribution           | Count (paper)   |
//! |-------|-----------|-----------------------------|-----------------|
//! | Q1    | 1–30      | uniform (new keys)          | 10,000 / sec    |
//! | Q2a   | 1–30      | normal(0.98, 0.02) recency  | 500,000         |
//! | Q2b   | 16–30     | normal(0.85, 0.02) recency  | 500,000         |
//! | Q3    | any 1     | uniform, recent data        | 100 / sec       |
//! | Q4    | 21–30     | uniform, 5% of keys         | 12              |
//! | Q5    | 28–30     | uniform, 50% of keys        | 12              |
//!
//! The generator is scale-parameterised: the paper loads 400 M rows and
//! inserts 20 M more during the measured phase; the scaled-down defaults keep
//! the same *ratios* at laptop-friendly sizes so the experiment shapes are
//! preserved.

use rand::Rng;

use laser_core::{Projection, Value};

use crate::distributions::{uniform_key, KeyAgeDistribution};
use crate::ops::{Operation, OperationStream};

/// One of the benchmark's query templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwQuery {
    /// Q1: insert.
    Q1,
    /// Q2a: point read of all columns over very recent keys.
    Q2a,
    /// Q2b: point read of columns 16–30 over recent keys.
    Q2b,
    /// Q3: single-column update of a recent key.
    Q3,
    /// Q4: sum over columns 21–30 for 5% of the keys.
    Q4,
    /// Q5: max over columns 28–30 for 50% of the keys.
    Q5,
}

/// A shift applied to the representative workload (Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkloadShift {
    /// Vertical shift: offset subtracted from the Q2a/Q2b recency means.
    pub vertical_read_offset: f64,
    /// Horizontal shift: how many columns the Q5 projection moves left.
    pub horizontal_projection_offset: usize,
}

/// The HW workload specification.
#[derive(Debug, Clone, PartialEq)]
pub struct HtapWorkloadSpec {
    /// Number of payload columns (30 for the narrow table).
    pub num_columns: usize,
    /// Rows loaded before measurements start.
    pub load_keys: u64,
    /// Rows inserted during the measured (steady) phase.
    pub steady_inserts: u64,
    /// Number of Q2a point reads in the steady phase.
    pub q2a_count: u64,
    /// Number of Q2b point reads in the steady phase.
    pub q2b_count: u64,
    /// Updates (Q3) issued per insert (the paper uses 1%).
    pub update_ratio: f64,
    /// Number of Q4 range queries.
    pub q4_count: u64,
    /// Number of Q5 range queries.
    pub q5_count: u64,
    /// Fraction of the key space scanned by Q4 (0.05 in the paper).
    pub q4_selectivity: f64,
    /// Fraction of the key space scanned by Q5 (0.5 in the paper).
    pub q5_selectivity: f64,
    /// Workload shift (zero for the representative workload).
    pub shift: WorkloadShift,
}

impl HtapWorkloadSpec {
    /// The paper's workload at full scale (for reference; not meant to be run
    /// on a laptop).
    pub fn paper_scale() -> Self {
        HtapWorkloadSpec {
            num_columns: 30,
            load_keys: 400_000_000,
            steady_inserts: 20_000_000,
            q2a_count: 500_000,
            q2b_count: 500_000,
            update_ratio: 0.01,
            q4_count: 12,
            q5_count: 12,
            q4_selectivity: 0.05,
            q5_selectivity: 0.5,
            shift: WorkloadShift::default(),
        }
    }

    /// A laptop-scale configuration preserving the paper's operation ratios.
    pub fn scaled_down() -> Self {
        HtapWorkloadSpec {
            num_columns: 30,
            load_keys: 8_000,
            steady_inserts: 2_000,
            q2a_count: 300,
            q2b_count: 300,
            update_ratio: 0.01,
            q4_count: 4,
            q5_count: 4,
            q4_selectivity: 0.05,
            q5_selectivity: 0.5,
            shift: WorkloadShift::default(),
        }
    }

    /// An even smaller configuration for unit tests.
    pub fn tiny() -> Self {
        HtapWorkloadSpec {
            num_columns: 8,
            load_keys: 600,
            steady_inserts: 200,
            q2a_count: 40,
            q2b_count: 40,
            update_ratio: 0.02,
            q4_count: 2,
            q5_count: 2,
            q4_selectivity: 0.05,
            q5_selectivity: 0.5,
            shift: WorkloadShift::default(),
        }
    }

    /// Applies a workload shift, returning the shifted spec.
    pub fn with_shift(mut self, shift: WorkloadShift) -> Self {
        self.shift = shift;
        self
    }

    /// Total keys present at the end of the run.
    pub fn total_keys(&self) -> u64 {
        self.load_keys + self.steady_inserts
    }

    /// The projection used by `query` under the current shift.
    pub fn projection_for(&self, query: HwQuery) -> Projection {
        let c = self.num_columns;
        let clamp1 = |x: usize| x.clamp(1, c);
        match query {
            HwQuery::Q1 => Projection::of(0..c),
            HwQuery::Q2a => Projection::of(0..c),
            // Columns 16-30 on the 30-column table scale to the upper half in general.
            HwQuery::Q2b => Projection::range_1based(clamp1(c / 2 + 1), c),
            HwQuery::Q3 => Projection::empty(), // chosen per operation
            // Columns 21-30 -> upper third.
            HwQuery::Q4 => Projection::range_1based(clamp1(c * 2 / 3 + 1), c),
            // Columns 28-30 -> last tenth (at least 3 columns when c >= 3),
            // shifted left by the horizontal offset in Figure 10(b).
            HwQuery::Q5 => {
                let width = (c / 10).max(3).min(c);
                let offset = self.shift.horizontal_projection_offset;
                let end = c.saturating_sub(offset).max(width);
                Projection::range_1based(clamp1(end - width + 1), clamp1(end))
            }
        }
    }

    /// The recency distribution used by `query` under the current vertical shift.
    pub fn key_distribution_for(&self, query: HwQuery) -> Option<KeyAgeDistribution> {
        match query {
            HwQuery::Q2a => {
                Some(KeyAgeDistribution::q2a().shifted(self.shift.vertical_read_offset))
            }
            HwQuery::Q2b => {
                Some(KeyAgeDistribution::q2b().shifted(self.shift.vertical_read_offset))
            }
            _ => None,
        }
    }

    /// Generates the load phase: `load_keys` inserts with sequential keys.
    pub fn generate_load(&self) -> OperationStream {
        let mut stream = OperationStream::new();
        for key in 0..self.load_keys {
            stream.push(Operation::Insert {
                key,
                base: key as i64 % 1000,
            });
        }
        stream
    }

    /// Generates the steady (measured) phase: inserts at a steady rate with
    /// point reads and updates spread uniformly among them, and the analytical
    /// queries (Q4/Q5) issued toward the end, as in Section 7.2.
    pub fn generate_steady<R: Rng>(&self, rng: &mut R) -> OperationStream {
        let mut stream = OperationStream::new();
        let start_key = self.load_keys;
        let inserts = self.steady_inserts.max(1);
        let updates_total = ((inserts as f64) * self.update_ratio).round() as u64;
        let q2a_dist = self.key_distribution_for(HwQuery::Q2a).unwrap();
        let q2b_dist = self.key_distribution_for(HwQuery::Q2b).unwrap();
        let q2a_proj = self.projection_for(HwQuery::Q2a);
        let q2b_proj = self.projection_for(HwQuery::Q2b);

        // Interleave: for every insert, possibly emit reads/updates so the
        // point operations are uniformly spread over the steady phase.
        let mut emitted_q2a = 0u64;
        let mut emitted_q2b = 0u64;
        let mut emitted_updates = 0u64;
        for i in 0..inserts {
            let key = start_key + i;
            stream.push(Operation::Insert {
                key,
                base: key as i64 % 1000,
            });
            let keys_so_far = key + 1;

            let target_q2a = self.q2a_count * (i + 1) / inserts;
            while emitted_q2a < target_q2a {
                let k = q2a_dist.sample_key(rng, keys_so_far);
                stream.push(Operation::PointRead {
                    key: k,
                    projection: q2a_proj.clone(),
                });
                emitted_q2a += 1;
            }
            let target_q2b = self.q2b_count * (i + 1) / inserts;
            while emitted_q2b < target_q2b {
                let k = q2b_dist.sample_key(rng, keys_so_far);
                stream.push(Operation::PointRead {
                    key: k,
                    projection: q2b_proj.clone(),
                });
                emitted_q2b += 1;
            }
            let target_updates = updates_total * (i + 1) / inserts;
            while emitted_updates < target_updates {
                // A recently inserted key gets one random column updated (Q3).
                let recent_window = (keys_so_far / 100).max(1);
                let k = keys_so_far - 1 - uniform_key(rng, recent_window);
                let col = rng.gen_range(0..self.num_columns);
                stream.push(Operation::Update {
                    key: k,
                    values: vec![(col, Value::Int(rng.gen_range(-1000..1000)))],
                });
                emitted_updates += 1;
            }
        }

        // Analytical queries toward the end of the run.
        let total = self.total_keys();
        for _ in 0..self.q4_count {
            let span = ((total as f64) * self.q4_selectivity) as u64;
            let lo = uniform_key(rng, total.saturating_sub(span).max(1));
            stream.push(Operation::Scan {
                lo,
                hi: lo + span.saturating_sub(1),
                projection: self.projection_for(HwQuery::Q4),
            });
        }
        for _ in 0..self.q5_count {
            let span = ((total as f64) * self.q5_selectivity) as u64;
            let lo = uniform_key(rng, total.saturating_sub(span).max(1));
            stream.push(Operation::Scan {
                lo,
                hi: lo + span.saturating_sub(1),
                projection: self.projection_for(HwQuery::Q5),
            });
        }
        stream
    }

    /// Renders Table 3 (the workload summary) as text.
    pub fn render_table3(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<6} {:<14} {:<28} {:<12}\n",
            "Query", "Projection", "Key (v) distribution", "Count"
        ));
        out.push_str(&format!(
            "{:<6} {:<14} {:<28} {:<12}\n",
            "Q1",
            format!("1-{}", self.num_columns),
            "uniform",
            self.steady_inserts
        ));
        out.push_str(&format!(
            "{:<6} {:<14} {:<28} {:<12}\n",
            "Q2a",
            format!("1-{}", self.num_columns),
            "normal, 0.98, 0.02",
            self.q2a_count
        ));
        out.push_str(&format!(
            "{:<6} {:<14} {:<28} {:<12}\n",
            "Q2b",
            format!("{}", self.projection_for(HwQuery::Q2b)),
            "normal, 0.85, 0.02",
            self.q2b_count
        ));
        out.push_str(&format!(
            "{:<6} {:<14} {:<28} {:<12}\n",
            "Q3",
            "any 1 column",
            "uniform, recent keys",
            ((self.steady_inserts as f64) * self.update_ratio).round() as u64
        ));
        out.push_str(&format!(
            "{:<6} {:<14} {:<28} {:<12}\n",
            "Q4",
            format!("{}", self.projection_for(HwQuery::Q4)),
            format!("uniform, {:.0}% of data", self.q4_selectivity * 100.0),
            self.q4_count
        ));
        out.push_str(&format!(
            "{:<6} {:<14} {:<28} {:<12}\n",
            "Q5",
            format!("{}", self.projection_for(HwQuery::Q5)),
            format!("uniform, {:.0}% of data", self.q5_selectivity * 100.0),
            self.q5_count
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OperationKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_projections_on_narrow_table() {
        let spec = HtapWorkloadSpec {
            num_columns: 30,
            ..HtapWorkloadSpec::scaled_down()
        };
        assert_eq!(spec.projection_for(HwQuery::Q2a).len(), 30);
        // Q2b: columns 16-30.
        let q2b = spec.projection_for(HwQuery::Q2b);
        assert_eq!(q2b.len(), 15);
        assert!(q2b.contains(15) && q2b.contains(29) && !q2b.contains(14));
        // Q4: columns 21-30.
        let q4 = spec.projection_for(HwQuery::Q4);
        assert_eq!(q4.len(), 10);
        assert!(q4.contains(20) && q4.contains(29));
        // Q5: columns 28-30.
        let q5 = spec.projection_for(HwQuery::Q5);
        assert_eq!(q5.len(), 3);
        assert!(q5.contains(27) && q5.contains(29));
    }

    #[test]
    fn horizontal_shift_moves_q5_projection_left() {
        let base = HtapWorkloadSpec {
            num_columns: 30,
            ..HtapWorkloadSpec::scaled_down()
        };
        let shifted = base.clone().with_shift(WorkloadShift {
            horizontal_projection_offset: 2,
            ..Default::default()
        });
        // Offset 2 -> columns 26-28 (paper's example).
        let q5 = shifted.projection_for(HwQuery::Q5);
        assert!(q5.contains(25) && q5.contains(27) && !q5.contains(29));
        // Offset 14 -> columns 14-16, spanning two of D-opt's CGs.
        let far = base.with_shift(WorkloadShift {
            horizontal_projection_offset: 14,
            ..Default::default()
        });
        let q5 = far.projection_for(HwQuery::Q5);
        assert!(q5.contains(13) && q5.contains(15));
    }

    #[test]
    fn vertical_shift_moves_read_distribution() {
        let spec = HtapWorkloadSpec::scaled_down().with_shift(WorkloadShift {
            vertical_read_offset: 0.1,
            ..Default::default()
        });
        let d = spec.key_distribution_for(HwQuery::Q2a).unwrap();
        assert!((d.mean - 0.88).abs() < 1e-12);
        let d = spec.key_distribution_for(HwQuery::Q2b).unwrap();
        assert!((d.mean - 0.75).abs() < 1e-12);
        assert!(spec.key_distribution_for(HwQuery::Q4).is_none());
    }

    #[test]
    fn generated_steady_phase_has_expected_mix() {
        let spec = HtapWorkloadSpec::tiny();
        let mut rng = StdRng::seed_from_u64(42);
        let load = spec.generate_load();
        assert_eq!(load.len() as u64, spec.load_keys);
        let steady = spec.generate_steady(&mut rng);
        let counts = steady.counts();
        let get = |k: OperationKind| counts.iter().find(|(kk, _)| *kk == k).unwrap().1;
        assert_eq!(get(OperationKind::Insert) as u64, spec.steady_inserts);
        assert_eq!(
            get(OperationKind::PointRead) as u64,
            spec.q2a_count + spec.q2b_count
        );
        assert_eq!(
            get(OperationKind::Scan) as u64,
            spec.q4_count + spec.q5_count
        );
        let expected_updates = ((spec.steady_inserts as f64) * spec.update_ratio).round() as usize;
        assert_eq!(get(OperationKind::Update), expected_updates);
        // Scans come at the end.
        let last = &steady.operations[steady.len() - 1];
        assert_eq!(last.kind(), OperationKind::Scan);
    }

    #[test]
    fn generated_keys_stay_in_range() {
        let spec = HtapWorkloadSpec::tiny();
        let mut rng = StdRng::seed_from_u64(3);
        let steady = spec.generate_steady(&mut rng);
        let max_key = spec.total_keys();
        for op in steady.iter() {
            match op {
                Operation::Insert { key, .. }
                | Operation::PointRead { key, .. }
                | Operation::Update { key, .. }
                | Operation::Delete { key } => assert!(*key < max_key),
                Operation::Scan { lo, hi, .. } => assert!(lo <= hi),
            }
        }
    }

    #[test]
    fn table3_renders() {
        let text = HtapWorkloadSpec::scaled_down().render_table3();
        assert!(text.contains("Q2a"));
        assert!(text.contains("normal, 0.85"));
        assert!(text.contains("Q5"));
    }
}
