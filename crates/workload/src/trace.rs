//! Converts an [`HtapWorkloadSpec`] into the per-level workload trace the
//! design advisor consumes (Section 6.1: profiling the workload per level).
//!
//! Point reads are attributed to levels by integrating their recency
//! distribution over each level's share of the key population (deeper levels
//! hold exponentially more — and older — keys). Scans touch every level with
//! a per-level selectivity proportional to the level's population. Updates
//! target recent keys and are attributed to the top levels.

use laser_advisor::WorkloadTrace;
use laser_cost_model::TreeParameters;

use crate::htap::{HtapWorkloadSpec, HwQuery};

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
fn normal_cdf(x: f64, mean: f64, std_dev: f64) -> f64 {
    if std_dev <= 0.0 {
        return if x < mean { 0.0 } else { 1.0 };
    }
    let z = (x - mean) / (std_dev * std::f64::consts::SQRT_2);
    0.5 * (1.0 + erf(z))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26, max error ~1.5e-7.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Returns, for each level `0..num_levels`, the fraction of the key
/// population residing at that level under size ratio `t` (level `i` holds
/// `T^i` times the Level-0 capacity; all levels full).
pub fn level_population_fractions(num_levels: usize, t: f64) -> Vec<f64> {
    let caps: Vec<f64> = (0..num_levels).map(|i| t.powi(i as i32)).collect();
    let total: f64 = caps.iter().sum();
    caps.iter().map(|c| c / total).collect()
}

/// Returns, for each level, the recency interval `[lo, hi)` it covers, with
/// `1.0` = newest data (Level-0) and `0.0` = oldest (last level).
pub fn level_recency_ranges(num_levels: usize, t: f64) -> Vec<(f64, f64)> {
    let fractions = level_population_fractions(num_levels, t);
    let mut ranges = Vec::with_capacity(num_levels);
    let mut hi = 1.0;
    for f in fractions {
        let lo = hi - f;
        ranges.push((lo.max(0.0), hi));
        hi = lo;
    }
    ranges
}

/// Builds a per-level [`WorkloadTrace`] for the advisor from the workload
/// specification and tree parameters.
pub fn build_workload_trace(
    spec: &HtapWorkloadSpec,
    params: &TreeParameters,
    num_levels: usize,
) -> WorkloadTrace {
    let t = params.size_ratio as f64;
    let ranges = level_recency_ranges(num_levels, t);
    let fractions = level_population_fractions(num_levels, t);
    let mut trace = WorkloadTrace::new(params.clone(), num_levels);

    let q2a = spec.key_distribution_for(HwQuery::Q2a).unwrap();
    let q2b = spec.key_distribution_for(HwQuery::Q2b).unwrap();
    let q2a_proj = spec.projection_for(HwQuery::Q2a);
    let q2b_proj = spec.projection_for(HwQuery::Q2b);
    let q4_proj = spec.projection_for(HwQuery::Q4);
    let q5_proj = spec.projection_for(HwQuery::Q5);
    let total_keys = spec.total_keys() as f64;
    let updates_total = ((spec.steady_inserts as f64) * spec.update_ratio).round() as u64;

    for (level, wl) in trace.per_level.iter_mut().enumerate() {
        let (lo, hi) = ranges[level];
        wl.inserts = spec.steady_inserts;
        // Point reads: integrate each recency distribution over the level's range.
        let share_a = normal_cdf(hi, q2a.mean, q2a.std_dev) - normal_cdf(lo, q2a.mean, q2a.std_dev);
        let share_b = normal_cdf(hi, q2b.mean, q2b.std_dev) - normal_cdf(lo, q2b.mean, q2b.std_dev);
        let reads_a = (spec.q2a_count as f64 * share_a).round() as u64;
        let reads_b = (spec.q2b_count as f64 * share_b).round() as u64;
        if reads_a > 0 {
            wl.point_reads.push((q2a_proj.clone(), reads_a));
        }
        if reads_b > 0 {
            wl.point_reads.push((q2b_proj.clone(), reads_b));
        }
        // Scans: every level is touched; s_i is proportional to the level population.
        let s4 = total_keys * spec.q4_selectivity * fractions[level];
        let s5 = total_keys * spec.q5_selectivity * fractions[level];
        if spec.q4_count > 0 {
            wl.scans.push((q4_proj.clone(), s4, spec.q4_count));
        }
        if spec.q5_count > 0 {
            wl.scans.push((q5_proj.clone(), s5, spec.q5_count));
        }
        // Updates target recent keys: attribute them to the recency range of
        // the newest 1% of keys.
        let update_share = (hi.min(1.0) - lo.max(0.99)).max(0.0) / 0.01;
        let updates_here = (updates_total as f64 * update_share).round() as u64;
        if updates_here > 0 {
            // Q3 updates one arbitrary column; model as a single-column projection.
            wl.updates
                .push((laser_core::Projection::of([0]), updates_here));
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_and_cdf_sanity() {
        assert!((erf(0.0)).abs() < 1e-9);
        assert!((erf(10.0) - 1.0).abs() < 1e-6);
        assert!((normal_cdf(0.5, 0.5, 0.1) - 0.5).abs() < 1e-6);
        assert!(normal_cdf(0.9, 0.5, 0.1) > 0.99);
        assert!(normal_cdf(0.1, 0.5, 0.1) < 0.01);
        // Degenerate sigma.
        assert_eq!(normal_cdf(0.4, 0.5, 0.0), 0.0);
        assert_eq!(normal_cdf(0.6, 0.5, 0.0), 1.0);
    }

    #[test]
    fn population_fractions_sum_to_one_and_grow() {
        let f = level_population_fractions(5, 2.0);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            f.windows(2).all(|w| w[1] > w[0]),
            "deeper levels hold more data"
        );
        let ranges = level_recency_ranges(5, 2.0);
        assert!((ranges[0].1 - 1.0).abs() < 1e-9);
        assert!(ranges[4].0.abs() < 1e-9);
        // Ranges are contiguous and descending.
        for w in ranges.windows(2) {
            assert!((w[0].0 - w[1].1).abs() < 1e-9);
        }
    }

    #[test]
    fn trace_attributes_reads_to_top_levels_and_scans_to_all() {
        let spec = HtapWorkloadSpec {
            num_columns: 30,
            ..HtapWorkloadSpec::scaled_down()
        };
        let params = TreeParameters {
            num_entries: spec.total_keys(),
            size_ratio: 2,
            entries_per_block: 32.0,
            level0_blocks: 16,
            num_columns: 30,
        };
        let trace = build_workload_trace(&spec, &params, 8);
        assert_eq!(trace.num_levels(), 8);
        // Q2a (mean 0.98) should land overwhelmingly in the top 3 levels,
        // which together hold ~1.7% of the data for T=2, L=8.
        let reads_top: u64 = trace.per_level[..3]
            .iter()
            .flat_map(|l| l.point_reads.iter().map(|(_, n)| *n))
            .sum();
        let reads_bottom: u64 = trace.per_level[6..]
            .iter()
            .flat_map(|l| l.point_reads.iter().map(|(_, n)| *n))
            .sum();
        assert!(reads_top > 0);
        assert!(
            reads_bottom < spec.q2a_count / 5,
            "deep levels should see few Q2a reads (got {reads_bottom})"
        );
        // Every level sees the scans, with deeper levels scanning more entries.
        for level in &trace.per_level {
            assert_eq!(level.scans.len(), 2);
        }
        let s_last = trace.per_level[7].scans[0].1;
        let s_first = trace.per_level[1].scans[0].1;
        assert!(s_last > s_first);
        // The last level dominates the scan volume.
        assert!(s_last > spec.total_keys() as f64 * spec.q4_selectivity * 0.4);
    }

    #[test]
    fn advisor_on_hw_trace_produces_lifecycle_design() {
        // End-to-end: the HW trace should produce a design that is
        // row-oriented near the top and finer near the bottom (Figure 9(b) shape).
        let spec = HtapWorkloadSpec {
            num_columns: 30,
            ..HtapWorkloadSpec::scaled_down()
        };
        let params = TreeParameters {
            num_entries: spec.total_keys(),
            size_ratio: 2,
            entries_per_block: 32.0,
            level0_blocks: 16,
            num_columns: 30,
        };
        let trace = build_workload_trace(&spec, &params, 8);
        let schema = laser_core::Schema::narrow();
        let design = laser_advisor::select_design(
            &schema,
            &trace,
            &laser_advisor::AdvisorOptions {
                num_levels: 8,
                design_name: "D-opt-repro".into(),
            },
        )
        .unwrap();
        let groups = design.groups_per_level();
        assert_eq!(groups[0], 1);
        assert!(
            groups[7] > groups[1],
            "deeper levels should be finer: {groups:?}"
        );
        assert!(
            groups.windows(2).all(|w| w[1] >= w[0]),
            "monotone refinement: {groups:?}"
        );
    }
}
