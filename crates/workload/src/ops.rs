//! Storage-engine operations: the physical form of the benchmark queries
//! after the SQL level has been stripped away (Section 3.1 of the paper).

use laser_core::{ColumnId, Projection, Value};

/// What kind of storage-engine operation this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperationKind {
    /// `insert(key, row)` — Q1.
    Insert,
    /// `read(key, Π)` — Q2.
    PointRead,
    /// `update(key, valueΠ)` — Q3.
    Update,
    /// `scan(lo, hi, Π)` — Q4/Q5.
    Scan,
    /// `delete(key)`.
    Delete,
}

/// One storage-engine operation with its arguments.
#[derive(Debug, Clone, PartialEq)]
pub enum Operation {
    /// Insert a full row: the engine synthesises column `ai = base + i`.
    Insert {
        /// Primary key.
        key: u64,
        /// Base value for the synthesised integer row.
        base: i64,
    },
    /// Projection-aware point read.
    PointRead {
        /// Primary key.
        key: u64,
        /// Projected columns.
        projection: Projection,
    },
    /// Partial-row update.
    Update {
        /// Primary key.
        key: u64,
        /// New values for a subset of columns.
        values: Vec<(ColumnId, Value)>,
    },
    /// Projection-aware range scan over `[lo, hi]`.
    Scan {
        /// Lower key bound (inclusive).
        lo: u64,
        /// Upper key bound (inclusive).
        hi: u64,
        /// Projected columns.
        projection: Projection,
    },
    /// Delete by key.
    Delete {
        /// Primary key.
        key: u64,
    },
}

impl Operation {
    /// The operation's kind.
    pub fn kind(&self) -> OperationKind {
        match self {
            Operation::Insert { .. } => OperationKind::Insert,
            Operation::PointRead { .. } => OperationKind::PointRead,
            Operation::Update { .. } => OperationKind::Update,
            Operation::Scan { .. } => OperationKind::Scan,
            Operation::Delete { .. } => OperationKind::Delete,
        }
    }

    /// The projection the operation touches (inserts and deletes return `None`).
    pub fn projection(&self) -> Option<Projection> {
        match self {
            Operation::PointRead { projection, .. } | Operation::Scan { projection, .. } => {
                Some(projection.clone())
            }
            Operation::Update { values, .. } => {
                Some(Projection::of(values.iter().map(|(c, _)| *c)))
            }
            _ => None,
        }
    }
}

/// An ordered stream of operations plus bookkeeping counters.
#[derive(Debug, Clone, Default)]
pub struct OperationStream {
    /// The operations in execution order.
    pub operations: Vec<Operation>,
}

impl OperationStream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operation.
    pub fn push(&mut self, op: Operation) {
        self.operations.push(op);
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.operations.len()
    }

    /// Returns true if the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }

    /// Counts operations by kind.
    pub fn counts(&self) -> Vec<(OperationKind, usize)> {
        use OperationKind::*;
        let mut counts = vec![
            (Insert, 0),
            (PointRead, 0),
            (Update, 0),
            (Scan, 0),
            (Delete, 0),
        ];
        for op in &self.operations {
            let kind = op.kind();
            if let Some(entry) = counts.iter_mut().find(|(k, _)| *k == kind) {
                entry.1 += 1;
            }
        }
        counts
    }

    /// Iterates the operations.
    pub fn iter(&self) -> impl Iterator<Item = &Operation> {
        self.operations.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_projections() {
        let insert = Operation::Insert { key: 1, base: 0 };
        let read = Operation::PointRead {
            key: 1,
            projection: Projection::of([0, 1]),
        };
        let update = Operation::Update {
            key: 1,
            values: vec![(3, Value::Int(9))],
        };
        let scan = Operation::Scan {
            lo: 0,
            hi: 10,
            projection: Projection::of([5]),
        };
        let delete = Operation::Delete { key: 1 };
        assert_eq!(insert.kind(), OperationKind::Insert);
        assert_eq!(read.kind(), OperationKind::PointRead);
        assert_eq!(update.kind(), OperationKind::Update);
        assert_eq!(scan.kind(), OperationKind::Scan);
        assert_eq!(delete.kind(), OperationKind::Delete);
        assert_eq!(insert.projection(), None);
        assert_eq!(read.projection(), Some(Projection::of([0, 1])));
        assert_eq!(update.projection(), Some(Projection::of([3])));
        assert_eq!(scan.projection(), Some(Projection::of([5])));
        assert_eq!(delete.projection(), None);
    }

    #[test]
    fn stream_counts() {
        let mut stream = OperationStream::new();
        assert!(stream.is_empty());
        stream.push(Operation::Insert { key: 1, base: 0 });
        stream.push(Operation::Insert { key: 2, base: 0 });
        stream.push(Operation::Scan {
            lo: 0,
            hi: 5,
            projection: Projection::of([0]),
        });
        assert_eq!(stream.len(), 3);
        let counts = stream.counts();
        assert!(counts.contains(&(OperationKind::Insert, 2)));
        assert!(counts.contains(&(OperationKind::Scan, 1)));
        assert!(counts.contains(&(OperationKind::Delete, 0)));
        assert_eq!(stream.iter().count(), 3);
    }
}
