//! # laser-advisor
//!
//! The design advisor of Section 6: given a workload trace (per-level
//! operation mix with projections) and the LSM-Tree structural parameters, it
//! selects a column-group configuration for every level that minimises the
//! per-level workload cost (Equation 9) subject to the CG containment
//! constraint.
//!
//! The algorithm follows the paper's three-step, Hyrise-inspired approach:
//!
//! 1. **Split** — generate primary partitions: the finest subsets of the
//!    level's columns such that every subset is either fully inside or fully
//!    outside every observed projection.
//! 2. **Merge / enumerate** — enumerate ways of merging the primary subsets
//!    into candidate column groups.
//! 3. **Select** — evaluate Equation 9 for every candidate layout and keep the
//!    cheapest one.
//!
//! The containment constraint is enforced exactly as in Section 6.3: when
//! optimising level *i*, the advisor solves one sub-problem per column group
//! of level *i−1*, restricted to that group's columns.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bridge;

pub use bridge::{trace_from_snapshot, tree_params_from_measured};

use laser_core::lsm_storage::{Error, Result};
use laser_core::{ColumnGroup, ColumnId, LayoutSpec, LevelLayout, Projection, Schema};
use laser_cost_model::{level_workload_cost, LevelWorkload, TreeParameters};

/// A workload trace: the structural parameters plus the per-level slice of
/// the workload (what §6.1 calls `wl_i`).
#[derive(Debug, Clone)]
pub struct WorkloadTrace {
    /// Structural parameters of the tree (`T`, `B`, `c`, ...).
    pub params: TreeParameters,
    /// `per_level[i]` is the workload observed at level `i`.
    pub per_level: Vec<LevelWorkload>,
}

impl WorkloadTrace {
    /// Creates a trace with empty per-level workloads.
    pub fn new(params: TreeParameters, num_levels: usize) -> Self {
        WorkloadTrace {
            params,
            per_level: vec![LevelWorkload::default(); num_levels],
        }
    }

    /// Number of levels covered by the trace.
    pub fn num_levels(&self) -> usize {
        self.per_level.len()
    }
}

/// Maximum number of primary subsets enumerated exhaustively per sub-problem.
/// Beyond this the advisor greedily merges the smallest subsets first, which
/// keeps the running time polynomial while preserving the projection
/// boundaries that matter most.
const MAX_PRIMARY_SUBSETS: usize = 8;

/// Configuration of the advisor.
#[derive(Debug, Clone)]
pub struct AdvisorOptions {
    /// Number of levels to lay out.
    pub num_levels: usize,
    /// Name given to the produced design.
    pub design_name: String,
}

impl Default for AdvisorOptions {
    fn default() -> Self {
        AdvisorOptions {
            num_levels: 8,
            design_name: "D-opt".into(),
        }
    }
}

/// Selects a per-level column-group design for `schema` under `trace`.
pub fn select_design(
    schema: &Schema,
    trace: &WorkloadTrace,
    options: &AdvisorOptions,
) -> Result<LayoutSpec> {
    if options.num_levels == 0 {
        return Err(Error::invalid("advisor needs at least one level"));
    }
    let mut layouts: Vec<LevelLayout> = Vec::with_capacity(options.num_levels);
    // Level 0 is always row-oriented.
    layouts.push(LevelLayout::row_oriented(schema));
    for level in 1..options.num_levels {
        let workload = trace.per_level.get(level).cloned().unwrap_or_default();
        let parent = layouts[level - 1].clone();
        let mut groups: Vec<ColumnGroup> = Vec::new();
        for parent_group in parent.groups() {
            let sub = optimise_subproblem(&trace.params, parent_group.columns(), &workload);
            groups.extend(sub);
        }
        layouts.push(LevelLayout::new(groups));
    }
    LayoutSpec::new(schema.clone(), layouts, options.design_name.clone())
}

/// Solves one sub-problem: partition `columns` (a single parent CG) into
/// column groups minimising Equation 9 for the level's workload restricted to
/// those columns.
fn optimise_subproblem(
    params: &TreeParameters,
    columns: &[ColumnId],
    workload: &LevelWorkload,
) -> Vec<ColumnGroup> {
    if columns.len() <= 1 {
        return vec![ColumnGroup::new(columns.to_vec())];
    }
    let restricted = restrict_workload(workload, columns);
    // Step 1: primary partitions from the observed projections.
    let mut subsets = primary_partitions(columns, &restricted);
    // Bound the enumeration.
    while subsets.len() > MAX_PRIMARY_SUBSETS {
        subsets.sort_by_key(|s| s.len());
        let a = subsets.remove(0);
        let mut b = subsets.remove(0);
        b.extend(a);
        b.sort_unstable();
        subsets.push(b);
    }
    // Steps 2+3: enumerate every way of merging the subsets; keep the cheapest.
    let mut best: Option<(f64, Vec<ColumnGroup>)> = None;
    for partition in set_partitions(subsets.len()) {
        let groups: Vec<ColumnGroup> = partition
            .iter()
            .map(|block| {
                let mut cols: Vec<ColumnId> = block
                    .iter()
                    .flat_map(|&i| subsets[i].iter().copied())
                    .collect();
                cols.sort_unstable();
                ColumnGroup::new(cols)
            })
            .collect();
        let layout = LevelLayout::new(groups.clone());
        let cost = level_workload_cost(params, &layout, &restricted);
        if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
            best = Some((cost, groups));
        }
    }
    best.map(|(_, g)| g)
        .unwrap_or_else(|| vec![ColumnGroup::new(columns.to_vec())])
}

/// Restricts every projection of `workload` to `columns`, dropping operations
/// whose projection does not touch them.
fn restrict_workload(workload: &LevelWorkload, columns: &[ColumnId]) -> LevelWorkload {
    let restrict = |p: &Projection| p.intersect(columns);
    LevelWorkload {
        inserts: workload.inserts,
        point_reads: workload
            .point_reads
            .iter()
            .filter_map(|(p, n)| {
                let r = restrict(p);
                (!r.is_empty()).then_some((r, *n))
            })
            .collect(),
        scans: workload
            .scans
            .iter()
            .filter_map(|(p, s, n)| {
                let r = restrict(p);
                (!r.is_empty()).then_some((r, *s, *n))
            })
            .collect(),
        updates: workload
            .updates
            .iter()
            .filter_map(|(p, n)| {
                let r = restrict(p);
                (!r.is_empty()).then_some((r, *n))
            })
            .collect(),
    }
}

/// Step 1 of §6.3: recursively split `columns` using every observed
/// projection, producing the finest subsets in which all columns are
/// co-accessed identically.
fn primary_partitions(columns: &[ColumnId], workload: &LevelWorkload) -> Vec<Vec<ColumnId>> {
    let mut subsets: Vec<Vec<ColumnId>> = vec![columns.to_vec()];
    let projections: Vec<&Projection> = workload
        .point_reads
        .iter()
        .map(|(p, _)| p)
        .chain(workload.scans.iter().map(|(p, _, _)| p))
        .chain(workload.updates.iter().map(|(p, _)| p))
        .collect();
    for proj in projections {
        let mut next = Vec::with_capacity(subsets.len() + 1);
        for subset in subsets {
            let (inside, outside): (Vec<ColumnId>, Vec<ColumnId>) =
                subset.iter().partition(|c| proj.contains(**c));
            if inside.is_empty() || outside.is_empty() {
                next.push(subset);
            } else {
                next.push(inside);
                next.push(outside);
            }
        }
        subsets = next;
    }
    subsets
}

/// Enumerates all set partitions of `{0, .., n-1}` (restricted-growth strings).
fn set_partitions(n: usize) -> Vec<Vec<Vec<usize>>> {
    fn recurse(i: usize, n: usize, blocks: &mut Vec<Vec<usize>>, out: &mut Vec<Vec<Vec<usize>>>) {
        if i == n {
            out.push(blocks.clone());
            return;
        }
        for b in 0..blocks.len() {
            blocks[b].push(i);
            recurse(i + 1, n, blocks, out);
            blocks[b].pop();
        }
        blocks.push(vec![i]);
        recurse(i + 1, n, blocks, out);
        blocks.pop();
    }
    let mut out = Vec::new();
    if n == 0 {
        return vec![vec![]];
    }
    let mut blocks = Vec::new();
    recurse(0, n, &mut blocks, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(c: usize) -> TreeParameters {
        TreeParameters {
            num_entries: 1_000_000,
            size_ratio: 2,
            entries_per_block: 40.0,
            level0_blocks: 100,
            num_columns: c,
        }
    }

    #[test]
    fn set_partition_counts_are_bell_numbers() {
        assert_eq!(set_partitions(0).len(), 1);
        assert_eq!(set_partitions(1).len(), 1);
        assert_eq!(set_partitions(2).len(), 2);
        assert_eq!(set_partitions(3).len(), 5);
        assert_eq!(set_partitions(4).len(), 15);
        assert_eq!(set_partitions(5).len(), 52);
    }

    #[test]
    fn primary_partitions_match_paper_example() {
        // §6.3 example: R = {a1..a4}, Π1={a2,a3,a4}, Π2={a1,a2}, Π3=all.
        let columns = vec![0, 1, 2, 3];
        let workload = LevelWorkload {
            point_reads: vec![
                (Projection::of([1, 2, 3]), 1),
                (Projection::of([0, 1]), 1),
                (Projection::of([0, 1, 2, 3]), 1),
            ],
            ..Default::default()
        };
        let mut subsets = primary_partitions(&columns, &workload);
        for s in &mut subsets {
            s.sort_unstable();
        }
        subsets.sort();
        assert_eq!(subsets, vec![vec![0], vec![1], vec![2, 3]]);
    }

    #[test]
    fn scan_heavy_level_gets_narrow_groups() {
        let schema = Schema::with_columns(6);
        let mut trace = WorkloadTrace::new(params(6), 3);
        // Level 2 is scanned on column a6 only, heavily.
        trace.per_level[2].scans = vec![(Projection::of([5]), 50_000.0, 100)];
        let design = select_design(
            &schema,
            &trace,
            &AdvisorOptions {
                num_levels: 3,
                design_name: "t".into(),
            },
        )
        .unwrap();
        let l2 = design.level(2);
        // Column a6 must be isolated from the rest.
        let g = l2.group_of(5).unwrap();
        assert_eq!(l2.groups()[g].size(), 1, "layout: {l2}");
    }

    #[test]
    fn point_read_heavy_level_stays_wide() {
        let schema = Schema::with_columns(6);
        let mut trace = WorkloadTrace::new(params(6), 3);
        trace.per_level[1].point_reads = vec![(Projection::all(&schema), 100_000)];
        let design = select_design(
            &schema,
            &trace,
            &AdvisorOptions {
                num_levels: 3,
                design_name: "t".into(),
            },
        )
        .unwrap();
        assert_eq!(
            design.level(1).num_groups(),
            1,
            "wide reads keep the level row-oriented"
        );
    }

    #[test]
    fn produced_designs_always_satisfy_containment() {
        let schema = Schema::with_columns(12);
        let mut trace = WorkloadTrace::new(params(12), 6);
        trace.per_level[1].point_reads = vec![(Projection::all(&schema), 1000)];
        trace.per_level[2].point_reads = vec![(Projection::range_1based(1, 6), 500)];
        trace.per_level[3].scans = vec![(Projection::range_1based(7, 9), 10_000.0, 20)];
        trace.per_level[4].scans = vec![(Projection::range_1based(10, 12), 50_000.0, 20)];
        trace.per_level[5].scans = vec![(Projection::range_1based(12, 12), 80_000.0, 10)];
        let design = select_design(
            &schema,
            &trace,
            &AdvisorOptions {
                num_levels: 6,
                design_name: "chk".into(),
            },
        )
        .unwrap();
        // LayoutSpec::new already validates, but double-check key properties.
        design.validate().unwrap();
        assert_eq!(design.num_levels(), 6);
        // Group counts never decrease going down (finer or equal layouts).
        let gs = design.groups_per_level();
        assert!(
            gs.windows(2).all(|w| w[1] >= w[0]),
            "groups per level: {gs:?}"
        );
    }

    #[test]
    fn empty_trace_yields_row_store() {
        let schema = Schema::with_columns(8);
        let trace = WorkloadTrace::new(params(8), 4);
        let design = select_design(
            &schema,
            &trace,
            &AdvisorOptions {
                num_levels: 4,
                design_name: "empty".into(),
            },
        )
        .unwrap();
        // Without any read/scan evidence, inserts dominate and the advisor
        // keeps every level row-oriented (fewest groups minimises Eq. 9).
        assert!(design.groups_per_level().iter().all(|&g| g == 1));
    }

    #[test]
    fn advisor_handles_wide_schema_quickly() {
        // §6.3 claims seconds for 100 columns and 8 levels; the bounded
        // enumeration must stay fast.
        let schema = Schema::wide();
        let mut trace = WorkloadTrace::new(params(100), 8);
        for level in 1..8 {
            trace.per_level[level].point_reads = vec![(Projection::range_1based(1, 50), 100)];
            trace.per_level[level].scans = vec![(Projection::range_1based(90, 100), 10_000.0, 10)];
        }
        let start = std::time::Instant::now();
        let design = select_design(
            &schema,
            &trace,
            &AdvisorOptions {
                num_levels: 8,
                design_name: "wide".into(),
            },
        )
        .unwrap();
        assert!(design.num_levels() == 8);
        assert!(
            start.elapsed().as_secs() < 10,
            "advisor too slow: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn restrict_workload_drops_foreign_projections() {
        let wl = LevelWorkload {
            inserts: 5,
            point_reads: vec![(Projection::of([0, 1]), 3), (Projection::of([5]), 2)],
            scans: vec![(Projection::of([5, 6]), 10.0, 1)],
            updates: vec![(Projection::of([1]), 4)],
        };
        let r = restrict_workload(&wl, &[0, 1, 2]);
        assert_eq!(r.inserts, 5);
        assert_eq!(r.point_reads.len(), 1);
        assert_eq!(r.scans.len(), 0);
        assert_eq!(r.updates.len(), 1);
    }
}
