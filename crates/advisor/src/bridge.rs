//! The telemetry → advisor bridge: converts a measured
//! [`WorkloadSnapshot`] (what a live shard's profiler observed) into the
//! [`WorkloadTrace`](crate::WorkloadTrace) the design advisor consumes, so
//! [`select_design`](crate::select_design) runs on real traffic instead of
//! hand-written traces.
//!
//! The conversion is lossless for everything the advisor looks at: per-level
//! insert/read/scan/update counts, the projection of every operation kind
//! (telemetry records 0-based column-id sets), scan selectivities, and the
//! measured tree parameters. Snapshots whose measurements fall outside the
//! cost model's domain (a size ratio below 2, zero columns) are rejected
//! rather than silently clamped — a scraper shipping garbage should hear
//! about it.

use laser_core::lsm_storage::{Error, Result};
use laser_core::Projection;
use laser_cost_model::{LevelWorkload, TreeParameters};
use telemetry::{LevelMix, MeasuredTreeParams, WorkloadSnapshot};

use crate::WorkloadTrace;

/// Converts measured tree parameters into the cost model's
/// [`TreeParameters`], validating the model's domain.
pub fn tree_params_from_measured(measured: &MeasuredTreeParams) -> Result<TreeParameters> {
    if measured.size_ratio < 2 {
        return Err(Error::invalid(format!(
            "measured size ratio {} is below the model's minimum of 2",
            measured.size_ratio
        )));
    }
    if measured.num_columns == 0 {
        return Err(Error::invalid("measured snapshot reports zero columns"));
    }
    if measured.entries_per_block == 0 {
        return Err(Error::invalid(
            "measured snapshot reports zero entries per block",
        ));
    }
    Ok(TreeParameters {
        // An empty tree still needs a non-degenerate model domain.
        num_entries: measured.num_entries.max(1),
        size_ratio: measured.size_ratio,
        entries_per_block: measured.entries_per_block as f64,
        level0_blocks: measured.level0_blocks.max(1),
        num_columns: measured.num_columns as usize,
    })
}

/// Converts one profiled per-level mix into the cost model's
/// [`LevelWorkload`].
fn level_workload_from_mix(mix: &LevelMix) -> LevelWorkload {
    let projection = |columns: &[u32]| Projection::of(columns.iter().map(|&c| c as usize));
    LevelWorkload {
        inserts: mix.inserts,
        point_reads: mix
            .point_reads
            .iter()
            .map(|(columns, count)| (projection(columns), *count))
            .collect(),
        scans: mix
            .scans
            .iter()
            .map(|(columns, entries, count)| {
                // The profiled tuple carries total entries over `count`
                // scans; the model wants the per-scan selectivity `s_i`.
                let selectivity = *entries as f64 / (*count).max(1) as f64;
                (projection(columns), selectivity, *count)
            })
            .collect(),
        updates: mix
            .updates
            .iter()
            .map(|(columns, count)| (projection(columns), *count))
            .collect(),
    }
}

/// Converts a serialized workload snapshot into an advisor-ready
/// [`WorkloadTrace`]. Fails if the measured parameters fall outside the
/// cost model's domain; an empty per-level mix yields an empty trace (the
/// advisor then keeps every level row-oriented).
pub fn trace_from_snapshot(snapshot: &WorkloadSnapshot) -> Result<WorkloadTrace> {
    let params = tree_params_from_measured(&snapshot.params)?;
    let per_level = snapshot
        .levels
        .iter()
        .map(level_workload_from_mix)
        .collect();
    Ok(WorkloadTrace { params, per_level })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{select_design, AdvisorOptions};
    use laser_core::Schema;

    fn measured() -> MeasuredTreeParams {
        MeasuredTreeParams {
            num_entries: 100_000,
            size_ratio: 4,
            entries_per_block: 32,
            level0_blocks: 64,
            num_columns: 6,
        }
    }

    fn snapshot_with_levels(levels: Vec<LevelMix>) -> WorkloadSnapshot {
        WorkloadSnapshot {
            shard: "0".into(),
            engine: "laser".into(),
            reads: 10,
            writes: 20,
            scans: 5,
            params: measured(),
            levels,
            projections: vec![(vec![0, 1], 10)],
        }
    }

    #[test]
    fn snapshot_round_trips_losslessly_into_a_trace() {
        let mix = LevelMix {
            inserts: 500,
            point_reads: vec![(vec![0, 1], 40), (vec![2], 2)],
            point_read_groups: 44,
            scans: vec![(vec![5], 9000, 3)],
            updates: vec![(vec![1], 7)],
        };
        let trace =
            trace_from_snapshot(&snapshot_with_levels(vec![LevelMix::default(), mix])).unwrap();
        assert_eq!(trace.params.size_ratio, 4);
        assert_eq!(trace.params.num_columns, 6);
        assert_eq!(trace.num_levels(), 2);
        let level = &trace.per_level[1];
        assert_eq!(level.inserts, 500);
        assert_eq!(level.point_reads[0], (Projection::of([0, 1]), 40));
        assert_eq!(level.updates, vec![(Projection::of([1]), 7)]);
        // 9000 entries over 3 scans ⇒ per-scan selectivity 3000.
        assert_eq!(level.scans[0].0, Projection::of([5]));
        assert!((level.scans[0].1 - 3000.0).abs() < 1e-9);
        assert_eq!(level.scans[0].2, 3);
    }

    #[test]
    fn converted_traces_are_accepted_by_the_advisor() {
        let mut levels = vec![LevelMix::default(); 3];
        levels[2].scans = vec![(vec![5], 150_000, 3)];
        let trace = trace_from_snapshot(&snapshot_with_levels(levels)).unwrap();
        let schema = Schema::with_columns(6);
        let design = select_design(
            &schema,
            &trace,
            &AdvisorOptions {
                num_levels: 3,
                design_name: "measured".into(),
            },
        )
        .unwrap();
        design.validate().unwrap();
        // The scan-only column must be isolated, as with a native trace.
        let level = design.level(2);
        let group = level.group_of(5).unwrap();
        assert_eq!(level.groups()[group].size(), 1, "layout: {level}");
    }

    #[test]
    fn out_of_domain_measurements_are_rejected() {
        let mut bad_ratio = snapshot_with_levels(Vec::new());
        bad_ratio.params.size_ratio = 1;
        assert!(trace_from_snapshot(&bad_ratio).is_err());
        let mut no_columns = snapshot_with_levels(Vec::new());
        no_columns.params.num_columns = 0;
        assert!(trace_from_snapshot(&no_columns).is_err());
        let mut no_blocks = snapshot_with_levels(Vec::new());
        no_blocks.params.entries_per_block = 0;
        assert!(trace_from_snapshot(&no_blocks).is_err());
    }

    #[test]
    fn empty_tree_measurements_stay_in_domain() {
        let mut empty = snapshot_with_levels(Vec::new());
        empty.params.num_entries = 0;
        empty.params.level0_blocks = 0;
        let trace = trace_from_snapshot(&empty).unwrap();
        assert_eq!(trace.params.num_entries, 1);
        assert_eq!(trace.params.level0_blocks, 1);
        assert_eq!(trace.num_levels(), 0);
    }
}
