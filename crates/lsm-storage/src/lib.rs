//! # lsm-storage
//!
//! A from-scratch Log-Structured Merge-Tree storage substrate, built as the
//! foundation for the LASER Real-Time LSM-Tree reproduction (Saxena et al.,
//! "Real-Time LSM-Trees for HTAP Workloads", ICDE 2023).
//!
//! The paper prototypes LASER inside RocksDB; this crate provides the same
//! structural ingredients RocksDB provides, so that the Real-Time LSM-Tree
//! (crate `laser-core`) can be built on top of them:
//!
//! * [`skiplist`] / [`memtable`] — the in-memory write buffer.
//! * [`wal`] — the write-ahead-log record format (per-file append/replay).
//! * [`wal_segment`] — the durability subsystem on top of it: a
//!   [`wal_segment::SegmentedWal`] that rotates one segment per memtable,
//!   group-commits concurrent writers into shared fsyncs, tracks live
//!   segments in the manifest and bounds recovery replay to the unflushed
//!   tail.
//! * [`block`] — data blocks with restart points and key prefix compression.
//! * [`bloom`] — per-SST bloom filters.
//! * [`sst`] — Sorted String Table files (data blocks + index block + bloom
//!   filter + footer).
//! * [`iterator`] — the `KvIterator` trait and the merge stack: a
//!   tournament-tree k-way merge, a lazy per-level concatenating iterator
//!   and the streaming newest-visible-version range iterator.
//! * [`manifest`] — version metadata (which file lives in which level).
//! * [`storage`] — pluggable backends: durable files, instrumented in-memory
//!   storage (counts 4 KiB-block I/O, matching the paper's cost model), and a
//!   fault-injecting wrapper for failure testing.
//! * [`cache`] — a sharded LRU cache of decoded data blocks, shared across
//!   all SSTs of an engine so hot reads skip the storage backend.
//! * [`maintenance`] — the background maintenance subsystem: a
//!   [`maintenance::JobScheduler`] worker pool running flush/compaction jobs
//!   off the write path, with write-side backpressure.
//! * [`db`] — [`db::LsmDb`], a plain key-value LSM engine with leveled
//!   compaction and both compaction priorities compared in Figure 2 of the
//!   paper (`ByCompensatedSize`, `OldestSmallestSeqFirst`).
//!
//! ## Quick example
//!
//! ```
//! use lsm_storage::{LsmDb, LsmOptions};
//!
//! let db = LsmDb::open_in_memory(LsmOptions::small_for_tests()).unwrap();
//! db.put(42, b"hello".to_vec()).unwrap();
//! assert_eq!(db.get(42).unwrap(), Some(b"hello".to_vec()));
//! db.delete(42).unwrap();
//! assert_eq!(db.get(42).unwrap(), None);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod block;
pub mod bloom;
pub mod cache;
pub mod checksum;
pub mod coding;
pub mod db;
pub mod degrade;
pub mod error;
pub mod hash;
pub mod iterator;
pub mod maintenance;
pub mod manifest;
pub mod memtable;
pub mod observability;
pub mod options;
pub mod retry;
pub mod shape;
pub mod skiplist;
pub mod sst;
pub mod storage;
pub mod types;
pub mod wal;
pub mod wal_segment;

pub use cache::{BlockCache, BlockCacheStats, ScopeId, ScopedCache};
pub use db::{CompactionStatsSnapshot, LsmDb};
pub use degrade::{DegradationController, DegradedInfo};
pub use error::{Error, Result};
pub use iterator::{
    naive_visible_scan, BoxedIterator, KvIterator, LevelConcatIterator, MergingIterator,
    NaiveMergingIterator, RangeIterator, VecIterator,
};
pub use maintenance::{
    attach_engine, attach_shard_engines, register_shard_engine, register_shard_engine_with,
    BackpressureConfig, BackpressureGate, EngineMaintenance, JobKind, JobScheduler,
    MaintainableEngine, MaintenanceHandle, SchedulerClient, Throttle,
};
pub use manifest::FileMeta;
pub use memtable::{FrozenMemTable, MemTable, MemTableRef};
pub use observability::{EngineTelemetry, WalErrorStage, WalTelemetry};
pub use options::{CompactionPriority, LsmOptions};
pub use retry::{retry_io, RetryPolicy};
pub use shape::{LevelShape, TreeShape};
pub use sst::{TableBuilder, TableHandle, TableOptions, TableProperties};
pub use storage::{
    FaultConfig, FaultHandle, FaultInjectingStorage, FaultPlan, FaultStorage, FileStorage, IoStats,
    IoStatsSnapshot, MemStorage, SharedSyncHandle, Storage, StorageRef,
};
pub use types::{InternalKey, SeqNo, UserKey, ValueKind, WriteBatch, WriteEntry, MAX_SEQNO};
pub use wal_segment::{
    SegmentedWal, WalRecovery, WalSegmentMeta, WalStatsSnapshot, WalSyncPolicy, WalTicket,
};
