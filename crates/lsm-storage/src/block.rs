//! Data block format with restart points and key prefix (delta) compression.
//!
//! A block is a sequence of key/value entries sorted by key. Keys are
//! delta-encoded against the previous key: each entry stores how many leading
//! bytes it shares with its predecessor plus the non-shared suffix. Every
//! `restart_interval` entries a full key is stored ("restart point"), and the
//! offsets of all restart points are appended at the end of the block so a
//! reader can binary-search them.
//!
//! This is the "delta-encoding the keys within each data block" optimisation
//! the paper reports for LASER's simulated column-group representation
//! (Section 4.1), and the same layout LevelDB/RocksDB use.
//!
//! Layout:
//! ```text
//! entry*  = [shared: varint][non_shared: varint][value_len: varint][key suffix][value]
//! trailer = [restart offset: u32]* [num_restarts: u32]
//! ```

use crate::coding::{get_u32, put_u32, put_varint32, Decoder};
use crate::error::{Error, Result};

/// Default number of entries between restart points.
pub const DEFAULT_RESTART_INTERVAL: usize = 16;

/// Builds a single data block.
#[derive(Debug)]
pub struct BlockBuilder {
    buf: Vec<u8>,
    restarts: Vec<u32>,
    restart_interval: usize,
    count_since_restart: usize,
    last_key: Vec<u8>,
    num_entries: usize,
    /// When false, keys are stored in full (no prefix compression); used by
    /// the storage-size experiment to quantify the benefit of delta encoding.
    prefix_compression: bool,
}

impl BlockBuilder {
    /// Creates a builder with the default restart interval.
    pub fn new() -> Self {
        Self::with_restart_interval(DEFAULT_RESTART_INTERVAL)
    }

    /// Creates a builder with a custom restart interval.
    pub fn with_restart_interval(restart_interval: usize) -> Self {
        BlockBuilder {
            buf: Vec::new(),
            restarts: vec![0],
            restart_interval: restart_interval.max(1),
            count_since_restart: 0,
            last_key: Vec::new(),
            num_entries: 0,
            prefix_compression: true,
        }
    }

    /// Disables key prefix compression (every key stored in full).
    pub fn set_prefix_compression(&mut self, enabled: bool) {
        self.prefix_compression = enabled;
    }

    /// Adds a key/value pair. Keys must be added in strictly increasing order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if self.num_entries > 0 && key <= self.last_key.as_slice() {
            return Err(Error::invalid(
                "keys must be added to a block in strictly increasing order",
            ));
        }
        let shared = if self.count_since_restart < self.restart_interval && self.prefix_compression
        {
            shared_prefix_len(&self.last_key, key)
        } else {
            self.restarts.push(self.buf.len() as u32);
            self.count_since_restart = 0;
            0
        };
        let non_shared = key.len() - shared;
        put_varint32(&mut self.buf, shared as u32);
        put_varint32(&mut self.buf, non_shared as u32);
        put_varint32(&mut self.buf, value.len() as u32);
        self.buf.extend_from_slice(&key[shared..]);
        self.buf.extend_from_slice(value);
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.num_entries += 1;
        self.count_since_restart += 1;
        Ok(())
    }

    /// Estimated size of the finished block in bytes.
    pub fn size_estimate(&self) -> usize {
        self.buf.len() + self.restarts.len() * 4 + 4
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> usize {
        self.num_entries
    }

    /// Returns true if no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.num_entries == 0
    }

    /// The last key added (empty slice if none).
    pub fn last_key(&self) -> &[u8] {
        &self.last_key
    }

    /// Finalizes the block, returning its encoded bytes and resetting the builder.
    pub fn finish(&mut self) -> Vec<u8> {
        let mut out = std::mem::take(&mut self.buf);
        for &r in &self.restarts {
            put_u32(&mut out, r);
        }
        put_u32(&mut out, self.restarts.len() as u32);
        self.restarts = vec![0];
        self.count_since_restart = 0;
        self.last_key.clear();
        self.num_entries = 0;
        out
    }
}

impl Default for BlockBuilder {
    fn default() -> Self {
        Self::new()
    }
}

fn shared_prefix_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// A decoded data block supporting iteration and seek.
#[derive(Debug, Clone)]
pub struct Block {
    data: Vec<u8>,
    restarts: Vec<u32>,
    entries_end: usize,
}

impl Block {
    /// Decodes a block produced by [`BlockBuilder::finish`].
    pub fn decode(data: Vec<u8>) -> Result<Self> {
        if data.len() < 4 {
            return Err(Error::corruption("block too short"));
        }
        let num_restarts = get_u32(&data[data.len() - 4..])? as usize;
        let restarts_size = num_restarts * 4 + 4;
        if data.len() < restarts_size {
            return Err(Error::corruption("block restart array larger than block"));
        }
        let entries_end = data.len() - restarts_size;
        let mut restarts = Vec::with_capacity(num_restarts);
        for i in 0..num_restarts {
            let off = get_u32(&data[entries_end + i * 4..])?;
            if off as usize > entries_end {
                return Err(Error::corruption("restart offset out of range"));
            }
            restarts.push(off);
        }
        Ok(Block {
            data,
            restarts,
            entries_end,
        })
    }

    /// Creates an iterator positioned before the first entry.
    pub fn iter(&self) -> BlockIter<'_> {
        BlockIter {
            block: self,
            offset: 0,
            key: Vec::new(),
            value_range: (0, 0),
            valid: false,
        }
    }

    /// Returns all entries as owned pairs (mainly for tests).
    pub fn entries(&self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        let mut it = self.iter();
        it.seek_to_first()?;
        while it.valid() {
            out.push((it.key().to_vec(), it.value().to_vec()));
            it.next_entry()?;
        }
        Ok(out)
    }

    /// Total encoded size of the block.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    fn restart_key(&self, restart_idx: usize) -> Result<(Vec<u8>, usize)> {
        // Returns the full key at a restart point and the offset just past the
        // entry header (i.e. ready to continue parsing that entry's value).
        let offset = self.restarts[restart_idx] as usize;
        let mut d = Decoder::new(&self.data[offset..self.entries_end]);
        let shared = d.varint32()? as usize;
        let non_shared = d.varint32()? as usize;
        let _value_len = d.varint32()? as usize;
        if shared != 0 {
            return Err(Error::corruption(
                "restart entry has non-zero shared prefix",
            ));
        }
        let key = d.bytes(non_shared)?.to_vec();
        Ok((key, offset))
    }
}

/// An iterator over the entries of a [`Block`].
#[derive(Debug, Clone)]
pub struct BlockIter<'a> {
    block: &'a Block,
    /// Offset of the *next* entry to parse.
    offset: usize,
    key: Vec<u8>,
    value_range: (usize, usize),
    valid: bool,
}

impl<'a> BlockIter<'a> {
    /// Positions the iterator at the first entry.
    pub fn seek_to_first(&mut self) -> Result<()> {
        self.offset = 0;
        self.key.clear();
        self.valid = false;
        self.next_entry()
    }

    /// Positions the iterator at the first entry whose key is >= `target`.
    pub fn seek(&mut self, target: &[u8]) -> Result<()> {
        // Binary search restart points for the last restart whose key <= target.
        let mut lo = 0usize;
        let mut hi = self.block.restarts.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            let (key, _) = self.block.restart_key(mid)?;
            if key.as_slice() <= target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let restart = lo.saturating_sub(1);
        self.offset = self.block.restarts[restart] as usize;
        self.key.clear();
        self.valid = false;
        // Linear scan from the restart point.
        loop {
            self.next_entry()?;
            if !self.valid || self.key.as_slice() >= target {
                return Ok(());
            }
        }
    }

    /// Advances to the next entry. After the last entry, `valid()` becomes false.
    pub fn next_entry(&mut self) -> Result<()> {
        if self.offset >= self.block.entries_end {
            self.valid = false;
            return Ok(());
        }
        let mut d = Decoder::new(&self.block.data[self.offset..self.block.entries_end]);
        let shared = d.varint32()? as usize;
        let non_shared = d.varint32()? as usize;
        let value_len = d.varint32()? as usize;
        if shared > self.key.len() {
            return Err(Error::corruption("shared prefix longer than previous key"));
        }
        self.key.truncate(shared);
        self.key.extend_from_slice(d.bytes(non_shared)?);
        let value_start = self.offset + d.position();
        let value_end = value_start + value_len;
        if value_end > self.block.entries_end {
            return Err(Error::corruption("block entry value overflows block"));
        }
        self.value_range = (value_start, value_end);
        self.offset = value_end;
        self.valid = true;
        Ok(())
    }

    /// Returns true while positioned on a valid entry.
    pub fn valid(&self) -> bool {
        self.valid
    }

    /// The current entry's key. Panics if not valid.
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.key
    }

    /// The current entry's value. Panics if not valid.
    pub fn value(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.block.data[self.value_range.0..self.value_range.1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(entries: &[(&[u8], &[u8])]) -> Block {
        let mut b = BlockBuilder::new();
        for (k, v) in entries {
            b.add(k, v).unwrap();
        }
        Block::decode(b.finish()).unwrap()
    }

    #[test]
    fn empty_block() {
        let mut b = BlockBuilder::new();
        assert!(b.is_empty());
        let block = Block::decode(b.finish()).unwrap();
        let mut it = block.iter();
        it.seek_to_first().unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn single_entry_roundtrip() {
        let block = build(&[(b"key1", b"value1")]);
        let entries = block.entries().unwrap();
        assert_eq!(entries, vec![(b"key1".to_vec(), b"value1".to_vec())]);
    }

    #[test]
    fn many_entries_roundtrip_and_order() {
        let keys: Vec<Vec<u8>> = (0..1000u64).map(|i| i.to_be_bytes().to_vec()).collect();
        let mut b = BlockBuilder::new();
        for k in &keys {
            b.add(k, &[k[7]; 5]).unwrap();
        }
        assert_eq!(b.num_entries(), 1000);
        let block = Block::decode(b.finish()).unwrap();
        let entries = block.entries().unwrap();
        assert_eq!(entries.len(), 1000);
        for (i, (k, v)) in entries.iter().enumerate() {
            assert_eq!(k, &keys[i]);
            assert_eq!(v, &vec![keys[i][7]; 5]);
        }
    }

    #[test]
    fn out_of_order_keys_rejected() {
        let mut b = BlockBuilder::new();
        b.add(b"b", b"1").unwrap();
        assert!(b.add(b"a", b"2").is_err());
        assert!(b.add(b"b", b"2").is_err(), "duplicate keys rejected");
    }

    #[test]
    fn seek_finds_exact_and_successor() {
        let keys: Vec<Vec<u8>> = (0..200u64)
            .map(|i| (i * 2).to_be_bytes().to_vec())
            .collect();
        let mut b = BlockBuilder::new();
        for k in &keys {
            b.add(k, b"v").unwrap();
        }
        let block = Block::decode(b.finish()).unwrap();
        let mut it = block.iter();
        // Exact key.
        it.seek(&100u64.to_be_bytes()).unwrap();
        assert!(it.valid());
        assert_eq!(it.key(), &100u64.to_be_bytes());
        // Missing key: lands on the successor.
        it.seek(&101u64.to_be_bytes()).unwrap();
        assert!(it.valid());
        assert_eq!(it.key(), &102u64.to_be_bytes());
        // Before the first key.
        it.seek(&0u64.to_be_bytes()).unwrap();
        assert_eq!(it.key(), &0u64.to_be_bytes());
        // Past the last key.
        it.seek(&1_000u64.to_be_bytes()).unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn prefix_compression_shrinks_blocks() {
        let keys: Vec<Vec<u8>> = (0..500u64).map(|i| i.to_be_bytes().to_vec()).collect();
        let mut compressed = BlockBuilder::new();
        let mut raw = BlockBuilder::new();
        raw.set_prefix_compression(false);
        for k in &keys {
            compressed.add(k, b"payload").unwrap();
            raw.add(k, b"payload").unwrap();
        }
        let c = compressed.finish();
        let r = raw.finish();
        assert!(
            c.len() < r.len(),
            "compressed {} !< raw {}",
            c.len(),
            r.len()
        );
        // Both decode to identical content.
        assert_eq!(
            Block::decode(c).unwrap().entries().unwrap(),
            Block::decode(r).unwrap().entries().unwrap()
        );
    }

    #[test]
    fn restart_interval_one_means_no_sharing() {
        let mut b = BlockBuilder::with_restart_interval(1);
        for i in 0..50u64 {
            b.add(&i.to_be_bytes(), b"x").unwrap();
        }
        let block = Block::decode(b.finish()).unwrap();
        assert_eq!(block.entries().unwrap().len(), 50);
        let mut it = block.iter();
        it.seek(&25u64.to_be_bytes()).unwrap();
        assert_eq!(it.key(), &25u64.to_be_bytes());
    }

    #[test]
    fn corrupt_blocks_rejected() {
        assert!(Block::decode(vec![]).is_err());
        assert!(Block::decode(vec![0, 0]).is_err());
        // Claims 100 restarts but block is tiny.
        let mut data = vec![0u8; 4];
        put_u32(&mut data, 100);
        assert!(Block::decode(data).is_err());
    }

    #[test]
    fn iterator_value_contents() {
        let block = build(&[(b"a", b"alpha"), (b"b", b""), (b"c", b"gamma")]);
        let mut it = block.iter();
        it.seek_to_first().unwrap();
        assert_eq!((it.key(), it.value()), (&b"a"[..], &b"alpha"[..]));
        it.next_entry().unwrap();
        assert_eq!((it.key(), it.value()), (&b"b"[..], &b""[..]));
        it.next_entry().unwrap();
        assert_eq!((it.key(), it.value()), (&b"c"[..], &b"gamma"[..]));
        it.next_entry().unwrap();
        assert!(!it.valid());
    }
}
