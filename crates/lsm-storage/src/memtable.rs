//! The in-memory write buffer (memtable).
//!
//! Writes go into the *mutable* memtable; once it reaches its configured size
//! it becomes *immutable* and is flushed to Level-0 by a background job while
//! a fresh mutable memtable absorbs new writes — exactly the two-skiplist
//! arrangement the paper describes in Section 2.1.

use parking_lot::RwLock;
use std::sync::Arc;

use crate::error::Result;
use crate::iterator::KvIterator;
use crate::skiplist::SkipList;
use crate::types::{InternalKey, SeqNo, UserKey, ValueKind, WriteEntry};

/// A single memtable: a skiplist of encoded internal keys.
#[derive(Debug)]
pub struct MemTable {
    list: RwLock<SkipList>,
    /// Smallest sequence number inserted (used to order flushed runs).
    min_seq: RwLock<Option<SeqNo>>,
    /// Largest sequence number inserted.
    max_seq: RwLock<Option<SeqNo>>,
}

impl Default for MemTable {
    fn default() -> Self {
        Self::new()
    }
}

impl MemTable {
    /// Creates an empty memtable.
    pub fn new() -> Self {
        MemTable {
            list: RwLock::new(SkipList::new()),
            min_seq: RwLock::new(None),
            max_seq: RwLock::new(None),
        }
    }

    /// Inserts a write tagged with sequence number `seq`.
    pub fn insert(&self, seq: SeqNo, entry: &WriteEntry) {
        let ik = InternalKey::new(entry.user_key, seq, entry.kind);
        self.list.write().insert(&ik.encode(), &entry.value);
        let mut min = self.min_seq.write();
        if min.is_none() || seq < min.unwrap() {
            *min = Some(seq);
        }
        let mut max = self.max_seq.write();
        if max.is_none() || seq > max.unwrap() {
            *max = Some(seq);
        }
    }

    /// Returns the newest version of `user_key` visible at `snapshot_seq`.
    /// The result includes tombstones so callers can stop searching older runs.
    pub fn get(&self, user_key: UserKey, snapshot_seq: SeqNo) -> Option<(InternalKey, Vec<u8>)> {
        let list = self.list.read();
        let mut iter = list.iter();
        iter.seek(&InternalKey::seek_to(user_key).encode());
        while iter.valid() {
            let ik = InternalKey::decode(iter.key()).ok()?;
            if ik.user_key != user_key {
                return None;
            }
            if ik.seq <= snapshot_seq {
                return Some((ik, iter.value().to_vec()));
            }
            iter.next_entry();
        }
        None
    }

    /// Returns *all* versions of `user_key` visible at `snapshot_seq`, newest
    /// first, stopping at (and including) the first `Full` or `Tombstone`
    /// record. Needed by LASER's partial-row reads, where several `Partial`
    /// records may have to be overlaid before a complete value is known.
    pub fn get_versions(
        &self,
        user_key: UserKey,
        snapshot_seq: SeqNo,
    ) -> Vec<(InternalKey, Vec<u8>)> {
        let list = self.list.read();
        let mut iter = list.iter();
        iter.seek(&InternalKey::seek_to(user_key).encode());
        let mut out = Vec::new();
        while iter.valid() {
            let Ok(ik) = InternalKey::decode(iter.key()) else {
                break;
            };
            if ik.user_key != user_key {
                break;
            }
            if ik.seq <= snapshot_seq {
                out.push((ik, iter.value().to_vec()));
                if ik.kind != ValueKind::Partial {
                    break;
                }
            }
            iter.next_entry();
        }
        out
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.list.read().len()
    }

    /// Returns true if empty.
    pub fn is_empty(&self) -> bool {
        self.list.read().is_empty()
    }

    /// Approximate memory footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.list.read().approximate_bytes()
    }

    /// Smallest sequence number inserted, if any.
    pub fn min_seq(&self) -> Option<SeqNo> {
        *self.min_seq.read()
    }

    /// Largest sequence number inserted, if any.
    pub fn max_seq(&self) -> Option<SeqNo> {
        *self.max_seq.read()
    }

    /// Produces a sorted snapshot of the contents for flushing or iteration.
    pub fn to_sorted_vec(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.list.read().to_sorted_vec()
    }

    /// Creates an owning iterator over a snapshot of the current contents.
    pub fn iter(&self) -> MemTableIterator {
        MemTableIterator::new(self.to_sorted_vec())
    }
}

/// Shared handle to a memtable.
pub type MemTableRef = Arc<MemTable>;

/// A frozen (immutable) memtable awaiting flush, paired with the WAL
/// segments that hold exactly its writes. When the memtable is durably
/// flushed to an SST, the segments are retired and their files deleted —
/// this per-memtable pairing is what bounds recovery replay to the unflushed
/// tail. A freeze on the write path pairs exactly one sealed segment; a
/// recovery that adopts sealed segments in place pairs every adopted segment
/// with the single memtable rebuilt from their records.
#[derive(Debug, Clone)]
pub struct FrozenMemTable {
    /// The frozen memtable (still readable until its flush installs).
    pub memtable: MemTableRef,
    /// Ids of the WAL segments sealed for this memtable's writes.
    pub wal_segments: Vec<u64>,
}

impl FrozenMemTable {
    /// Pairs `memtable` with the single `segment` sealed when it was frozen
    /// (the ordinary write-path case).
    pub fn sealed(memtable: MemTableRef, segment: u64) -> Self {
        FrozenMemTable {
            memtable,
            wal_segments: vec![segment],
        }
    }
}

/// An owning iterator over a snapshot of a memtable's contents.
#[derive(Debug, Clone)]
pub struct MemTableIterator {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    pos: usize,
    valid: bool,
}

impl MemTableIterator {
    fn new(entries: Vec<(Vec<u8>, Vec<u8>)>) -> Self {
        MemTableIterator {
            entries,
            pos: 0,
            valid: false,
        }
    }
}

impl KvIterator for MemTableIterator {
    fn seek_to_first(&mut self) -> Result<()> {
        self.pos = 0;
        self.valid = !self.entries.is_empty();
        Ok(())
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        self.pos = self.entries.partition_point(|(k, _)| k.as_slice() < target);
        self.valid = self.pos < self.entries.len();
        Ok(())
    }

    fn next(&mut self) -> Result<()> {
        if self.valid {
            self.pos += 1;
            self.valid = self.pos < self.entries.len();
        }
        Ok(())
    }

    fn valid(&self) -> bool {
        self.valid
    }

    fn key(&self) -> &[u8] {
        &self.entries[self.pos].0
    }

    fn value(&self) -> &[u8] {
        &self.entries[self.pos].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MAX_SEQNO;

    #[test]
    fn insert_and_get_latest() {
        let mt = MemTable::new();
        mt.insert(1, &WriteEntry::put(10, b"v1".to_vec()));
        mt.insert(2, &WriteEntry::put(10, b"v2".to_vec()));
        mt.insert(3, &WriteEntry::put(20, b"w1".to_vec()));
        assert_eq!(mt.len(), 3);
        let (ik, v) = mt.get(10, MAX_SEQNO).unwrap();
        assert_eq!((ik.seq, v.as_slice()), (2, &b"v2"[..]));
        let (ik, v) = mt.get(10, 1).unwrap();
        assert_eq!((ik.seq, v.as_slice()), (1, &b"v1"[..]));
        assert!(mt.get(10, 0).is_none());
        assert!(mt.get(99, MAX_SEQNO).is_none());
    }

    #[test]
    fn tombstones_are_visible() {
        let mt = MemTable::new();
        mt.insert(1, &WriteEntry::put(5, b"x".to_vec()));
        mt.insert(2, &WriteEntry::delete(5));
        let (ik, _) = mt.get(5, MAX_SEQNO).unwrap();
        assert_eq!(ik.kind, ValueKind::Tombstone);
        let (ik, _) = mt.get(5, 1).unwrap();
        assert_eq!(ik.kind, ValueKind::Full);
    }

    #[test]
    fn get_versions_collects_partials_until_full() {
        let mt = MemTable::new();
        mt.insert(1, &WriteEntry::put(7, b"full".to_vec()));
        mt.insert(2, &WriteEntry::partial(7, b"p1".to_vec()));
        mt.insert(3, &WriteEntry::partial(7, b"p2".to_vec()));
        let versions = mt.get_versions(7, MAX_SEQNO);
        let kinds: Vec<_> = versions.iter().map(|(ik, _)| (ik.seq, ik.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (3, ValueKind::Partial),
                (2, ValueKind::Partial),
                (1, ValueKind::Full)
            ]
        );
        // At an earlier snapshot only the full row is visible.
        let versions = mt.get_versions(7, 1);
        assert_eq!(versions.len(), 1);
        assert_eq!(versions[0].0.kind, ValueKind::Full);
    }

    #[test]
    fn seq_bounds_tracked() {
        let mt = MemTable::new();
        assert!(mt.min_seq().is_none());
        mt.insert(5, &WriteEntry::put(1, vec![]));
        mt.insert(3, &WriteEntry::put(2, vec![]));
        mt.insert(9, &WriteEntry::put(3, vec![]));
        assert_eq!(mt.min_seq(), Some(3));
        assert_eq!(mt.max_seq(), Some(9));
    }

    #[test]
    fn iterator_yields_internal_key_order() {
        let mt = MemTable::new();
        for (seq, key) in [(1u64, 30u64), (2, 10), (3, 20), (4, 10)] {
            mt.insert(seq, &WriteEntry::put(key, seq.to_le_bytes().to_vec()));
        }
        let mut it = mt.iter();
        it.seek_to_first().unwrap();
        let mut decoded = Vec::new();
        while it.valid() {
            let ik = InternalKey::decode(it.key()).unwrap();
            decoded.push((ik.user_key, ik.seq));
            it.next().unwrap();
        }
        // Key 10: seq 4 before seq 2 (newest first), then 20, then 30.
        assert_eq!(decoded, vec![(10, 4), (10, 2), (20, 3), (30, 1)]);
    }

    #[test]
    fn approximate_bytes_reflects_inserts() {
        let mt = MemTable::new();
        assert_eq!(mt.approximate_bytes(), 0);
        mt.insert(1, &WriteEntry::put(1, vec![0u8; 1000]));
        assert!(mt.approximate_bytes() >= 1000);
    }
}
