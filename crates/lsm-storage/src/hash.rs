//! Non-cryptographic hash functions used by the bloom filter and block cache.
//!
//! We implement FNV-1a and a 64-bit mix-based hash (inspired by
//! MurmurHash3's finalizer) in-repo to avoid external dependencies.

/// The FNV-1a 64-bit offset basis: the starting state of an incremental
/// [`fnv1a_64_fold`] chain.
pub const FNV1A_64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `data` into a running FNV-1a state, so large inputs can be hashed
/// incrementally (chunk by chunk) without concatenating them into one
/// buffer: `fnv1a_64(ab) == fnv1a_64_fold(fnv1a_64_fold(OFFSET, a), b)`.
pub fn fnv1a_64_fold(mut hash: u64, data: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// 64-bit FNV-1a hash.
pub fn fnv1a_64(data: &[u8]) -> u64 {
    fnv1a_64_fold(FNV1A_64_OFFSET, data)
}

/// A fast 64-bit hash with a seed, built from 8-byte chunks and a strong
/// avalanche finalizer. Suitable for bloom filters and hash partitioning.
pub fn hash64_seeded(data: &[u8], seed: u64) -> u64 {
    let mut h = seed ^ (data.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(chunk);
        let k = u64::from_le_bytes(buf);
        h ^= mix64(k);
        h = h.rotate_left(27).wrapping_mul(0x5851_F42D_4C95_7F2D);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h ^= mix64(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
    }
    mix64(h)
}

/// Unseeded convenience wrapper around [`hash64_seeded`].
pub fn hash64(data: &[u8]) -> u64 {
    hash64_seeded(data, 0x1234_5678_9ABC_DEF0)
}

/// splitmix64-style avalanche mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fnv_known_values() {
        // FNV-1a 64-bit of the empty string is the offset basis.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        // "a" -> well-known FNV-1a vector.
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash64(b"key-1"), hash64(b"key-1"));
        assert_eq!(hash64_seeded(b"key-1", 7), hash64_seeded(b"key-1", 7));
        assert_ne!(hash64_seeded(b"key-1", 7), hash64_seeded(b"key-1", 8));
    }

    #[test]
    fn different_inputs_rarely_collide() {
        let mut seen = HashSet::new();
        for i in 0u64..10_000 {
            let h = hash64(&i.to_le_bytes());
            seen.insert(h);
        }
        // With a 64-bit hash, 10k inputs should essentially never collide.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn avalanche_on_single_bit() {
        let a = hash64(b"abcdefgh");
        let b = hash64(b"abcdefgi");
        let differing = (a ^ b).count_ones();
        // Expect roughly half the bits to flip; require at least a quarter.
        assert!(
            differing >= 16,
            "weak avalanche: only {differing} bits differ"
        );
    }

    #[test]
    fn short_and_empty_inputs() {
        assert_ne!(hash64(b""), hash64(b"\0"));
        assert_ne!(hash64(b"\0"), hash64(b"\0\0"));
        assert_ne!(hash64(b"1234567"), hash64(b"12345678"));
    }
}
