//! Error types shared across the storage substrate.

use std::fmt;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the storage substrate.
#[derive(Debug)]
pub enum Error {
    /// An underlying I/O error from the operating system.
    Io(std::io::Error),
    /// A block, SST, WAL record or manifest failed its checksum or structural validation.
    Corruption(String),
    /// The caller asked for something that does not exist (file, key range, level).
    NotFound(String),
    /// The caller passed arguments that violate an invariant (e.g. unsorted keys to a builder).
    InvalidArgument(String),
    /// The storage backend refused the operation (e.g. injected fault, read-only backend).
    StorageFault(String),
    /// The engine has entered read-only degradation after a persistent
    /// storage fault: writes are rejected, reads keep serving.
    ReadOnly(String),
    /// The engine is shutting down or has been closed.
    Closed,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Corruption(msg) => write!(f, "corruption: {msg}"),
            Error::NotFound(msg) => write!(f, "not found: {msg}"),
            Error::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Error::StorageFault(msg) => write!(f, "storage fault: {msg}"),
            Error::ReadOnly(msg) => write!(f, "read-only: {msg}"),
            Error::Closed => write!(f, "engine closed"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// Convenience constructor for corruption errors.
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Convenience constructor for invalid-argument errors.
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }

    /// Convenience constructor for not-found errors.
    pub fn not_found(msg: impl Into<String>) -> Self {
        Error::NotFound(msg.into())
    }

    /// Returns true if this error is a corruption error.
    pub fn is_corruption(&self) -> bool {
        matches!(self, Error::Corruption(_))
    }

    /// Returns true if this error is a not-found error.
    pub fn is_not_found(&self) -> bool {
        matches!(self, Error::NotFound(_))
    }

    /// Convenience constructor for read-only rejections.
    pub fn read_only(msg: impl Into<String>) -> Self {
        Error::ReadOnly(msg.into())
    }

    /// Returns true if this error is a read-only rejection.
    pub fn is_read_only(&self) -> bool {
        matches!(self, Error::ReadOnly(_))
    }

    /// Returns true if this error is worth retrying with backoff: a
    /// transient I/O condition (interrupted, timed out, would-block) or a
    /// storage fault explicitly tagged transient by the fault layer.
    ///
    /// ENOSPC is deliberately *not* transient — retrying cannot free space;
    /// the engine degrades to read-only instead and recovers when a later
    /// probe succeeds.
    pub fn is_transient(&self) -> bool {
        match self {
            Error::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            Error::StorageFault(msg) => msg.contains("transient"),
            _ => false,
        }
    }

    /// Returns true if this error is the device running out of space
    /// (ENOSPC), the canonical persistent-but-recoverable fault.
    pub fn is_disk_full(&self) -> bool {
        match self {
            // 28 == ENOSPC on every POSIX platform we target.
            Error::Io(e) => e.raw_os_error() == Some(28),
            Error::StorageFault(msg) => msg.contains("no space"),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = Error::corruption("bad block");
        assert_eq!(e.to_string(), "corruption: bad block");
        let e = Error::not_found("key 42");
        assert_eq!(e.to_string(), "not found: key 42");
        let e = Error::invalid("keys out of order");
        assert_eq!(e.to_string(), "invalid argument: keys out of order");
        assert_eq!(Error::Closed.to_string(), "engine closed");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn predicates() {
        assert!(Error::corruption("x").is_corruption());
        assert!(!Error::corruption("x").is_not_found());
        assert!(Error::not_found("x").is_not_found());
        assert!(Error::read_only("degraded").is_read_only());
        assert_eq!(
            Error::read_only("degraded").to_string(),
            "read-only: degraded"
        );
    }

    #[test]
    fn fault_classification() {
        let transient: Error = std::io::Error::new(std::io::ErrorKind::Interrupted, "eintr").into();
        assert!(transient.is_transient());
        assert!(!transient.is_disk_full());
        assert!(Error::StorageFault("injected transient sync failure".into()).is_transient());
        let enospc: Error = std::io::Error::from_raw_os_error(28).into();
        assert!(enospc.is_disk_full());
        assert!(!enospc.is_transient());
        let persistent: Error = std::io::Error::other("media error").into();
        assert!(!persistent.is_transient());
        assert!(!persistent.is_disk_full());
    }
}
