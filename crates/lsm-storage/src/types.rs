//! Core key types of the LSM-Tree.
//!
//! User keys are 64-bit unsigned integers (the paper's benchmark uses an
//! 8-byte integer primary key `a0`). Internally every write is tagged with a
//! monotonically increasing sequence number and a [`ValueKind`], forming an
//! [`InternalKey`]. Internal keys are ordered by `(user_key asc, seq desc)`,
//! so the newest version of a key sorts first, and the byte encoding is
//! designed so that comparing encoded keys as raw bytes yields the same order.

use crate::error::{Error, Result};

/// A user-visible key. The HTAP benchmark uses 64-bit integer primary keys.
pub type UserKey = u64;

/// Monotonically increasing sequence number assigned to every write.
pub type SeqNo = u64;

/// The maximum sequence number; used when seeking for "the newest visible
/// version" of a key.
pub const MAX_SEQNO: SeqNo = u64::MAX >> 8;

/// Length in bytes of an encoded [`InternalKey`].
pub const INTERNAL_KEY_LEN: usize = 17;

/// What kind of record an internal key refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum ValueKind {
    /// A complete row (or complete column-group fragment): all columns present.
    Full = 0,
    /// A partial row carrying only a subset of columns (LASER column updates,
    /// Section 4.2 of the paper). Merged with older versions at compaction.
    Partial = 1,
    /// A deletion marker. Older versions of the key are discarded when the
    /// tombstone reaches the last level.
    Tombstone = 2,
}

impl ValueKind {
    /// Decodes a kind from its byte tag.
    pub fn from_u8(v: u8) -> Result<Self> {
        match v {
            0 => Ok(ValueKind::Full),
            1 => Ok(ValueKind::Partial),
            2 => Ok(ValueKind::Tombstone),
            other => Err(Error::corruption(format!("invalid value kind {other}"))),
        }
    }

    /// Returns true for tombstones.
    pub fn is_tombstone(self) -> bool {
        matches!(self, ValueKind::Tombstone)
    }
}

/// An internal key: user key + sequence number + kind.
///
/// Ordering: ascending by user key, then *descending* by sequence number,
/// then ascending by kind tag. This places the newest version of each user
/// key first within a sorted run, which is what point lookups and merging
/// iterators rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InternalKey {
    /// The user key.
    pub user_key: UserKey,
    /// The sequence number of the write.
    pub seq: SeqNo,
    /// The record kind.
    pub kind: ValueKind,
}

impl InternalKey {
    /// Creates a new internal key.
    pub fn new(user_key: UserKey, seq: SeqNo, kind: ValueKind) -> Self {
        InternalKey {
            user_key,
            seq,
            kind,
        }
    }

    /// The largest internal key for `user_key` (sorts before all real versions
    /// of that user key). Useful as a seek target for "newest version of key".
    pub fn seek_to(user_key: UserKey) -> Self {
        InternalKey::new(user_key, MAX_SEQNO, ValueKind::Full)
    }

    /// Encodes the key so that lexicographic byte comparison of encodings
    /// equals [`Ord`] on the struct: big-endian user key, then the bitwise
    /// complement of the sequence number (so larger sequence numbers sort
    /// first), then the kind tag.
    pub fn encode(&self) -> [u8; INTERNAL_KEY_LEN] {
        let mut out = [0u8; INTERNAL_KEY_LEN];
        out[..8].copy_from_slice(&self.user_key.to_be_bytes());
        out[8..16].copy_from_slice(&(!self.seq).to_be_bytes());
        out[16] = self.kind as u8;
        out
    }

    /// Appends the encoding to a buffer.
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        dst.extend_from_slice(&self.encode());
    }

    /// Decodes an internal key from its 17-byte encoding.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() != INTERNAL_KEY_LEN {
            return Err(Error::corruption(format!(
                "internal key must be {INTERNAL_KEY_LEN} bytes, got {}",
                buf.len()
            )));
        }
        let mut k = [0u8; 8];
        k.copy_from_slice(&buf[..8]);
        let mut s = [0u8; 8];
        s.copy_from_slice(&buf[8..16]);
        Ok(InternalKey {
            user_key: u64::from_be_bytes(k),
            seq: !u64::from_be_bytes(s),
            kind: ValueKind::from_u8(buf[16])?,
        })
    }

    /// Extracts just the user key from an encoded internal key.
    pub fn decode_user_key(buf: &[u8]) -> Result<UserKey> {
        if buf.len() < 8 {
            return Err(Error::corruption("encoded internal key too short"));
        }
        let mut k = [0u8; 8];
        k.copy_from_slice(&buf[..8]);
        Ok(u64::from_be_bytes(k))
    }
}

impl PartialOrd for InternalKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InternalKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.user_key
            .cmp(&other.user_key)
            .then(other.seq.cmp(&self.seq))
            .then((self.kind as u8).cmp(&(other.kind as u8)))
    }
}

/// A single write operation destined for the memtable / WAL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteEntry {
    /// The user key being written.
    pub user_key: UserKey,
    /// Record kind (full row, partial row, or tombstone).
    pub kind: ValueKind,
    /// Encoded value payload (empty for tombstones).
    pub value: Vec<u8>,
}

impl WriteEntry {
    /// Creates a full-row write.
    pub fn put(user_key: UserKey, value: Vec<u8>) -> Self {
        WriteEntry {
            user_key,
            kind: ValueKind::Full,
            value,
        }
    }

    /// Creates a partial-row write (column update).
    pub fn partial(user_key: UserKey, value: Vec<u8>) -> Self {
        WriteEntry {
            user_key,
            kind: ValueKind::Partial,
            value,
        }
    }

    /// Creates a tombstone.
    pub fn delete(user_key: UserKey) -> Self {
        WriteEntry {
            user_key,
            kind: ValueKind::Tombstone,
            value: Vec::new(),
        }
    }
}

/// A batch of writes applied atomically with consecutive sequence numbers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    entries: Vec<WriteEntry>,
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a full-row put.
    pub fn put(&mut self, user_key: UserKey, value: Vec<u8>) -> &mut Self {
        self.entries.push(WriteEntry::put(user_key, value));
        self
    }

    /// Appends a partial-row put.
    pub fn put_partial(&mut self, user_key: UserKey, value: Vec<u8>) -> &mut Self {
        self.entries.push(WriteEntry::partial(user_key, value));
        self
    }

    /// Appends a tombstone.
    pub fn delete(&mut self, user_key: UserKey) -> &mut Self {
        self.entries.push(WriteEntry::delete(user_key));
        self
    }

    /// Appends an already-constructed entry, preserving its kind. Used when
    /// splitting one logical batch into per-shard sub-batches.
    pub fn push(&mut self, entry: WriteEntry) -> &mut Self {
        self.entries.push(entry);
        self
    }

    /// Number of entries in the batch.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the batch contains no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &WriteEntry> {
        self.entries.iter()
    }

    /// Consumes the batch, yielding its entries.
    pub fn into_entries(self) -> Vec<WriteEntry> {
        self.entries
    }

    /// Approximate in-memory/encoded size of the batch in bytes.
    pub fn approximate_size(&self) -> usize {
        self.entries
            .iter()
            .map(|e| INTERNAL_KEY_LEN + e.value.len() + 8)
            .sum()
    }

    /// Serializes the batch for the WAL: entry count then each entry as
    /// `(kind, key, value-length-prefixed)`.
    pub fn encode(&self) -> Vec<u8> {
        use crate::coding::{put_length_prefixed, put_u64, put_varint64};
        let mut out = Vec::with_capacity(self.approximate_size() + 8);
        put_varint64(&mut out, self.entries.len() as u64);
        for e in &self.entries {
            out.push(e.kind as u8);
            put_u64(&mut out, e.user_key);
            put_length_prefixed(&mut out, &e.value);
        }
        out
    }

    /// Decodes a batch previously produced by [`WriteBatch::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self> {
        use crate::coding::Decoder;
        let mut d = Decoder::new(buf);
        let count = d.varint64()? as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let kind = ValueKind::from_u8(d.u8()?)?;
            let user_key = d.u64()?;
            let value = d.length_prefixed()?.to_vec();
            entries.push(WriteEntry {
                user_key,
                kind,
                value,
            });
        }
        if !d.is_empty() {
            return Err(Error::corruption("trailing bytes after write batch"));
        }
        Ok(WriteBatch { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_key_ordering() {
        let a = InternalKey::new(1, 5, ValueKind::Full);
        let b = InternalKey::new(1, 9, ValueKind::Full);
        let c = InternalKey::new(2, 1, ValueKind::Full);
        // Same user key: higher seq sorts first.
        assert!(b < a);
        // Different user keys: numeric order.
        assert!(a < c);
        assert!(b < c);
    }

    #[test]
    fn encoding_preserves_ordering() {
        let keys = vec![
            InternalKey::new(0, 0, ValueKind::Full),
            InternalKey::new(1, 100, ValueKind::Full),
            InternalKey::new(1, 50, ValueKind::Partial),
            InternalKey::new(1, 50, ValueKind::Tombstone),
            InternalKey::new(1, 1, ValueKind::Full),
            InternalKey::new(u64::MAX, MAX_SEQNO, ValueKind::Full),
        ];
        let mut sorted_structs = keys.clone();
        sorted_structs.sort();
        let mut sorted_bytes: Vec<_> = keys.iter().map(|k| k.encode().to_vec()).collect();
        sorted_bytes.sort();
        let decoded: Vec<_> = sorted_bytes
            .iter()
            .map(|b| InternalKey::decode(b).unwrap())
            .collect();
        assert_eq!(decoded, sorted_structs);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for key in [0u64, 1, 42, u64::MAX] {
            for seq in [0u64, 1, MAX_SEQNO] {
                for kind in [ValueKind::Full, ValueKind::Partial, ValueKind::Tombstone] {
                    let ik = InternalKey::new(key, seq, kind);
                    let enc = ik.encode();
                    assert_eq!(InternalKey::decode(&enc).unwrap(), ik);
                    assert_eq!(InternalKey::decode_user_key(&enc).unwrap(), key);
                }
            }
        }
    }

    #[test]
    fn seek_to_sorts_before_all_versions() {
        let seek = InternalKey::seek_to(10);
        let newest = InternalKey::new(10, MAX_SEQNO - 1, ValueKind::Full);
        let old = InternalKey::new(10, 3, ValueKind::Full);
        assert!(seek < newest);
        assert!(seek < old);
        assert!(seek > InternalKey::new(9, 0, ValueKind::Full));
    }

    #[test]
    fn invalid_kind_rejected() {
        assert!(ValueKind::from_u8(3).is_err());
        let mut enc = InternalKey::new(1, 1, ValueKind::Full).encode();
        enc[16] = 99;
        assert!(InternalKey::decode(&enc).is_err());
    }

    #[test]
    fn write_batch_roundtrip() {
        let mut b = WriteBatch::new();
        b.put(1, vec![1, 2, 3]);
        b.put_partial(2, vec![4]);
        b.delete(3);
        assert_eq!(b.len(), 3);
        let enc = b.encode();
        let dec = WriteBatch::decode(&enc).unwrap();
        assert_eq!(dec, b);
    }

    #[test]
    fn write_batch_rejects_trailing_garbage() {
        let mut b = WriteBatch::new();
        b.put(1, vec![1]);
        let mut enc = b.encode();
        enc.push(0xFF);
        assert!(WriteBatch::decode(&enc).is_err());
    }

    #[test]
    fn write_batch_empty() {
        let b = WriteBatch::new();
        assert!(b.is_empty());
        let dec = WriteBatch::decode(&b.encode()).unwrap();
        assert!(dec.is_empty());
    }
}
