//! Observability glue: pre-resolved telemetry handles that engines and the
//! WAL update on their hot paths.
//!
//! An engine attaches to a shared [`Telemetry`] hub once (post-open, like
//! the maintenance handle) and keeps an [`EngineTelemetry`] of already-
//! registered metric handles, so instrumented code never touches the
//! registry lock: a disabled hub costs one `Option` branch, an enabled one
//! a relaxed atomic update.

use std::sync::Arc;
use std::time::Duration;

use telemetry::trace::{self, TraceContext, TraceDecision, TraceKind};
use telemetry::{Counter, EventKind, Gauge, Histogram, Telemetry};

/// How one engine-level operation participates in tracing. Produced by
/// [`EngineTelemetry::begin_op`], consumed by [`EngineTelemetry::end_op`];
/// holds the thread-attach (or suppression) guard for the op's extent so
/// inner spans and retro-spans land on the right trace.
pub enum OpTrace {
    /// This op won the sample: spans record into `ctx`.
    Sampled {
        /// The trace being recorded.
        ctx: TraceContext,
        /// Keeps the trace attached to the current thread.
        _attach: trace::AttachGuard,
    },
    /// Unsampled at this layer: inner layers are suppressed, and the op is
    /// force-sampled at the end if it crossed its slow threshold.
    Unsampled(trace::AttachGuard),
    /// An enclosing layer (the shard router) owns the op.
    Nested,
}

impl OpTrace {
    /// Claims `kind` for tracing at the calling layer (unless an enclosing
    /// layer already did) and attaches the sampled trace — or a suppression
    /// marker — to the current thread.
    pub fn begin(hub: &Telemetry, kind: TraceKind) -> OpTrace {
        match hub.tracer().decide(kind) {
            TraceDecision::Sampled(ctx) => {
                let attach = ctx.attach();
                OpTrace::Sampled {
                    ctx,
                    _attach: attach,
                }
            }
            TraceDecision::Unsampled => OpTrace::Unsampled(trace::suppress()),
            TraceDecision::Nested => OpTrace::Nested,
        }
    }

    /// A clone of the sampled trace context, for fan-out legs that run on
    /// other threads (`None` for unsampled/nested ops).
    pub fn context(&self) -> Option<TraceContext> {
        match self {
            OpTrace::Sampled { ctx, .. } => Some(ctx.clone()),
            _ => None,
        }
    }

    /// Completes the tracing side of one op: finishes a sampled trace, or
    /// retroactively force-samples an unsampled one that crossed its
    /// slow-op threshold. `elapsed` is the op's measured duration.
    pub fn end(
        self,
        hub: &Telemetry,
        kind: TraceKind,
        elapsed: Duration,
        annotations: &[(&'static str, u64)],
    ) {
        match self {
            OpTrace::Sampled { ctx, _attach } => {
                drop(_attach);
                for (key, value) in annotations {
                    ctx.annotate(key, *value);
                }
                hub.tracer().finish(ctx);
            }
            OpTrace::Unsampled(guard) => {
                drop(guard);
                hub.tracer().maybe_force_sample(kind, elapsed, annotations);
            }
            OpTrace::Nested => {}
        }
    }
}

/// Metric handles shared by both engines (`LsmDb` and the Real-Time engine),
/// registered under `engine` / `shard` labels.
#[derive(Debug)]
pub struct EngineTelemetry {
    hub: Arc<Telemetry>,
    label: String,
    /// Point-get latency (nanoseconds).
    pub get_ns: Histogram,
    /// Range-scan latency (nanoseconds).
    pub scan_ns: Histogram,
    /// Batch-commit latency including WAL group-commit durability and any
    /// backpressure wait (nanoseconds).
    pub commit_ns: Histogram,
    /// Backpressure stall wait durations (nanoseconds).
    pub stall_ns: Histogram,
    /// Bytes read by compactions.
    pub compaction_bytes_read: Counter,
    /// Bytes written by compactions.
    pub compaction_bytes_written: Counter,
    /// Bytes written by memtable flushes.
    pub flush_bytes: Counter,
    /// 1 while the engine is in read-only degradation, 0 otherwise.
    pub degraded: Gauge,
    /// Transient I/O errors retried on the SST/manifest path.
    pub io_retries: Counter,
}

impl EngineTelemetry {
    /// Registers the engine metric set under
    /// `{engine="<engine>", shard="<shard>"}` labels. Re-registering the
    /// same labels (e.g. after a shard reopen) resumes the existing series.
    pub fn register(hub: &Arc<Telemetry>, engine: &'static str, shard: &str) -> Self {
        let labels = [("engine", engine), ("shard", shard)];
        let registry = hub.registry();
        EngineTelemetry {
            hub: Arc::clone(hub),
            label: shard.to_string(),
            get_ns: registry.histogram("laser_get_latency_ns", &labels),
            scan_ns: registry.histogram("laser_scan_latency_ns", &labels),
            commit_ns: registry.histogram("laser_commit_latency_ns", &labels),
            stall_ns: registry.histogram("laser_stall_wait_ns", &labels),
            compaction_bytes_read: registry.counter("laser_compaction_bytes_read_total", &labels),
            compaction_bytes_written: registry
                .counter("laser_compaction_bytes_written_total", &labels),
            flush_bytes: registry.counter("laser_flush_bytes_total", &labels),
            degraded: registry.gauge("laser_degraded", &labels),
            io_retries: registry.counter("laser_io_retries_total", &labels),
        }
    }

    /// The hub this engine is attached to.
    pub fn hub(&self) -> &Arc<Telemetry> {
        &self.hub
    }

    /// The shard label events are recorded under.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Claims `kind` for tracing at this layer (unless the shard router
    /// above already did) and attaches the sampled trace — or a suppression
    /// marker — to the current thread.
    pub fn begin_op(&self, kind: TraceKind) -> OpTrace {
        OpTrace::begin(&self.hub, kind)
    }

    /// Completes the tracing side of one op: finishes a sampled trace, or
    /// retroactively force-samples an unsampled one that crossed its
    /// slow-op threshold. `elapsed` is the op's measured duration.
    pub fn end_op(
        &self,
        kind: TraceKind,
        op: OpTrace,
        elapsed: Duration,
        annotations: &[(&'static str, u64)],
    ) {
        op.end(&self.hub, kind, elapsed, annotations);
    }

    /// Logs a completed memtable flush.
    pub fn flush_event(&self, duration: Duration, bytes_written: u64, entries: u64) {
        self.flush_bytes.add(bytes_written);
        self.hub.record_event(
            EventKind::Flush,
            &self.label,
            duration,
            0,
            bytes_written,
            entries,
        );
    }

    /// Logs a completed compaction.
    pub fn compaction_event(
        &self,
        duration: Duration,
        bytes_read: u64,
        bytes_written: u64,
        entries: u64,
    ) {
        self.compaction_bytes_read.add(bytes_read);
        self.compaction_bytes_written.add(bytes_written);
        self.hub.record_event(
            EventKind::Compaction,
            &self.label,
            duration,
            bytes_read,
            bytes_written,
            entries,
        );
    }

    /// Logs a completed trim pass (`entries` counts the entries dropped).
    pub fn trim_event(
        &self,
        duration: Duration,
        bytes_read: u64,
        bytes_written: u64,
        entries: u64,
    ) {
        self.hub.record_event(
            EventKind::Trim,
            &self.label,
            duration,
            bytes_read,
            bytes_written,
            entries,
        );
    }

    /// Records a backpressure stall wait: histogram, event log, and — when
    /// the stalled write is being traced — a retro-span attributing the
    /// wait inside the commit trace.
    pub fn stall_event(&self, duration: Duration) {
        self.stall_ns.record(duration.as_nanos() as u64);
        trace::retro_span("stall_wait", duration, &[]);
        self.hub
            .record_event(EventKind::Stall, &self.label, duration, 0, 0, 0);
    }

    /// Logs the engine entering read-only degradation and raises the
    /// `laser_degraded` gauge.
    pub fn degraded_event(&self) {
        self.degraded.set(1);
        self.hub
            .record_event(EventKind::Degraded, &self.label, Duration::ZERO, 0, 0, 0);
    }

    /// Logs the engine recovering full writability and clears the gauge.
    /// `duration` is how long the engine was degraded.
    pub fn recovered_event(&self, duration: Duration) {
        self.degraded.set(0);
        self.hub
            .record_event(EventKind::Recovered, &self.label, duration, 0, 0, 0);
    }

    /// Counts one retried transient I/O error on the SST/manifest path.
    pub fn io_retry(&self) {
        self.io_retries.add(1);
    }
}

/// Which stage of the WAL write path an error surfaced on. Used as the
/// `stage` label of `laser_wal_errors_total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalErrorStage {
    /// A record append to the active segment failed.
    Append,
    /// A group-commit fsync (shared handle or under-lock) failed.
    Fsync,
    /// Sealing/creating a segment during rotation failed.
    Rotation,
    /// The in-place rotation-recovery attempt itself failed.
    Recovery,
    /// The best-effort sync on Drop failed.
    Drop,
}

impl WalErrorStage {
    /// Stable label value.
    pub fn as_str(self) -> &'static str {
        match self {
            WalErrorStage::Append => "append",
            WalErrorStage::Fsync => "fsync",
            WalErrorStage::Rotation => "rotation",
            WalErrorStage::Recovery => "recovery",
            WalErrorStage::Drop => "drop",
        }
    }
}

/// Telemetry handles of one segmented WAL.
#[derive(Debug)]
pub struct WalTelemetry {
    hub: Arc<Telemetry>,
    label: String,
    /// Group-commit fsync latency (nanoseconds).
    pub fsync_ns: Histogram,
    /// `laser_wal_errors_total` per [`WalErrorStage`], indexed in stage
    /// declaration order (append, fsync, rotation, recovery, drop).
    errors: [Counter; 5],
}

impl WalTelemetry {
    /// Registers the WAL metric set under a `{shard="<shard>"}` label.
    pub fn register(hub: &Arc<Telemetry>, shard: &str) -> Self {
        let registry = hub.registry();
        let error_counter = |stage: WalErrorStage| {
            registry.counter(
                "laser_wal_errors_total",
                &[("shard", shard), ("stage", stage.as_str())],
            )
        };
        WalTelemetry {
            hub: Arc::clone(hub),
            label: shard.to_string(),
            fsync_ns: registry.histogram("laser_wal_fsync_latency_ns", &[("shard", shard)]),
            errors: [
                error_counter(WalErrorStage::Append),
                error_counter(WalErrorStage::Fsync),
                error_counter(WalErrorStage::Rotation),
                error_counter(WalErrorStage::Recovery),
                error_counter(WalErrorStage::Drop),
            ],
        }
    }

    /// Counts one WAL write-path error and logs a `WalSyncError` event.
    /// Every append/fsync/rotation/recovery/drop error funnels through here
    /// — nothing is swallowed silently.
    pub fn error_event(&self, stage: WalErrorStage) {
        let idx = match stage {
            WalErrorStage::Append => 0,
            WalErrorStage::Fsync => 1,
            WalErrorStage::Rotation => 2,
            WalErrorStage::Recovery => 3,
            WalErrorStage::Drop => 4,
        };
        self.errors[idx].add(1);
        self.hub.record_event(
            EventKind::WalSyncError,
            &self.label,
            Duration::ZERO,
            0,
            0,
            0,
        );
    }

    /// Records one group-commit fsync. Every fsync lands in the latency
    /// histogram (and, when the committing write is traced, as a retro-span
    /// inside its WAL-durability span); only fsyncs crossing the slow-op
    /// threshold are logged as events (the log would otherwise be all
    /// fsyncs).
    pub fn record_fsync(&self, duration: Duration) {
        self.fsync_ns.record(duration.as_nanos() as u64);
        trace::retro_span("wal_fsync", duration, &[]);
        if duration >= self.hub.thresholds().wal_fsync {
            self.hub
                .record_event(EventKind::WalFsync, &self.label, duration, 0, 0, 0);
        }
    }

    /// Logs a WAL segment rotation (`sealed_bytes` is the size of the
    /// segment just sealed), attributing it to any active trace.
    pub fn rotation_event(&self, duration: Duration, sealed_bytes: u64) {
        trace::retro_span("wal_rotate", duration, &[("sealed_bytes", sealed_bytes)]);
        self.hub.record_event(
            EventKind::WalRotation,
            &self.label,
            duration,
            0,
            sealed_bytes,
            0,
        );
    }
}
