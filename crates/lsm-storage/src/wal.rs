//! Write-ahead log record format: the writer/reader for one log file.
//!
//! Every write batch is appended to the WAL before it is applied to the
//! memtable, so the memtable can be rebuilt after a crash (Section 2.1 of the
//! paper: "New records are inserted into the most recent skiplist and into a
//! write-ahead-log for durability").
//!
//! This module owns the *record format* and per-file append/replay; the
//! engines drive it through [`crate::wal_segment::SegmentedWal`], which
//! manages the segment lifecycle (one segment per memtable, group commit,
//! manifest-tracked GC) on top of these primitives.
//!
//! Record format:
//! ```text
//! [length: u32][masked crc32 of payload: u32][seq: u64][payload = encoded WriteBatch]
//! ```
//! Recovery stops at the first corrupt or truncated record (standard
//! behaviour: a torn tail write after a crash must not prevent recovery of the
//! prefix).

use std::sync::Arc;

use crate::checksum::{crc32, mask, unmask};
use crate::coding::{get_u32, get_u64, put_u32, put_u64};
use crate::error::{Error, Result};
use crate::storage::{SharedSyncHandle, StorageRef, WritableFile};
use crate::types::{SeqNo, WriteBatch};

/// Header bytes per record: length (4) + crc (4) + starting sequence number (8).
const RECORD_HEADER: usize = 16;

/// Appends write batches to a log file.
pub struct WalWriter {
    file: Box<dyn WritableFile>,
    /// Whether to call `sync` after every append (durability vs throughput).
    sync_on_write: bool,
    records_written: u64,
}

impl WalWriter {
    /// Creates a new WAL file with the given name.
    pub fn create(storage: &StorageRef, name: &str, sync_on_write: bool) -> Result<Self> {
        Ok(WalWriter {
            file: storage.create(name)?,
            sync_on_write,
            records_written: 0,
        })
    }

    /// Appends a batch whose first entry has sequence number `start_seq`.
    pub fn append(&mut self, start_seq: SeqNo, batch: &WriteBatch) -> Result<()> {
        let payload = batch.encode();
        let mut header = Vec::with_capacity(RECORD_HEADER);
        put_u32(&mut header, payload.len() as u32);
        put_u32(&mut header, mask(crc32(&payload)));
        put_u64(&mut header, start_seq);
        self.file.append(&header)?;
        self.file.append(&payload)?;
        if self.sync_on_write {
            self.file.sync()?;
        }
        self.records_written += 1;
        Ok(())
    }

    /// Forces buffered records to durable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync()
    }

    /// A shareable fsync handle for the log file, if the backend supports
    /// one. Lets a group-commit leader sync this log while other writers
    /// keep appending (under the log's own locking).
    pub fn shared_sync_handle(&self) -> Option<Arc<dyn SharedSyncHandle>> {
        self.file.shared_sync_handle()
    }

    /// Number of records appended.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Current log size in bytes.
    pub fn size(&self) -> u64 {
        self.file.len()
    }
}

/// A recovered WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Sequence number of the first entry in the batch.
    pub start_seq: SeqNo,
    /// The recovered batch.
    pub batch: WriteBatch,
}

impl WalRecord {
    /// Sequence number of the last entry in the batch (equal to `start_seq`
    /// for a single-entry batch; `start_seq` itself if the batch is somehow
    /// empty).
    pub fn end_seq(&self) -> SeqNo {
        self.start_seq + (self.batch.len() as SeqNo).saturating_sub(1)
    }
}

/// Encodes one record exactly as [`WalWriter::append`] lays it out on disk:
/// `[len][masked crc][start_seq][payload]`. Replication ships live-tail
/// records in this form so both ends share one codec with the log itself.
pub fn encode_record(start_seq: SeqNo, batch: &WriteBatch) -> Vec<u8> {
    let payload = batch.encode();
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, mask(crc32(&payload)));
    put_u64(&mut out, start_seq);
    out.extend_from_slice(&payload);
    out
}

/// Decodes every intact record of a WAL byte image.
///
/// Returns the records decoded before the first corruption/truncation, a
/// flag saying whether the image ended cleanly (`true`) or a damaged tail
/// was discarded (`false`), and the byte length of the intact prefix.
pub fn decode_records(data: &[u8]) -> Result<(Vec<WalRecord>, bool, u64)> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos + RECORD_HEADER <= data.len() {
        let len = get_u32(&data[pos..])? as usize;
        let stored_crc = unmask(get_u32(&data[pos + 4..])?);
        let start_seq = get_u64(&data[pos + 8..])?;
        let payload_start = pos + RECORD_HEADER;
        let payload_end = payload_start + len;
        if payload_end > data.len() {
            // Torn tail write.
            return Ok((records, false, pos as u64));
        }
        let payload = &data[payload_start..payload_end];
        if crc32(payload) != stored_crc {
            return Ok((records, false, pos as u64));
        }
        match WriteBatch::decode(payload) {
            Ok(batch) => records.push(WalRecord { start_seq, batch }),
            Err(_) => return Ok((records, false, pos as u64)),
        }
        pos = payload_end;
    }
    let clean = pos == data.len();
    Ok((records, clean, pos as u64))
}

/// Reads back every intact record of a WAL file.
///
/// Returns the records recovered before the first corruption/truncation and a
/// flag saying whether the log ended cleanly (`true`) or a damaged tail was
/// discarded (`false`).
pub fn recover(storage: &StorageRef, name: &str) -> Result<(Vec<WalRecord>, bool)> {
    let (records, clean, _) = recover_detailed(storage, name)?;
    Ok((records, clean))
}

/// Like [`recover`], but also reports the byte length of the intact prefix
/// (what an in-place segment adoption would keep).
pub fn recover_detailed(storage: &StorageRef, name: &str) -> Result<(Vec<WalRecord>, bool, u64)> {
    let file = storage.open(name)?;
    let data = file.read_all()?;
    decode_records(&data)
}

/// Deletes a WAL file, ignoring not-found errors.
pub fn remove(storage: &StorageRef, name: &str) -> Result<()> {
    match storage.delete(name) {
        Ok(()) => Ok(()),
        Err(Error::NotFound(_)) => Ok(()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn batch(keys: &[u64]) -> WriteBatch {
        let mut b = WriteBatch::new();
        for &k in keys {
            b.put(k, k.to_le_bytes().to_vec());
        }
        b
    }

    #[test]
    fn write_and_recover() {
        let storage: StorageRef = MemStorage::new_ref();
        {
            let mut w = WalWriter::create(&storage, "wal-1", true).unwrap();
            w.append(1, &batch(&[1, 2, 3])).unwrap();
            w.append(4, &batch(&[4])).unwrap();
            w.append(5, &batch(&[5, 6])).unwrap();
            assert_eq!(w.records_written(), 3);
            assert!(w.size() > 0);
        }
        let (records, clean) = recover(&storage, "wal-1").unwrap();
        assert!(clean);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].start_seq, 1);
        assert_eq!(records[0].batch.len(), 3);
        assert_eq!(records[2].start_seq, 5);
        assert_eq!(records[2].batch.len(), 2);
    }

    #[test]
    fn empty_wal_recovers_cleanly() {
        let storage: StorageRef = MemStorage::new_ref();
        WalWriter::create(&storage, "wal-empty", false).unwrap();
        let (records, clean) = recover(&storage, "wal-empty").unwrap();
        assert!(records.is_empty());
        assert!(clean);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let storage: StorageRef = MemStorage::new_ref();
        {
            let mut w = WalWriter::create(&storage, "wal-torn", true).unwrap();
            w.append(1, &batch(&[1])).unwrap();
            w.append(2, &batch(&[2])).unwrap();
        }
        // Truncate the file mid-way through the second record.
        let full = storage.open("wal-torn").unwrap().read_all().unwrap();
        let mut f = storage.create("wal-torn").unwrap();
        f.append(&full[..full.len() - 3]).unwrap();
        let (records, clean) = recover(&storage, "wal-torn").unwrap();
        assert_eq!(records.len(), 1, "only the intact prefix is recovered");
        assert!(!clean);
    }

    #[test]
    fn corrupt_payload_is_discarded() {
        let storage: StorageRef = MemStorage::new_ref();
        {
            let mut w = WalWriter::create(&storage, "wal-corrupt", true).unwrap();
            w.append(1, &batch(&[1])).unwrap();
            w.append(2, &batch(&[2])).unwrap();
        }
        let mut full = storage.open("wal-corrupt").unwrap().read_all().unwrap();
        // Flip a byte in the payload of the first record.
        let idx = RECORD_HEADER + 1;
        full[idx] ^= 0xFF;
        let mut f = storage.create("wal-corrupt").unwrap();
        f.append(&full).unwrap();
        let (records, clean) = recover(&storage, "wal-corrupt").unwrap();
        assert!(
            records.is_empty(),
            "corruption in the first record discards everything after it"
        );
        assert!(!clean);
    }

    #[test]
    fn remove_is_idempotent() {
        let storage: StorageRef = MemStorage::new_ref();
        WalWriter::create(&storage, "wal-x", false).unwrap();
        remove(&storage, "wal-x").unwrap();
        remove(&storage, "wal-x").unwrap();
        assert!(!storage.exists("wal-x"));
    }

    #[test]
    fn batches_preserve_kinds() {
        let storage: StorageRef = MemStorage::new_ref();
        {
            let mut w = WalWriter::create(&storage, "wal-kinds", true).unwrap();
            let mut b = WriteBatch::new();
            b.put(1, vec![1]);
            b.put_partial(2, vec![2]);
            b.delete(3);
            w.append(10, &b).unwrap();
        }
        let (records, _) = recover(&storage, "wal-kinds").unwrap();
        let entries: Vec<_> = records[0].batch.iter().cloned().collect();
        use crate::types::ValueKind::*;
        assert_eq!(entries[0].kind, Full);
        assert_eq!(entries[1].kind, Partial);
        assert_eq!(entries[2].kind, Tombstone);
    }
}
