//! Low-level binary coding helpers: fixed-width integers and varints.
//!
//! All fixed-width encodings are little-endian except where a big-endian
//! encoding is needed to make lexicographic byte order agree with numeric
//! order (internal keys, see [`crate::types`]).

use crate::error::{Error, Result};

/// Appends a `u32` in little-endian order.
pub fn put_u32(dst: &mut Vec<u8>, v: u32) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(dst: &mut Vec<u8>, v: u64) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Reads a `u32` (little-endian) from the start of `src`.
pub fn get_u32(src: &[u8]) -> Result<u32> {
    if src.len() < 4 {
        return Err(Error::corruption("buffer too short for u32"));
    }
    Ok(u32::from_le_bytes([src[0], src[1], src[2], src[3]]))
}

/// Reads a `u64` (little-endian) from the start of `src`.
pub fn get_u64(src: &[u8]) -> Result<u64> {
    if src.len() < 8 {
        return Err(Error::corruption("buffer too short for u64"));
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&src[..8]);
    Ok(u64::from_le_bytes(b))
}

/// Appends a `u64` as a LEB128-style varint (1..=10 bytes).
pub fn put_varint64(dst: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        dst.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    dst.push(v as u8);
}

/// Appends a `u32` as a varint.
pub fn put_varint32(dst: &mut Vec<u8>, v: u32) {
    put_varint64(dst, v as u64);
}

/// Decodes a varint `u64` from `src`, returning the value and the number of
/// bytes consumed.
pub fn get_varint64(src: &[u8]) -> Result<(u64, usize)> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in src.iter().enumerate() {
        if shift > 63 {
            return Err(Error::corruption("varint64 overflow"));
        }
        result |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok((result, i + 1));
        }
        shift += 7;
    }
    Err(Error::corruption("truncated varint64"))
}

/// Decodes a varint `u32` from `src`, returning the value and bytes consumed.
pub fn get_varint32(src: &[u8]) -> Result<(u32, usize)> {
    let (v, n) = get_varint64(src)?;
    if v > u32::MAX as u64 {
        return Err(Error::corruption("varint32 overflow"));
    }
    Ok((v as u32, n))
}

/// Appends a length-prefixed byte slice (varint length followed by the bytes).
pub fn put_length_prefixed(dst: &mut Vec<u8>, data: &[u8]) {
    put_varint64(dst, data.len() as u64);
    dst.extend_from_slice(data);
}

/// Reads a length-prefixed slice, returning the slice and total bytes consumed.
pub fn get_length_prefixed(src: &[u8]) -> Result<(&[u8], usize)> {
    let (len, n) = get_varint64(src)?;
    let len = len as usize;
    if src.len() < n + len {
        return Err(Error::corruption("truncated length-prefixed slice"));
    }
    Ok((&src[n..n + len], n + len))
}

/// A cursor over a byte slice for sequential decoding.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes remaining to decode.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns true if the entire buffer has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current absolute position in the buffer.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads a varint-encoded `u64`.
    pub fn varint64(&mut self) -> Result<u64> {
        let (v, n) = get_varint64(&self.buf[self.pos..])?;
        self.pos += n;
        Ok(v)
    }

    /// Reads a varint-encoded `u32`.
    pub fn varint32(&mut self) -> Result<u32> {
        let (v, n) = get_varint32(&self.buf[self.pos..])?;
        self.pos += n;
        Ok(v)
    }

    /// Reads a fixed little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let v = get_u32(&self.buf[self.pos..])?;
        self.pos += 4;
        Ok(v)
    }

    /// Reads a fixed little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let v = get_u64(&self.buf[self.pos..])?;
        self.pos += 8;
        Ok(v)
    }

    /// Reads a single byte.
    pub fn u8(&mut self) -> Result<u8> {
        if self.remaining() < 1 {
            return Err(Error::corruption("buffer too short for u8"));
        }
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::corruption("buffer too short for bytes"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a length-prefixed byte slice.
    pub fn length_prefixed(&mut self) -> Result<&'a [u8]> {
        let (s, n) = get_length_prefixed(&self.buf[self.pos..])?;
        self.pos += n;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xdeadbeef);
        put_u64(&mut buf, 0x0123456789abcdef);
        assert_eq!(get_u32(&buf).unwrap(), 0xdeadbeef);
        assert_eq!(get_u64(&buf[4..]).unwrap(), 0x0123456789abcdef);
    }

    #[test]
    fn varint_roundtrip_boundaries() {
        let values = [
            0u64,
            1,
            127,
            128,
            255,
            256,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &values {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            let (decoded, n) = get_varint64(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(n, buf.len());
        }
    }

    #[test]
    fn varint_truncated_is_error() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(get_varint64(&buf[..cut]).is_err());
        }
    }

    #[test]
    fn varint32_overflow_is_error() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u32::MAX as u64 + 1);
        assert!(get_varint32(&buf).is_err());
    }

    #[test]
    fn length_prefixed_roundtrip() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"hello");
        put_length_prefixed(&mut buf, b"");
        put_length_prefixed(&mut buf, &[7u8; 300]);
        let (a, n1) = get_length_prefixed(&buf).unwrap();
        assert_eq!(a, b"hello");
        let (b, n2) = get_length_prefixed(&buf[n1..]).unwrap();
        assert_eq!(b, b"");
        let (c, _) = get_length_prefixed(&buf[n1 + n2..]).unwrap();
        assert_eq!(c, &[7u8; 300][..]);
    }

    #[test]
    fn decoder_sequential_reads() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, 300);
        put_u32(&mut buf, 7);
        put_u64(&mut buf, 9);
        buf.push(42);
        put_length_prefixed(&mut buf, b"xyz");
        let mut d = Decoder::new(&buf);
        assert_eq!(d.varint64().unwrap(), 300);
        assert_eq!(d.u32().unwrap(), 7);
        assert_eq!(d.u64().unwrap(), 9);
        assert_eq!(d.u8().unwrap(), 42);
        assert_eq!(d.length_prefixed().unwrap(), b"xyz");
        assert!(d.is_empty());
        assert!(d.u8().is_err());
    }
}
