//! LSM shape introspection: a point-in-time description of the tree's
//! physical layout (files, bytes, entries, overlap, compaction debt per
//! level) computed from manifest metadata alone, plus the structural
//! read/space amplification estimates derived from it.
//!
//! The shape is engine-agnostic: both the plain key-value engine and the
//! LASER column-group engine expose their levels as `Vec<Vec<FileMeta>>`,
//! and `FileMeta::column_group` lets the shape count per-column-group file
//! sets where they exist. The sharding layer turns one [`TreeShape`] per
//! shard into the `laser_level_*` / `laser_read_amp` / `laser_space_amp`
//! gauges and the `/debug/lsm` endpoint body.

use crate::manifest::FileMeta;
use crate::types::UserKey;

/// One level of a [`TreeShape`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LevelShape {
    /// Level number.
    pub level: u32,
    /// Files in the level.
    pub files: u64,
    /// Total bytes across the level's files.
    pub bytes: u64,
    /// Total entries across the level's files.
    pub entries: u64,
    /// Distinct column groups with at least one file in the level (1 for a
    /// plain key-value engine).
    pub column_groups: u32,
    /// Bytes of this level's files whose key range overlaps at least one
    /// file of the next level — the data a compaction out of this level
    /// would have to merge against.
    pub overlap_next_bytes: u64,
    /// Bytes above the level's steady-state target (level 0's target is the
    /// write buffer; level `i` targets `T^i` times that). Everything in an
    /// over-target level must eventually be rewritten downward.
    pub debt_bytes: u64,
}

/// A point-in-time physical description of one engine's LSM tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TreeShape {
    /// Bytes buffered in memtables (mutable + frozen).
    pub buffered_bytes: u64,
    /// Total SST bytes across all levels.
    pub total_bytes: u64,
    /// Total SST entries across all levels.
    pub total_entries: u64,
    /// Per-level shapes, index = level (trailing empty levels included so
    /// the vector length is the configured level count).
    pub levels: Vec<LevelShape>,
    /// Estimated live bytes: the in-bounds fraction of the deepest
    /// non-empty level (see [`TreeShape::compute`] on how bounds are
    /// applied). 0 when the tree has no files.
    pub live_bytes_estimate: u64,
}

/// Fraction of `file`'s key span that lies inside `bounds` (inclusive),
/// assuming keys spread uniformly across the file's span. 1.0 without
/// bounds; files entirely outside the bounds score 0.0.
fn in_bounds_fraction(file: &FileMeta, bounds: Option<(UserKey, UserKey)>) -> f64 {
    let Some((lo, hi)) = bounds else {
        return 1.0;
    };
    if file.max_user_key < lo || hi < file.min_user_key {
        return 0.0;
    }
    let span = (file.max_user_key - file.min_user_key) as f64 + 1.0;
    let ov_lo = file.min_user_key.max(lo);
    let ov_hi = file.max_user_key.min(hi);
    ((ov_hi - ov_lo) as f64 + 1.0) / span
}

impl TreeShape {
    /// Computes the shape from per-level file metadata.
    ///
    /// * `levels` — `levels[i]` holds level `i`'s files (any order).
    /// * `buffered_bytes` — current memtable bytes.
    /// * `size_ratio` — configured level size ratio `T`.
    /// * `level0_target_bytes` — steady-state target for level 0 (the write
    ///   buffer capacity); level `i` targets `T^i` times this.
    /// * `bounds` — the shard's key bounds, if this tree serves one shard of
    ///   a sharded deployment. Files adopted from a pre-split parent may
    ///   carry out-of-bounds data; the live-byte estimate discounts them by
    ///   the in-bounds fraction of their key span.
    pub fn compute(
        levels: &[Vec<FileMeta>],
        buffered_bytes: u64,
        size_ratio: u64,
        level0_target_bytes: u64,
        bounds: Option<(UserKey, UserKey)>,
    ) -> TreeShape {
        let mut shapes = Vec::with_capacity(levels.len());
        let mut total_bytes = 0u64;
        let mut total_entries = 0u64;
        for (level_no, files) in levels.iter().enumerate() {
            let bytes: u64 = files.iter().map(|f| f.file_size).sum();
            let entries: u64 = files.iter().map(|f| f.num_entries).sum();
            let mut groups: Vec<u32> = files.iter().map(|f| f.column_group).collect();
            groups.sort_unstable();
            groups.dedup();
            let overlap_next_bytes = match levels.get(level_no + 1) {
                Some(next) if !next.is_empty() => files
                    .iter()
                    .filter(|f| {
                        next.iter()
                            .any(|n| f.overlaps(n.min_user_key, n.max_user_key))
                    })
                    .map(|f| f.file_size)
                    .sum(),
                _ => 0,
            };
            let target = size_ratio
                .saturating_pow(level_no as u32)
                .saturating_mul(level0_target_bytes);
            total_bytes += bytes;
            total_entries += entries;
            shapes.push(LevelShape {
                level: level_no as u32,
                files: files.len() as u64,
                bytes,
                entries,
                column_groups: groups.len() as u32,
                overlap_next_bytes,
                debt_bytes: bytes.saturating_sub(target),
            });
        }
        let live_bytes_estimate = levels
            .iter()
            .rev()
            .find(|files| !files.is_empty())
            .map(|files| {
                files
                    .iter()
                    .map(|f| f.file_size as f64 * in_bounds_fraction(f, bounds))
                    .sum::<f64>() as u64
            })
            .unwrap_or(0);
        TreeShape {
            buffered_bytes,
            total_bytes,
            total_entries,
            levels: shapes,
            live_bytes_estimate,
        }
    }

    /// Structural read amplification: the number of sorted runs a point
    /// lookup may probe. Counts 1 for the memtables, every level-0 file
    /// per column group (level-0 runs overlap), and one run per column
    /// group for each non-empty deeper level. ≥ 1 by construction.
    pub fn read_amp(&self) -> f64 {
        let mut probes = 1.0;
        for shape in &self.levels {
            if shape.files == 0 {
                continue;
            }
            if shape.level == 0 {
                probes += shape.files as f64;
            } else {
                probes += shape.column_groups as f64;
            }
        }
        probes
    }

    /// Measured space amplification: physical bytes (SSTs + memtables) over
    /// the live-byte estimate. Both duplicate versions in upper levels and
    /// out-of-bounds data adopted from a pre-split parent inflate it;
    /// compactions and trim passes shrink it back toward 1. Reports 1.0 for
    /// an empty tree (no files ⇒ nothing amplified).
    pub fn space_amp(&self) -> f64 {
        if self.live_bytes_estimate == 0 {
            return 1.0;
        }
        (self.total_bytes + self.buffered_bytes) as f64 / self.live_bytes_estimate as f64
    }

    /// The deepest level holding at least one file, if any.
    pub fn last_nonempty_level(&self) -> Option<u32> {
        self.levels
            .iter()
            .rev()
            .find(|shape| shape.files > 0)
            .map(|shape| shape.level)
    }

    /// Renders the shape as a JSON object (the per-shard body inside the
    /// `/debug/lsm` endpoint).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"buffered_bytes\":{},\"total_bytes\":{},\"total_entries\":{},\
             \"live_bytes_estimate\":{},\"read_amp\":{:.3},\"space_amp\":{:.3},\"levels\":[",
            self.buffered_bytes,
            self.total_bytes,
            self.total_entries,
            self.live_bytes_estimate,
            self.read_amp(),
            self.space_amp(),
        );
        for (i, shape) in self.levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"level\":{},\"files\":{},\"bytes\":{},\"entries\":{},\"column_groups\":{},\
                 \"overlap_next_bytes\":{},\"debt_bytes\":{}}}",
                shape.level,
                shape.files,
                shape.bytes,
                shape.entries,
                shape.column_groups,
                shape.overlap_next_bytes,
                shape.debt_bytes,
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(level: u32, lo: UserKey, hi: UserKey, size: u64, entries: u64, cg: u32) -> FileMeta {
        FileMeta {
            file_number: 1,
            level,
            min_user_key: lo,
            max_user_key: hi,
            num_entries: entries,
            file_size: size,
            min_seq: 1,
            max_seq: 1,
            column_group: cg,
        }
    }

    #[test]
    fn empty_tree_is_unamplified() {
        let shape = TreeShape::compute(&[Vec::new(), Vec::new()], 0, 4, 1024, None);
        assert_eq!(shape.read_amp(), 1.0);
        assert_eq!(shape.space_amp(), 1.0);
        assert_eq!(shape.last_nonempty_level(), None);
        assert_eq!(shape.total_bytes, 0);
    }

    #[test]
    fn shape_counts_files_overlap_and_debt() {
        let levels = vec![
            vec![file(0, 0, 99, 2048, 20, 0), file(0, 50, 149, 2048, 20, 0)],
            vec![file(1, 0, 79, 4096, 40, 0), file(1, 80, 200, 4096, 40, 0)],
            Vec::new(),
        ];
        let shape = TreeShape::compute(&levels, 512, 4, 1024, None);
        assert_eq!(shape.levels[0].files, 2);
        assert_eq!(shape.levels[0].bytes, 4096);
        // Both L0 files overlap L1's key range.
        assert_eq!(shape.levels[0].overlap_next_bytes, 4096);
        // L0 target is 1024 bytes; 4096 resident ⇒ 3072 of debt.
        assert_eq!(shape.levels[0].debt_bytes, 3072);
        // L1 target is 4 × 1024; 8192 resident ⇒ 4096 of debt.
        assert_eq!(shape.levels[1].debt_bytes, 4096);
        // L1 has no L2 below it ⇒ no overlap.
        assert_eq!(shape.levels[1].overlap_next_bytes, 0);
        assert_eq!(shape.last_nonempty_level(), Some(1));
        // Probes: memtable + 2 L0 files + 1 L1 run.
        assert_eq!(shape.read_amp(), 4.0);
        // (4096 + 8192 + 512 buffered) / 8192 live.
        assert!((shape.space_amp() - 12800.0 / 8192.0).abs() < 1e-9);
    }

    #[test]
    fn column_groups_count_per_level() {
        let levels = vec![
            Vec::new(),
            vec![
                file(1, 0, 99, 1000, 10, 0),
                file(1, 0, 99, 500, 10, 1),
                file(1, 0, 99, 250, 10, 2),
            ],
        ];
        let shape = TreeShape::compute(&levels, 0, 4, 1024, None);
        assert_eq!(shape.levels[1].column_groups, 3);
        // Memtable + one run per column group.
        assert_eq!(shape.read_amp(), 4.0);
    }

    #[test]
    fn bounds_discount_out_of_range_bytes() {
        // One last-level file spanning [0, 199]; the shard owns [100, 199].
        let levels = vec![vec![file(0, 0, 199, 4000, 40, 0)]];
        let unbounded = TreeShape::compute(&levels, 0, 4, 1 << 20, None);
        assert_eq!(unbounded.live_bytes_estimate, 4000);
        assert_eq!(unbounded.space_amp(), 1.0);
        let bounded = TreeShape::compute(&levels, 0, 4, 1 << 20, Some((100, 199)));
        // Half the key span is out of bounds ⇒ half the bytes presumed dead.
        assert_eq!(bounded.live_bytes_estimate, 2000);
        assert!((bounded.space_amp() - 2.0).abs() < 1e-9);
        // A trim pass rewrites the file to its in-bounds half: space amp
        // falls back toward 1.
        let trimmed = vec![vec![file(0, 100, 199, 2000, 20, 0)]];
        let after = TreeShape::compute(&trimmed, 0, 4, 1 << 20, Some((100, 199)));
        assert!(after.space_amp() < bounded.space_amp());
        assert!((after.space_amp() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn json_is_balanced_and_carries_levels() {
        let levels = vec![vec![file(0, 0, 9, 100, 5, 0)]];
        let shape = TreeShape::compute(&levels, 64, 4, 1024, None);
        let json = shape.to_json();
        assert!(json.contains("\"levels\":[{\"level\":0,\"files\":1"));
        assert!(json.contains("\"read_amp\":2.000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
