//! Bounded retry with exponential backoff and jitter for transient I/O.
//!
//! The SST and manifest write paths run through [`retry_io`]: a transient
//! fault (interrupted syscall, injected transient EIO, a momentarily-busy
//! device) is retried a few times with exponentially growing, jittered
//! sleeps before the error escalates to the caller. Persistent faults —
//! ENOSPC, media errors, corruption — are *never* retried; they escalate
//! immediately so the engine can degrade instead of spinning.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::error::{Error, Result};

/// Backoff schedule for [`retry_io`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles each subsequent retry.
    pub base_delay: Duration,
    /// Upper bound on any single sleep.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// The default schedule for the SST/manifest path: up to 3 retries at
    /// 2 ms, 4 ms, 8 ms (plus jitter) — bounded well under a flush tick.
    pub fn transient_io() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(100),
        }
    }

    /// No retries: every error escalates immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The jittered sleep before retry number `retry` (1-based).
    fn delay_for(&self, retry: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (retry - 1).min(16))
            .min(self.max_delay);
        // Up to +50% jitter, so a herd of retriers decorrelates.
        let jitter = exp.mul_f64((jitter_rand() % 512) as f64 / 1024.0);
        exp + jitter
    }
}

/// Process-wide jitter source: a tiny xorshift stream. Jitter only spreads
/// retries in time; it carries no correctness weight, so a shared stream is
/// fine.
fn jitter_rand() -> u64 {
    static STATE: AtomicU64 = AtomicU64::new(0x9E37_79B9_7F4A_7C15);
    let mut x = STATE.load(Ordering::Relaxed);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    STATE.store(x, Ordering::Relaxed);
    x
}

/// Runs `op`, retrying transient errors per `policy`. `on_retry` is called
/// before each sleep with the 1-based retry number and the error — the
/// engines hook their `laser_io_retries_total` counter and event log here.
pub fn retry_io<T>(
    policy: &RetryPolicy,
    mut on_retry: impl FnMut(u32, &Error),
    mut op: impl FnMut() -> Result<T>,
) -> Result<T> {
    let mut attempt = 1u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < policy.max_attempts => {
                on_retry(attempt, &e);
                std::thread::sleep(policy.delay_for(attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transient() -> Error {
        Error::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "transient",
        ))
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let mut failures_left = 2;
        let mut retries = Vec::new();
        let out = retry_io(
            &RetryPolicy {
                max_attempts: 4,
                base_delay: Duration::from_micros(10),
                max_delay: Duration::from_micros(100),
            },
            |n, _| retries.push(n),
            || {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err(transient())
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(out.unwrap(), 7);
        assert_eq!(retries, vec![1, 2]);
    }

    #[test]
    fn persistent_errors_escalate_immediately() {
        let mut calls = 0;
        let out: Result<()> = retry_io(
            &RetryPolicy::transient_io(),
            |_, _| panic!("persistent errors must not retry"),
            || {
                calls += 1;
                Err(Error::Io(std::io::Error::from_raw_os_error(28)))
            },
        );
        assert!(out.unwrap_err().is_disk_full());
        assert_eq!(calls, 1);
    }

    #[test]
    fn transient_errors_escalate_after_budget() {
        let mut calls = 0;
        let out: Result<()> = retry_io(
            &RetryPolicy {
                max_attempts: 3,
                base_delay: Duration::from_micros(10),
                max_delay: Duration::from_micros(50),
            },
            |_, _| {},
            || {
                calls += 1;
                Err(transient())
            },
        );
        assert!(out.unwrap_err().is_transient());
        assert_eq!(calls, 3);
    }

    #[test]
    fn policy_none_never_retries() {
        let mut calls = 0;
        let out: Result<()> = retry_io(
            &RetryPolicy::none(),
            |_, _| {},
            || {
                calls += 1;
                Err(transient())
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }
}
