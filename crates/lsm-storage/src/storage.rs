//! Pluggable storage backends.
//!
//! The engine never touches the filesystem directly; everything goes through
//! the [`Storage`] trait. Three implementations are provided:
//!
//! * [`FileStorage`] — durable files on a local directory (the "real" backend).
//! * [`MemStorage`] — an in-memory backend that counts 4 KiB-block reads and
//!   writes. The paper's cost model is expressed in block I/Os, so all
//!   experiments report these counters in addition to wall-clock time.
//! * [`FaultInjectingStorage`] — wraps another backend and fails operations on
//!   demand, used by failure-injection tests.

use std::collections::HashMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::error::{Error, Result};

/// The block size used for I/O accounting (matches the 4 KiB page the paper
/// assumes for its cost model).
pub const IO_BLOCK_SIZE: u64 = 4096;

/// Counters describing the I/O a storage backend has performed.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Number of read calls.
    pub reads: AtomicU64,
    /// Number of write (append) calls.
    pub writes: AtomicU64,
    /// Total bytes read.
    pub bytes_read: AtomicU64,
    /// Total bytes written.
    pub bytes_written: AtomicU64,
    /// Number of 4 KiB blocks touched by reads (each read is rounded up).
    pub blocks_read: AtomicU64,
    /// Number of 4 KiB blocks touched by writes.
    pub blocks_written: AtomicU64,
    /// Number of sync/flush calls.
    pub syncs: AtomicU64,
}

impl IoStats {
    /// Records a read of `len` bytes.
    pub fn record_read(&self, len: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(len, Ordering::Relaxed);
        self.blocks_read
            .fetch_add(len.div_ceil(IO_BLOCK_SIZE).max(1), Ordering::Relaxed);
    }

    /// Records a write of `len` bytes.
    pub fn record_write(&self, len: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(len, Ordering::Relaxed);
        self.blocks_written
            .fetch_add(len.div_ceil(IO_BLOCK_SIZE).max(1), Ordering::Relaxed);
    }

    /// Records a sync.
    pub fn record_sync(&self) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a point-in-time snapshot of the counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.blocks_read.store(0, Ordering::Relaxed);
        self.blocks_written.store(0, Ordering::Relaxed);
        self.syncs.store(0, Ordering::Relaxed);
    }
}

/// An owned, copyable snapshot of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Number of read calls.
    pub reads: u64,
    /// Number of write calls.
    pub writes: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// 4 KiB blocks read.
    pub blocks_read: u64,
    /// 4 KiB blocks written.
    pub blocks_written: u64,
    /// Sync calls.
    pub syncs: u64,
}

impl IoStatsSnapshot {
    /// Component-wise difference (`self - earlier`), saturating at zero.
    pub fn delta_since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            blocks_read: self.blocks_read.saturating_sub(earlier.blocks_read),
            blocks_written: self.blocks_written.saturating_sub(earlier.blocks_written),
            syncs: self.syncs.saturating_sub(earlier.syncs),
        }
    }

    /// Component-wise sum with `other`, used to aggregate per-shard storage
    /// counters into one whole-deployment view.
    pub fn merged(&self, other: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            blocks_read: self.blocks_read + other.blocks_read,
            blocks_written: self.blocks_written + other.blocks_written,
            syncs: self.syncs + other.syncs,
        }
    }
}

/// A shareable handle that can fsync a file without exclusive access to its
/// [`WritableFile`]. Lets a group-commit leader run `sync_data` while other
/// threads keep appending through the writable handle (under their own
/// locking) — the basis of the WAL's fsync-outside-the-mutex write path.
pub trait SharedSyncHandle: Send + Sync {
    /// Forces everything appended to the file so far to durable storage.
    fn sync(&self) -> Result<()>;
}

/// A file opened for appending.
pub trait WritableFile: Send + Sync {
    /// Appends bytes at the end of the file.
    fn append(&mut self, data: &[u8]) -> Result<()>;
    /// Forces buffered data to durable storage.
    fn sync(&mut self) -> Result<()>;
    /// Current length of the file in bytes.
    fn len(&self) -> u64;
    /// Returns true if nothing has been appended yet.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// A shareable sync handle for this file, if the backend supports one
    /// (e.g. a duplicated file descriptor). `None` means callers must sync
    /// through the exclusive [`WritableFile::sync`].
    fn shared_sync_handle(&self) -> Option<Arc<dyn SharedSyncHandle>> {
        None
    }
}

/// A file opened for random-access reads.
pub trait RandomAccessFile: Send + Sync {
    /// Reads `len` bytes starting at `offset`. Returns fewer bytes only at EOF.
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>>;
    /// Total length of the file in bytes.
    fn len(&self) -> u64;
    /// Returns true if the file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Reads the entire file.
    fn read_all(&self) -> Result<Vec<u8>> {
        self.read_at(0, self.len() as usize)
    }
}

/// A named-file storage backend (the substrate's equivalent of an `Env`).
pub trait Storage: Send + Sync {
    /// Creates (or truncates) a file for appending.
    fn create(&self, name: &str) -> Result<Box<dyn WritableFile>>;
    /// Opens an existing file for random-access reads.
    fn open(&self, name: &str) -> Result<Box<dyn RandomAccessFile>>;
    /// Deletes a file. Deleting a missing file is an error.
    fn delete(&self, name: &str) -> Result<()>;
    /// Returns true if the file exists.
    fn exists(&self, name: &str) -> bool;
    /// Lists all file names in the backend (unordered).
    fn list(&self) -> Result<Vec<String>>;
    /// Atomically renames a file, replacing the destination if present.
    fn rename(&self, from: &str, to: &str) -> Result<()>;
    /// Returns the I/O statistics collector for this backend.
    fn io_stats(&self) -> Arc<IoStats>;
    /// Size of a file in bytes.
    fn size_of(&self, name: &str) -> Result<u64> {
        Ok(self.open(name)?.len())
    }
}

/// Shared handle to a storage backend.
pub type StorageRef = Arc<dyn Storage>;

// ---------------------------------------------------------------------------
// In-memory storage
// ---------------------------------------------------------------------------

#[derive(Default)]
struct MemInner {
    files: HashMap<String, Arc<RwLock<Vec<u8>>>>,
}

/// In-memory storage backend with block-I/O accounting.
///
/// Used by tests (hermetic, fast) and by the benchmark harness (deterministic
/// I/O counts that map directly onto the paper's cost model).
pub struct MemStorage {
    inner: RwLock<MemInner>,
    stats: Arc<IoStats>,
}

impl Default for MemStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStorage {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        MemStorage {
            inner: RwLock::new(MemInner::default()),
            stats: Arc::new(IoStats::default()),
        }
    }

    /// Creates an empty backend wrapped in an [`Arc`] for sharing.
    pub fn new_ref() -> StorageRef {
        Arc::new(Self::new())
    }

    /// Total bytes currently stored across all files.
    pub fn total_size(&self) -> u64 {
        let inner = self.inner.read();
        inner.files.values().map(|f| f.read().len() as u64).sum()
    }

    /// Shares file `name` into `target` under the same name without copying
    /// the bytes: both backends see the same underlying buffer — the
    /// in-memory analogue of a hard link. Only meaningful for immutable
    /// files (SSTs); re-`create`ing the name in either backend detaches it.
    pub fn link_file_into(&self, name: &str, target: &MemStorage) -> Result<()> {
        let buf = self
            .inner
            .read()
            .files
            .get(name)
            .cloned()
            .ok_or_else(|| Error::not_found(format!("file {name}")))?;
        target.inner.write().files.insert(name.to_string(), buf);
        Ok(())
    }
}

struct MemWritable {
    buf: Arc<RwLock<Vec<u8>>>,
    stats: Arc<IoStats>,
}

/// In-memory files are always "durable"; the shared handle just keeps the
/// sync accounting identical to the exclusive path.
struct MemSyncHandle {
    stats: Arc<IoStats>,
}

impl SharedSyncHandle for MemSyncHandle {
    fn sync(&self) -> Result<()> {
        self.stats.record_sync();
        Ok(())
    }
}

impl WritableFile for MemWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.stats.record_write(data.len() as u64);
        self.buf.write().extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.stats.record_sync();
        Ok(())
    }

    fn len(&self) -> u64 {
        self.buf.read().len() as u64
    }

    fn shared_sync_handle(&self) -> Option<Arc<dyn SharedSyncHandle>> {
        Some(Arc::new(MemSyncHandle {
            stats: Arc::clone(&self.stats),
        }))
    }
}

struct MemReadable {
    buf: Arc<RwLock<Vec<u8>>>,
    stats: Arc<IoStats>,
}

impl RandomAccessFile for MemReadable {
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let buf = self.buf.read();
        let start = (offset as usize).min(buf.len());
        let end = (start + len).min(buf.len());
        self.stats.record_read((end - start) as u64);
        Ok(buf[start..end].to_vec())
    }

    fn len(&self) -> u64 {
        self.buf.read().len() as u64
    }
}

impl Storage for MemStorage {
    fn create(&self, name: &str) -> Result<Box<dyn WritableFile>> {
        let buf = Arc::new(RwLock::new(Vec::new()));
        self.inner
            .write()
            .files
            .insert(name.to_string(), Arc::clone(&buf));
        Ok(Box::new(MemWritable {
            buf,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn RandomAccessFile>> {
        let inner = self.inner.read();
        let buf = inner
            .files
            .get(name)
            .cloned()
            .ok_or_else(|| Error::not_found(format!("file {name}")))?;
        Ok(Box::new(MemReadable {
            buf,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.inner
            .write()
            .files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::not_found(format!("file {name}")))
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.read().files.contains_key(name)
    }

    fn list(&self) -> Result<Vec<String>> {
        Ok(self.inner.read().files.keys().cloned().collect())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut inner = self.inner.write();
        let buf = inner
            .files
            .remove(from)
            .ok_or_else(|| Error::not_found(format!("file {from}")))?;
        inner.files.insert(to.to_string(), buf);
        Ok(())
    }

    fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }
}

// ---------------------------------------------------------------------------
// File-backed storage
// ---------------------------------------------------------------------------

/// Durable storage rooted at a directory on the local filesystem.
pub struct FileStorage {
    root: PathBuf,
    stats: Arc<IoStats>,
}

impl FileStorage {
    /// Opens (creating if necessary) a storage rooted at `root`.
    pub fn open_dir(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(FileStorage {
            root,
            stats: Arc::new(IoStats::default()),
        })
    }

    /// Opens a file storage wrapped in an [`Arc`].
    pub fn open_ref(root: impl Into<PathBuf>) -> Result<StorageRef> {
        Ok(Arc::new(Self::open_dir(root)?))
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

struct FileWritable {
    file: std::fs::File,
    len: u64,
    stats: Arc<IoStats>,
}

/// A duplicated descriptor of the written file: `sync_data` on it flushes
/// the same inode, so a leader can fsync while writers keep appending.
struct FileSyncHandle {
    file: std::fs::File,
    stats: Arc<IoStats>,
}

impl SharedSyncHandle for FileSyncHandle {
    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        self.stats.record_sync();
        Ok(())
    }
}

impl WritableFile for FileWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.file.write_all(data)?;
        self.len += data.len() as u64;
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        self.stats.record_sync();
        Ok(())
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn shared_sync_handle(&self) -> Option<Arc<dyn SharedSyncHandle>> {
        self.file.try_clone().ok().map(|file| {
            Arc::new(FileSyncHandle {
                file,
                stats: Arc::clone(&self.stats),
            }) as Arc<dyn SharedSyncHandle>
        })
    }
}

struct FileReadable {
    file: Mutex<std::fs::File>,
    len: u64,
    stats: Arc<IoStats>,
}

impl RandomAccessFile for FileReadable {
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        let mut read = 0usize;
        while read < len {
            let n = file.read(&mut buf[read..])?;
            if n == 0 {
                break;
            }
            read += n;
        }
        buf.truncate(read);
        self.stats.record_read(read as u64);
        Ok(buf)
    }

    fn len(&self) -> u64 {
        self.len
    }
}

impl Storage for FileStorage {
    fn create(&self, name: &str) -> Result<Box<dyn WritableFile>> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.path(name))?;
        Ok(Box::new(FileWritable {
            file,
            len: 0,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn RandomAccessFile>> {
        let path = self.path(name);
        let file =
            std::fs::File::open(&path).map_err(|_| Error::not_found(format!("file {name}")))?;
        let len = file.metadata()?.len();
        Ok(Box::new(FileReadable {
            file: Mutex::new(file),
            len,
            stats: Arc::clone(&self.stats),
        }))
    }

    fn delete(&self, name: &str) -> Result<()> {
        std::fs::remove_file(self.path(name)).map_err(|_| Error::not_found(format!("file {name}")))
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    fn list(&self) -> Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    out.push(name.to_string());
                }
            }
        }
        Ok(out)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        std::fs::rename(self.path(from), self.path(to))?;
        Ok(())
    }

    fn io_stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        Ok(std::fs::metadata(self.path(name))?.len())
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Which operations the fault injector should fail.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Fail every `create` call.
    pub fail_create: bool,
    /// Fail every `append` call on writable files.
    pub fail_append: bool,
    /// Fail every `sync` call.
    pub fail_sync: bool,
    /// Fail every `read_at` call.
    pub fail_read: bool,
    /// Fail after this many successful appends (0 = disabled).
    pub fail_after_appends: u64,
}

/// A storage wrapper that injects failures according to a mutable [`FaultConfig`].
pub struct FaultInjectingStorage {
    inner: StorageRef,
    config: Arc<RwLock<FaultConfig>>,
    appends: Arc<AtomicU64>,
}

impl FaultInjectingStorage {
    /// Wraps `inner` with fault injection (initially disabled).
    pub fn new(inner: StorageRef) -> Self {
        FaultInjectingStorage {
            inner,
            config: Arc::new(RwLock::new(FaultConfig::default())),
            appends: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Replaces the fault configuration.
    pub fn set_config(&self, config: FaultConfig) {
        *self.config.write() = config;
    }

    /// Returns the current fault configuration.
    pub fn config(&self) -> FaultConfig {
        *self.config.read()
    }
}

struct FaultWritable {
    inner: Box<dyn WritableFile>,
    config: Arc<RwLock<FaultConfig>>,
    appends: Arc<AtomicU64>,
}

struct FaultSyncHandle {
    inner: Arc<dyn SharedSyncHandle>,
    config: Arc<RwLock<FaultConfig>>,
}

impl SharedSyncHandle for FaultSyncHandle {
    fn sync(&self) -> Result<()> {
        if self.config.read().fail_sync {
            return Err(Error::StorageFault("injected sync failure".into()));
        }
        self.inner.sync()
    }
}

impl WritableFile for FaultWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        let cfg = *self.config.read();
        if cfg.fail_append {
            return Err(Error::StorageFault("injected append failure".into()));
        }
        let count = self.appends.fetch_add(1, Ordering::Relaxed) + 1;
        if cfg.fail_after_appends > 0 && count > cfg.fail_after_appends {
            return Err(Error::StorageFault(format!(
                "injected append failure after {} appends",
                cfg.fail_after_appends
            )));
        }
        self.inner.append(data)
    }

    fn sync(&mut self) -> Result<()> {
        if self.config.read().fail_sync {
            return Err(Error::StorageFault("injected sync failure".into()));
        }
        self.inner.sync()
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn shared_sync_handle(&self) -> Option<Arc<dyn SharedSyncHandle>> {
        self.inner.shared_sync_handle().map(|inner| {
            Arc::new(FaultSyncHandle {
                inner,
                config: Arc::clone(&self.config),
            }) as Arc<dyn SharedSyncHandle>
        })
    }
}

struct FaultReadable {
    inner: Box<dyn RandomAccessFile>,
    config: Arc<RwLock<FaultConfig>>,
}

impl RandomAccessFile for FaultReadable {
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        if self.config.read().fail_read {
            return Err(Error::StorageFault("injected read failure".into()));
        }
        self.inner.read_at(offset, len)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

impl Storage for FaultInjectingStorage {
    fn create(&self, name: &str) -> Result<Box<dyn WritableFile>> {
        if self.config.read().fail_create {
            return Err(Error::StorageFault("injected create failure".into()));
        }
        Ok(Box::new(FaultWritable {
            inner: self.inner.create(name)?,
            config: Arc::clone(&self.config),
            appends: Arc::clone(&self.appends),
        }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn RandomAccessFile>> {
        Ok(Box::new(FaultReadable {
            inner: self.inner.open(name)?,
            config: Arc::clone(&self.config),
        }))
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.inner.delete(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn list(&self) -> Result<Vec<String>> {
        self.inner.list()
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.inner.rename(from, to)
    }

    fn io_stats(&self) -> Arc<IoStats> {
        self.inner.io_stats()
    }
}

// ---------------------------------------------------------------------------
// Seeded fault storage
// ---------------------------------------------------------------------------

/// The live fault schedule for a [`FaultStorage`]. Every field can be
/// changed at runtime through the shared [`FaultHandle`]; cleared fields
/// heal the storage immediately, which is what the degradation recovery
/// paths probe for.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Fail this many sync calls with a *transient* fault, then heal.
    pub sync_failures: u64,
    /// While set, every sync fails persistently (until cleared).
    pub sync_persistent: bool,
    /// Tear this many appends: a seeded prefix of the data is written, the
    /// rest is dropped, and the call errors.
    pub torn_writes: u64,
    /// Per-mille probability that a read or append fails with a transient
    /// EIO (seeded draw, deterministic across runs).
    pub eio_per_mille: u16,
    /// While set, every read and append fails with a persistent EIO.
    pub eio_persistent: bool,
    /// While set, create/append/sync fail with ENOSPC.
    pub disk_full: bool,
    /// Extra latency added to every read, append and sync.
    pub latency: std::time::Duration,
}

/// Shared state behind a [`FaultHandle`]: the plan, the seeded PRNG and the
/// injected-fault counter.
#[derive(Debug)]
struct FaultShared {
    plan: RwLock<FaultPlan>,
    rng: Mutex<u64>,
    injected: AtomicU64,
}

/// Control handle for one or more [`FaultStorage`] wrappers. Cloning shares
/// the plan, so a single handle can drive faults across every shard of a
/// sharded deployment at once.
#[derive(Debug, Clone)]
pub struct FaultHandle {
    shared: Arc<FaultShared>,
}

/// xorshift64* step: small, dependency-free, deterministic.
fn fault_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

impl FaultHandle {
    /// Creates a handle with all faults disabled; `seed` fixes every
    /// probabilistic draw (torn-write split points, EIO coin flips).
    pub fn new(seed: u64) -> FaultHandle {
        FaultHandle {
            shared: Arc::new(FaultShared {
                plan: RwLock::new(FaultPlan::default()),
                rng: Mutex::new(seed.max(1)),
                injected: AtomicU64::new(0),
            }),
        }
    }

    /// Replaces the whole fault plan.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.shared.plan.write() = plan;
    }

    /// Snapshot of the current plan.
    pub fn plan(&self) -> FaultPlan {
        *self.shared.plan.read()
    }

    /// Clears every fault (the storage heals).
    pub fn clear(&self) {
        self.set_plan(FaultPlan::default());
    }

    /// Arms `n` transient sync failures.
    pub fn fail_syncs(&self, n: u64) {
        self.shared.plan.write().sync_failures = n;
    }

    /// Arms or clears persistent sync failure.
    pub fn set_sync_persistent(&self, on: bool) {
        self.shared.plan.write().sync_persistent = on;
    }

    /// Arms `n` torn writes.
    pub fn tear_appends(&self, n: u64) {
        self.shared.plan.write().torn_writes = n;
    }

    /// Arms or clears ENOSPC.
    pub fn set_disk_full(&self, on: bool) {
        self.shared.plan.write().disk_full = on;
    }

    /// Sets the transient-EIO probability in per-mille (0 disables).
    pub fn set_eio_per_mille(&self, per_mille: u16) {
        self.shared.plan.write().eio_per_mille = per_mille;
    }

    /// Arms or clears persistent EIO on reads and appends.
    pub fn set_eio_persistent(&self, on: bool) {
        self.shared.plan.write().eio_persistent = on;
    }

    /// Sets the injected latency for every I/O call.
    pub fn set_latency(&self, latency: std::time::Duration) {
        self.shared.plan.write().latency = latency;
    }

    /// Total faults injected so far (all wrappers sharing this handle).
    pub fn injected_faults(&self) -> u64 {
        self.shared.injected.load(Ordering::Relaxed)
    }

    fn note_injected(&self) {
        self.shared.injected.fetch_add(1, Ordering::Relaxed);
    }

    fn rand(&self) -> u64 {
        fault_rand(&mut self.shared.rng.lock())
    }

    /// Seeded coin flip at `per_mille` probability.
    fn coin(&self, per_mille: u16) -> bool {
        per_mille > 0 && self.rand() % 1000 < per_mille as u64
    }

    fn sleep_latency(&self) {
        let latency = self.shared.plan.read().latency;
        if !latency.is_zero() {
            std::thread::sleep(latency);
        }
    }

    /// ENOSPC as the OS would report it.
    fn enospc(&self) -> Error {
        self.note_injected();
        Error::Io(std::io::Error::from_raw_os_error(28))
    }

    fn transient_eio(&self) -> Error {
        self.note_injected();
        Error::Io(std::io::Error::new(
            std::io::ErrorKind::Interrupted,
            "injected transient eio",
        ))
    }

    fn persistent_eio(&self) -> Error {
        self.note_injected();
        Error::Io(std::io::Error::other("injected persistent eio"))
    }

    /// Checks the sync path. Consumes one transient failure if armed.
    fn check_sync(&self) -> Result<()> {
        let mut plan = self.shared.plan.write();
        if plan.disk_full {
            drop(plan);
            return Err(self.enospc());
        }
        if plan.sync_persistent {
            drop(plan);
            self.note_injected();
            return Err(Error::StorageFault(
                "injected persistent sync failure".into(),
            ));
        }
        if plan.sync_failures > 0 {
            plan.sync_failures -= 1;
            drop(plan);
            self.note_injected();
            return Err(Error::StorageFault(
                "injected transient sync failure".into(),
            ));
        }
        Ok(())
    }

    /// Checks the read path.
    fn check_read(&self) -> Result<()> {
        let plan = *self.shared.plan.read();
        if plan.eio_persistent {
            return Err(self.persistent_eio());
        }
        if self.coin(plan.eio_per_mille) {
            return Err(self.transient_eio());
        }
        Ok(())
    }
}

/// First-class fault-injection storage: wraps any backend and applies the
/// seeded [`FaultPlan`] shared through its [`FaultHandle`]. Unlike the
/// test-only [`FaultInjectingStorage`], this wrapper models realistic fault
/// classes — transient vs persistent EIO, ENOSPC, torn writes, slow I/O —
/// deterministically, so the same seed replays the same fault schedule.
pub struct FaultStorage {
    inner: StorageRef,
    handle: FaultHandle,
}

impl FaultStorage {
    /// Wraps `inner` with a fresh handle seeded by `seed`.
    pub fn new(inner: StorageRef, seed: u64) -> FaultStorage {
        FaultStorage {
            inner,
            handle: FaultHandle::new(seed),
        }
    }

    /// Wraps `inner` sharing an existing handle (one plan, many wrappers).
    pub fn with_handle(inner: StorageRef, handle: FaultHandle) -> FaultStorage {
        FaultStorage { inner, handle }
    }

    /// Convenience: wrap and return `(storage, control handle)`.
    pub fn wrap(inner: StorageRef, seed: u64) -> (StorageRef, FaultHandle) {
        let storage = FaultStorage::new(inner, seed);
        let handle = storage.handle();
        (Arc::new(storage), handle)
    }

    /// The control handle shared by every file this storage hands out.
    pub fn handle(&self) -> FaultHandle {
        self.handle.clone()
    }
}

struct PlannedFaultWritable {
    inner: Box<dyn WritableFile>,
    handle: FaultHandle,
}

impl WritableFile for PlannedFaultWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.handle.sleep_latency();
        let plan = self.handle.plan();
        if plan.disk_full {
            return Err(self.handle.enospc());
        }
        if plan.eio_persistent {
            return Err(self.handle.persistent_eio());
        }
        if plan.torn_writes > 0 {
            {
                let mut live = self.handle.shared.plan.write();
                live.torn_writes = live.torn_writes.saturating_sub(1);
            }
            self.handle.note_injected();
            // Write a seeded prefix so the tail of the file is genuinely
            // torn, the way a crashed kernel write would leave it.
            let cut = if data.is_empty() {
                0
            } else {
                (self.handle.rand() as usize) % data.len()
            };
            self.inner.append(&data[..cut])?;
            return Err(Error::StorageFault("injected torn write".into()));
        }
        if self.handle.coin(plan.eio_per_mille) {
            return Err(self.handle.transient_eio());
        }
        self.inner.append(data)
    }

    fn sync(&mut self) -> Result<()> {
        self.handle.sleep_latency();
        self.handle.check_sync()?;
        self.inner.sync()
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn shared_sync_handle(&self) -> Option<Arc<dyn SharedSyncHandle>> {
        self.inner.shared_sync_handle().map(|inner| {
            Arc::new(PlannedFaultSyncHandle {
                inner,
                handle: self.handle.clone(),
            }) as Arc<dyn SharedSyncHandle>
        })
    }
}

struct PlannedFaultSyncHandle {
    inner: Arc<dyn SharedSyncHandle>,
    handle: FaultHandle,
}

impl SharedSyncHandle for PlannedFaultSyncHandle {
    fn sync(&self) -> Result<()> {
        self.handle.sleep_latency();
        self.handle.check_sync()?;
        self.inner.sync()
    }
}

struct PlannedFaultReadable {
    inner: Box<dyn RandomAccessFile>,
    handle: FaultHandle,
}

impl RandomAccessFile for PlannedFaultReadable {
    fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        self.handle.sleep_latency();
        self.handle.check_read()?;
        self.inner.read_at(offset, len)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }
}

impl Storage for FaultStorage {
    fn create(&self, name: &str) -> Result<Box<dyn WritableFile>> {
        if self.handle.plan().disk_full {
            return Err(self.handle.enospc());
        }
        Ok(Box::new(PlannedFaultWritable {
            inner: self.inner.create(name)?,
            handle: self.handle.clone(),
        }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn RandomAccessFile>> {
        Ok(Box::new(PlannedFaultReadable {
            inner: self.inner.open(name)?,
            handle: self.handle.clone(),
        }))
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.inner.delete(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn list(&self) -> Result<Vec<String>> {
        self.inner.list()
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.inner.rename(from, to)
    }

    fn io_stats(&self) -> Arc<IoStats> {
        self.inner.io_stats()
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        self.inner.size_of(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(storage: &dyn Storage) {
        let mut f = storage.create("a.sst").unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        assert_eq!(f.len(), 11);
        assert!(storage.exists("a.sst"));

        let r = storage.open("a.sst").unwrap();
        assert_eq!(r.len(), 11);
        assert_eq!(r.read_at(0, 5).unwrap(), b"hello");
        assert_eq!(r.read_at(6, 5).unwrap(), b"world");
        assert_eq!(r.read_at(6, 100).unwrap(), b"world");
        assert_eq!(r.read_all().unwrap(), b"hello world");

        storage.rename("a.sst", "b.sst").unwrap();
        assert!(!storage.exists("a.sst"));
        assert!(storage.exists("b.sst"));
        assert!(storage.list().unwrap().contains(&"b.sst".to_string()));
        assert_eq!(storage.size_of("b.sst").unwrap(), 11);

        storage.delete("b.sst").unwrap();
        assert!(!storage.exists("b.sst"));
        assert!(storage.delete("b.sst").is_err());
        assert!(storage.open("missing").is_err());
    }

    #[test]
    fn mem_storage_roundtrip() {
        roundtrip(&MemStorage::new());
    }

    #[test]
    fn file_storage_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lsm-storage-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let storage = FileStorage::open_dir(&dir).unwrap();
        roundtrip(&storage);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_storage_counts_blocks() {
        let storage = MemStorage::new();
        let mut f = storage.create("x").unwrap();
        f.append(&vec![0u8; 10_000]).unwrap();
        let r = storage.open("x").unwrap();
        r.read_at(0, 5000).unwrap();
        let snap = storage.io_stats().snapshot();
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.bytes_written, 10_000);
        assert_eq!(snap.blocks_written, 3); // ceil(10000/4096)
        assert_eq!(snap.reads, 1);
        assert_eq!(snap.blocks_read, 2); // ceil(5000/4096)
    }

    #[test]
    fn io_stats_delta_and_reset() {
        let stats = IoStats::default();
        stats.record_read(100);
        let before = stats.snapshot();
        stats.record_read(5000);
        stats.record_write(1);
        let after = stats.snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta.reads, 1);
        assert_eq!(delta.blocks_read, 2);
        assert_eq!(delta.writes, 1);
        stats.reset();
        assert_eq!(stats.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn fault_injection_append_and_read() {
        let storage = FaultInjectingStorage::new(MemStorage::new_ref());
        let mut f = storage.create("f").unwrap();
        f.append(b"ok").unwrap();
        storage.set_config(FaultConfig {
            fail_append: true,
            ..Default::default()
        });
        assert!(matches!(f.append(b"no"), Err(Error::StorageFault(_))));
        storage.set_config(FaultConfig {
            fail_read: true,
            ..Default::default()
        });
        let r = storage.open("f").unwrap();
        assert!(r.read_at(0, 2).is_err());
        storage.set_config(FaultConfig::default());
        assert_eq!(r.read_at(0, 2).unwrap(), b"ok");
    }

    #[test]
    fn fault_injection_fail_after_n_appends() {
        let storage = FaultInjectingStorage::new(MemStorage::new_ref());
        storage.set_config(FaultConfig {
            fail_after_appends: 2,
            ..Default::default()
        });
        let mut f = storage.create("f").unwrap();
        assert!(f.append(b"1").is_ok());
        assert!(f.append(b"2").is_ok());
        assert!(f.append(b"3").is_err());
    }

    #[test]
    fn fault_injection_create() {
        let storage = FaultInjectingStorage::new(MemStorage::new_ref());
        storage.set_config(FaultConfig {
            fail_create: true,
            ..Default::default()
        });
        assert!(storage.create("x").is_err());
    }

    #[test]
    fn fault_storage_transient_sync_heals_after_n_failures() {
        let (storage, faults) = FaultStorage::wrap(MemStorage::new_ref(), 7);
        let mut f = storage.create("f").unwrap();
        f.append(b"x").unwrap();
        faults.fail_syncs(2);
        let e1 = f.sync().unwrap_err();
        assert!(e1.is_transient(), "first injected sync should be transient");
        assert!(f.sync().is_err());
        assert!(f.sync().is_ok(), "sync heals after the armed count drains");
        assert_eq!(faults.injected_faults(), 2);
    }

    #[test]
    fn fault_storage_persistent_sync_until_cleared() {
        let (storage, faults) = FaultStorage::wrap(MemStorage::new_ref(), 7);
        let mut f = storage.create("f").unwrap();
        faults.set_sync_persistent(true);
        for _ in 0..5 {
            let e = f.sync().unwrap_err();
            assert!(!e.is_transient());
        }
        faults.clear();
        assert!(f.sync().is_ok());
    }

    #[test]
    fn fault_storage_torn_write_leaves_prefix() {
        let (storage, faults) = FaultStorage::wrap(MemStorage::new_ref(), 42);
        let mut f = storage.create("f").unwrap();
        f.append(b"intact").unwrap();
        faults.tear_appends(1);
        assert!(f.append(&[0xAA; 100]).is_err());
        let torn_len = f.len();
        assert!(
            (6..106).contains(&torn_len),
            "torn append must drop at least one byte (len {torn_len})"
        );
        // Healed: the next append goes through whole.
        f.append(b"after").unwrap();
        assert_eq!(f.len(), torn_len + 5);
    }

    #[test]
    fn fault_storage_enospc_blocks_writes_and_heals() {
        let (storage, faults) = FaultStorage::wrap(MemStorage::new_ref(), 1);
        let mut f = storage.create("f").unwrap();
        faults.set_disk_full(true);
        assert!(f.append(b"x").unwrap_err().is_disk_full());
        assert!(f.sync().unwrap_err().is_disk_full());
        let create_err = storage.create("g").err().expect("ENOSPC on create");
        assert!(create_err.is_disk_full());
        faults.set_disk_full(false);
        f.append(b"x").unwrap();
        f.sync().unwrap();
    }

    #[test]
    fn fault_storage_eio_is_seed_deterministic() {
        let run = |seed: u64| {
            let (storage, faults) = FaultStorage::wrap(MemStorage::new_ref(), seed);
            let mut f = storage.create("f").unwrap();
            f.append(&[0u8; 64]).unwrap();
            faults.set_eio_per_mille(300);
            let r = storage.open("f").unwrap();
            (0..32)
                .map(|_| r.read_at(0, 8).is_err())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(99), run(99), "same seed must replay the same faults");
        let outcomes = run(99);
        assert!(outcomes.iter().any(|&e| e), "some reads should fail");
        assert!(outcomes.iter().any(|&e| !e), "some reads should succeed");
    }

    #[test]
    fn fault_storage_shared_handle_spans_wrappers() {
        let faults = FaultHandle::new(5);
        let a = FaultStorage::with_handle(MemStorage::new_ref(), faults.clone());
        let b = FaultStorage::with_handle(MemStorage::new_ref(), faults.clone());
        faults.set_disk_full(true);
        assert!(a.create("x").is_err());
        assert!(b.create("x").is_err());
        faults.clear();
        assert!(a.create("x").is_ok());
        assert!(b.create("x").is_ok());
    }
}
