//! Segmented write-ahead log with group commit.
//!
//! The original [`crate::wal`] module kept every buffered write in a single
//! log file that could only be truncated once *all* buffered writes were
//! flushed — under sustained ingest the log grew without bound and recovery
//! replay time grew with it. This module bounds both, RocksDB-style:
//!
//! * **One segment per memtable.** The engine rotates to a fresh, numbered
//!   segment (`wal-00000017.log`) every time it freezes the mutable memtable.
//!   The sealed segment holds exactly the frozen memtable's writes.
//! * **Manifest-tracked lifecycle.** Live segments (with the smallest
//!   sequence number they may contain) are recorded in the manifest via
//!   [`WalSegmentMeta`]; a segment is retired and deleted as soon as the
//!   memtable it backs has been durably flushed to an SST. Recovery therefore
//!   replays only the segments whose data is not yet in the tree, keeping
//!   replay time proportional to the *unflushed* tail rather than total
//!   ingest.
//! * **Group commit.** Appends never fsync inline. A writer that needs
//!   durability calls [`SegmentedWal::ensure_durable`] after releasing the
//!   engine's write lock; the first writer to arrive syncs the log up to the
//!   latest appended record, and every concurrent writer whose record that
//!   sync covered is acknowledged without issuing its own fsync (counted in
//!   [`WalStatsSnapshot::coalesced_acks`]). The
//!   `sync_wal_interval_ms` option relaxes this further to at most one fsync
//!   per time window.
//!
//! Per-segment replay keeps the original torn-tail tolerance: a truncated or
//! corrupt record ends replay at the last intact prefix.
//!
//! # Rotation-based in-place recovery
//!
//! A failed append may leave a torn record mid-segment, and a failed fsync
//! leaves the durability of every record since the last good sync unknown.
//! Instead of fail-stopping until reopen, the log recovers *in place*:
//!
//! ```text
//!   append/fsync error
//!        │ damaged = true
//!        ▼
//!   decode the damaged segment's intact record prefix
//!        ▼
//!   re-stage those records into a fresh segment, fsync it
//!        ▼
//!   truncate the damaged file, retire its id, swap the fresh
//!   segment in as active  →  damaged = false, writable again
//! ```
//!
//! Recovery runs immediately on the failure path and again on every later
//! append/rotate/sync while the log is damaged, so a transient fault heals
//! on the next write attempt with **no reopen and zero acked-write loss**
//! (every intact record is re-staged and fsynced before the log accepts new
//! appends). While recovery keeps failing — a persistent fault — every
//! write-path call returns the underlying storage error, reads and segment
//! shipping keep working, and the engine above degrades to read-only.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use std::sync::{Arc, OnceLock};
use telemetry::Telemetry;

use crate::coding::{put_u64, put_varint64, Decoder};
use crate::error::{Error, Result};
use crate::observability::{WalErrorStage, WalTelemetry};
use crate::storage::{SharedSyncHandle, StorageRef};
use crate::types::{SeqNo, WriteBatch};
use crate::wal::{decode_records, recover_detailed, WalRecord, WalWriter};

/// Prefix of WAL segment file names.
pub const SEGMENT_PREFIX: &str = "wal-";
/// Suffix of WAL segment file names.
pub const SEGMENT_SUFFIX: &str = ".log";

/// The storage file name of segment `id`.
pub fn segment_file_name(id: u64) -> String {
    format!("{SEGMENT_PREFIX}{id:08}{SEGMENT_SUFFIX}")
}

/// Parses a segment id back out of a file name produced by
/// [`segment_file_name`]. Returns `None` for anything else (including the
/// legacy `wal-current.log` name, which is not numbered).
pub fn parse_segment_file_name(name: &str) -> Option<u64> {
    let middle = name
        .strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?;
    if middle.is_empty() || !middle.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    middle.parse().ok()
}

/// Manifest-tracked metadata of one live WAL segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalSegmentMeta {
    /// Monotonically increasing segment number; the file name derives from it.
    pub id: u64,
    /// Smallest sequence number any record in this segment may carry.
    pub min_seq: SeqNo,
}

impl WalSegmentMeta {
    /// The storage file name of this segment.
    pub fn file_name(&self) -> String {
        segment_file_name(self.id)
    }

    /// Appends the encoding used inside the manifest.
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint64(dst, self.id);
        put_u64(dst, self.min_seq);
    }

    /// Decodes one segment meta from a manifest decoder.
    pub fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        Ok(WalSegmentMeta {
            id: d.varint64()?,
            min_seq: d.u64()?,
        })
    }
}

/// A sealed segment's byte image as shipped from a leader to a catching-up
/// replica. `id` is the leader-side segment number (diagnostic only — the
/// replica renumbers on adoption); `min_seq`/`last_seq` bound the sequence
/// numbers of the records inside.
#[derive(Debug, Clone)]
pub struct ShippedSegment {
    /// Leader-side segment id.
    pub id: u64,
    /// Smallest sequence number any record in the image may carry.
    pub min_seq: SeqNo,
    /// Largest sequence number any record in the image may carry.
    pub last_seq: SeqNo,
    /// The raw segment file bytes (the WAL record encoding, unchanged).
    pub bytes: Vec<u8>,
}

/// When appended records become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalSyncPolicy {
    /// Never fsync on the write path; segments are synced only when sealed by
    /// a rotation. A crash may lose the unsealed tail.
    Never,
    /// Every acknowledged write waits until an fsync covers its record.
    /// Concurrent writers coalesce into a single fsync (group commit).
    Always,
    /// At most one fsync per window: a write is acknowledged immediately if
    /// the log was synced within the last `interval`; otherwise it performs
    /// (or joins) a sync. Bounds data loss to one window.
    Interval(Duration),
}

impl WalSyncPolicy {
    /// Derives the policy from the engine options (`sync_wal`,
    /// `sync_wal_interval_ms`).
    pub fn from_options(sync_wal: bool, sync_wal_interval_ms: u64) -> Self {
        if !sync_wal {
            WalSyncPolicy::Never
        } else if sync_wal_interval_ms == 0 {
            WalSyncPolicy::Always
        } else {
            WalSyncPolicy::Interval(Duration::from_millis(sync_wal_interval_ms))
        }
    }
}

/// A claim ticket returned by [`SegmentedWal::append`]: identifies the
/// appended record so [`SegmentedWal::ensure_durable`] can wait for (or
/// perform) an fsync covering it.
#[derive(Debug, Clone, Copy)]
pub struct WalTicket {
    epoch: u64,
}

/// Monotonic counters describing WAL activity.
#[derive(Debug, Default)]
pub struct WalStats {
    records_appended: AtomicU64,
    syncs: AtomicU64,
    syncs_off_lock: AtomicU64,
    coalesced_acks: AtomicU64,
    rotations: AtomicU64,
    segments_deleted: AtomicU64,
    records_replayed: AtomicU64,
    segments_replayed: AtomicU64,
    orphan_segments_deleted: AtomicU64,
    recoveries: AtomicU64,
    records_restaged: AtomicU64,
}

/// Owned snapshot of [`WalStats`] plus point-in-time gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStatsSnapshot {
    /// Records appended since open (including recovery re-logging).
    pub records_appended: u64,
    /// fsync calls issued (write path + rotations/seals).
    pub syncs: u64,
    /// Write-path fsyncs issued with the append mutex *released*, so
    /// concurrent appends could overlap the `sync_data` (the group-commit
    /// leader path on backends that support shared sync handles).
    pub syncs_off_lock: u64,
    /// Durable acknowledgements that did not need their own fsync because a
    /// concurrent writer's (or a rotation's) sync already covered them.
    pub coalesced_acks: u64,
    /// Segment rotations (one per memtable freeze).
    pub rotations: u64,
    /// Segments deleted after their memtable was durably flushed.
    pub segments_deleted: u64,
    /// Records replayed by the most recent open.
    pub records_replayed: u64,
    /// Segments replayed by the most recent open.
    pub segments_replayed: u64,
    /// Stale segments deleted without replay by the most recent open.
    pub orphan_segments_deleted: u64,
    /// Successful in-place rotation recoveries after an append/fsync error
    /// (the log healed without a reopen).
    pub recoveries: u64,
    /// Records re-staged into a fresh segment by in-place recoveries.
    pub records_restaged: u64,
    /// Live segments right now (sealed + active).
    pub segments_live: u64,
    /// Total bytes across live segments right now.
    pub live_bytes: u64,
}

impl WalStatsSnapshot {
    /// Counter increments since `earlier` (saturating, so a reopened or
    /// reset WAL can never underflow the delta). The point-in-time gauges
    /// (`segments_live`, `live_bytes`) keep their current values.
    pub fn delta_since(&self, earlier: &WalStatsSnapshot) -> WalStatsSnapshot {
        WalStatsSnapshot {
            records_appended: self
                .records_appended
                .saturating_sub(earlier.records_appended),
            syncs: self.syncs.saturating_sub(earlier.syncs),
            syncs_off_lock: self.syncs_off_lock.saturating_sub(earlier.syncs_off_lock),
            coalesced_acks: self.coalesced_acks.saturating_sub(earlier.coalesced_acks),
            rotations: self.rotations.saturating_sub(earlier.rotations),
            segments_deleted: self
                .segments_deleted
                .saturating_sub(earlier.segments_deleted),
            records_replayed: self
                .records_replayed
                .saturating_sub(earlier.records_replayed),
            segments_replayed: self
                .segments_replayed
                .saturating_sub(earlier.segments_replayed),
            orphan_segments_deleted: self
                .orphan_segments_deleted
                .saturating_sub(earlier.orphan_segments_deleted),
            recoveries: self.recoveries.saturating_sub(earlier.recoveries),
            records_restaged: self
                .records_restaged
                .saturating_sub(earlier.records_restaged),
            segments_live: self.segments_live,
            live_bytes: self.live_bytes,
        }
    }

    /// Field-wise sum with `other` (gauges included), used to aggregate
    /// per-shard snapshots into one whole-deployment view.
    pub fn merged(&self, other: &WalStatsSnapshot) -> WalStatsSnapshot {
        WalStatsSnapshot {
            records_appended: self.records_appended + other.records_appended,
            syncs: self.syncs + other.syncs,
            syncs_off_lock: self.syncs_off_lock + other.syncs_off_lock,
            coalesced_acks: self.coalesced_acks + other.coalesced_acks,
            rotations: self.rotations + other.rotations,
            segments_deleted: self.segments_deleted + other.segments_deleted,
            records_replayed: self.records_replayed + other.records_replayed,
            segments_replayed: self.segments_replayed + other.segments_replayed,
            orphan_segments_deleted: self.orphan_segments_deleted + other.orphan_segments_deleted,
            recoveries: self.recoveries + other.recoveries,
            records_restaged: self.records_restaged + other.records_restaged,
            segments_live: self.segments_live + other.segments_live,
            live_bytes: self.live_bytes + other.live_bytes,
        }
    }
}

struct ActiveSegment {
    meta: WalSegmentMeta,
    writer: WalWriter,
    /// Shareable fsync handle of the segment file (None when the backend
    /// cannot duplicate handles; syncing then falls back to holding the
    /// append mutex across the fsync).
    sync_handle: Option<Arc<dyn SharedSyncHandle>>,
}

impl ActiveSegment {
    fn create(storage: &StorageRef, meta: WalSegmentMeta) -> Result<Self> {
        let writer = WalWriter::create(storage, &meta.file_name(), false)?;
        let sync_handle = writer.shared_sync_handle();
        Ok(ActiveSegment {
            meta,
            writer,
            sync_handle,
        })
    }
}

struct SealedSegment {
    meta: WalSegmentMeta,
    bytes: u64,
    /// Upper bound on the sequence numbers of this segment's records (set at
    /// seal time from the rotation's `next_min_seq`, or from the decoded
    /// records when the segment was adopted). The replication retention
    /// floor compares against this to decide whether a lagging replica may
    /// still need the segment.
    last_seq: SeqNo,
}

struct WalInner {
    active: ActiveSegment,
    /// Sealed-but-live segments, oldest first. Each backs one frozen
    /// memtable that has not finished flushing yet.
    sealed: Vec<SealedSegment>,
    /// Segments retired from the live set whose files still await deletion
    /// (deletion happens only after the manifest no longer lists them).
    retired: Vec<u64>,
    /// Files fully replayed by `open`, deleted by `finish_recovery` once
    /// their records are durable in the new active segment (or adopted back
    /// into the live set by [`SegmentedWal::adopt_recovered`]).
    replayed_files: Vec<String>,
    /// Replication retention floor: every record with a sequence number at
    /// or below the floor has been acknowledged by every replica. `None`
    /// means no replication — segments retire freely.
    retention_floor: Option<SeqNo>,
    /// Sealed segments whose retire was requested but blocked because a
    /// lagging replica may still need them (their `last_seq` exceeds the
    /// retention floor). Re-examined every time the floor advances.
    pending_retire: Vec<u64>,
    next_id: u64,
    /// Epoch of the most recently appended record.
    appended_epoch: u64,
    /// Epoch through which records are known durable.
    synced_epoch: u64,
    last_sync: Instant,
    /// Set when an append or fsync on the active segment failed. A failed
    /// append can leave a torn record in the middle of the segment; anything
    /// appended after it would be silently discarded at replay. The log
    /// therefore refuses further appends until
    /// [`SegmentedWal::recover_in_place`] succeeds: the intact record
    /// prefix of the damaged segment is re-staged into a fresh, fsynced
    /// segment and writability is restored without a reopen. While recovery
    /// itself keeps failing (persistent fault), the flag stays set and
    /// every write-path call escalates the storage error.
    damaged: bool,
}

/// One replayed WAL file, grouped so recovery can adopt sealed segments in
/// place instead of re-logging their records one by one.
#[derive(Debug, Clone)]
pub struct RecoveredSegment {
    /// Segment id; `None` for legacy single-file WALs (never adoptable).
    pub id: Option<u64>,
    /// The file the records came from.
    pub file_name: String,
    /// Byte length of the intact record prefix.
    pub bytes: u64,
    /// Whether this file ended cleanly (no torn or corrupt tail).
    pub clean: bool,
    /// The intact records, in append order.
    pub records: Vec<WalRecord>,
}

/// Outcome of WAL recovery at open, grouped per replayed file.
#[derive(Debug, Default, Clone)]
pub struct WalRecovery {
    /// Every replayed file, in replay order.
    pub segments: Vec<RecoveredSegment>,
    /// False if a torn or corrupt tail was discarded somewhere.
    pub clean: bool,
}

impl WalRecovery {
    /// Every intact record of the live segments, in replay order.
    pub fn records(&self) -> impl Iterator<Item = &WalRecord> + '_ {
        self.segments.iter().flat_map(|s| s.records.iter())
    }

    /// Total number of recovered records.
    pub fn num_records(&self) -> usize {
        self.segments.iter().map(|s| s.records.len()).sum()
    }

    /// True when no records were recovered.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(|s| s.records.is_empty())
    }

    /// Total intact bytes across the replayed files — the volume a re-log
    /// would rewrite, and what in-place adoption avoids.
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes).sum()
    }

    /// True when every recovered record sits in a numbered segment that
    /// ended cleanly, so the whole tail can be adopted in place.
    pub fn adoptable(&self) -> bool {
        self.clean
            && !self.is_empty()
            && self
                .segments
                .iter()
                .all(|s| s.records.is_empty() || s.id.is_some())
    }
}

/// The segmented write-ahead log manager. One per engine.
pub struct SegmentedWal {
    storage: StorageRef,
    policy: WalSyncPolicy,
    inner: Mutex<WalInner>,
    /// Elects the group-commit leader: the writer holding this lock runs the
    /// fsync (with `inner` *released*, so appends overlap the sync); every
    /// writer queued behind it re-checks `synced_epoch` on entry and is
    /// acknowledged without an fsync of its own when the leader covered it.
    sync_lock: Mutex<()>,
    stats: WalStats,
    /// Pre-resolved telemetry handles (fsync latency histogram, rotation and
    /// slow-fsync events); set once by [`SegmentedWal::attach_telemetry`].
    telemetry: OnceLock<WalTelemetry>,
}

impl SegmentedWal {
    /// Opens the WAL on `storage`, replaying the live segments.
    ///
    /// `manifest_segments` is the live-segment list recorded in the manifest;
    /// a segment file on disk that the manifest does not list (and that is
    /// not newer than everything the manifest knows) is an orphan left behind
    /// by a crash between a flush and its file deletion — it is deleted
    /// without replay. `legacy_names` are pre-segmentation single-file WAL
    /// names that are replayed (first) and migrated if present.
    ///
    /// The caller must re-insert the recovered records into its memtable,
    /// then either re-log them via [`SegmentedWal::append`] or — when the
    /// tail is large and [`WalRecovery::adoptable`] — keep the sealed files
    /// as-is via [`SegmentedWal::adopt_recovered`]; in both cases it then
    /// calls [`SegmentedWal::finish_recovery`] to delete the leftover
    /// replayed files.
    pub fn open(
        storage: &StorageRef,
        policy: WalSyncPolicy,
        manifest_segments: &[WalSegmentMeta],
        legacy_names: &[&str],
        next_min_seq: SeqNo,
    ) -> Result<(Self, WalRecovery)> {
        let mut disk_ids: Vec<u64> = storage
            .list()?
            .iter()
            .filter_map(|name| parse_segment_file_name(name))
            .collect();
        disk_ids.sort_unstable();
        let max_manifest_id = manifest_segments.iter().map(|s| s.id).max().unwrap_or(0);
        let live: std::collections::HashSet<u64> = manifest_segments.iter().map(|s| s.id).collect();

        let stats = WalStats::default();
        let mut recovery = WalRecovery {
            segments: Vec::new(),
            clean: true,
        };
        let mut replayed_files: Vec<String> = Vec::new();

        // Legacy single-file WALs predate every segment: replay them first.
        for name in legacy_names {
            if storage.exists(name) {
                let (records, clean, bytes) = recover_detailed(storage, name)?;
                stats
                    .records_replayed
                    .fetch_add(records.len() as u64, Ordering::Relaxed);
                stats.segments_replayed.fetch_add(1, Ordering::Relaxed);
                recovery.clean &= clean;
                recovery.segments.push(RecoveredSegment {
                    id: None,
                    file_name: name.to_string(),
                    bytes,
                    clean,
                    records,
                });
                replayed_files.push(name.to_string());
            }
        }

        let mut halted = false;
        for id in &disk_ids {
            let name = segment_file_name(*id);
            // A segment the manifest does not list was already flushed (the
            // crash hit between manifest persist and file deletion) — unless
            // it is newer than everything the manifest has seen, in which
            // case it must be replayed to be safe.
            if !live.contains(id) && *id <= max_manifest_id {
                match storage.delete(&name) {
                    Ok(()) | Err(Error::NotFound(_)) => {}
                    Err(e) => return Err(e),
                }
                stats
                    .orphan_segments_deleted
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if halted {
                // A torn record in an earlier segment means later segments
                // cannot be trusted to continue the sequence; leave them for
                // inspection but do not replay past the damage.
                continue;
            }
            if !storage.exists(&name) {
                // Listed in the manifest but already unlinked: the flush that
                // retired it completed. Nothing to replay.
                continue;
            }
            let (records, clean, bytes) = recover_detailed(storage, &name)?;
            stats
                .records_replayed
                .fetch_add(records.len() as u64, Ordering::Relaxed);
            stats.segments_replayed.fetch_add(1, Ordering::Relaxed);
            recovery.clean &= clean;
            recovery.segments.push(RecoveredSegment {
                id: Some(*id),
                file_name: name.clone(),
                bytes,
                clean,
                records,
            });
            replayed_files.push(name);
            if !clean {
                halted = true;
            }
        }

        let next_id = disk_ids.last().copied().unwrap_or(0).max(max_manifest_id) + 1;
        let min_seq = recovery
            .records()
            .next()
            .map(|r| r.start_seq.min(next_min_seq))
            .unwrap_or(next_min_seq);
        let active = ActiveSegment::create(
            storage,
            WalSegmentMeta {
                id: next_id,
                min_seq,
            },
        )?;
        let wal = SegmentedWal {
            storage: StorageRef::clone(storage),
            policy,
            sync_lock: Mutex::new(()),
            inner: Mutex::new(WalInner {
                active,
                sealed: Vec::new(),
                retired: Vec::new(),
                replayed_files,
                retention_floor: None,
                pending_retire: Vec::new(),
                next_id: next_id + 1,
                appended_epoch: 0,
                synced_epoch: 0,
                last_sync: Instant::now(),
                damaged: false,
            }),
            stats,
            telemetry: OnceLock::new(),
        };
        Ok((wal, recovery))
    }

    /// Registers this WAL with a shared telemetry hub under `shard_label`:
    /// every group-commit fsync lands in a latency histogram, slow fsyncs
    /// and segment rotations are logged as events. Idempotent — a second
    /// attach keeps the first registration.
    pub fn attach_telemetry(&self, hub: &Arc<Telemetry>, shard_label: &str) {
        let _ = self.telemetry.set(WalTelemetry::register(hub, shard_label));
    }

    /// Appends a batch whose first entry has sequence number `start_seq` to
    /// the active segment. Does **not** fsync — call
    /// [`SegmentedWal::ensure_durable`] with the returned ticket (outside any
    /// engine lock) to wait for durability per the configured policy.
    ///
    /// A failed append may leave a torn record in the segment; appending
    /// more records after it would put them beyond the damage, where replay
    /// silently discards them. The log therefore recovers in place before
    /// accepting the next record: the intact prefix is re-staged into a
    /// fresh segment (see the module docs) and this append is retried
    /// there. Only while recovery itself fails — a persistent storage fault
    /// — do appends keep erroring; reads and segment shipping continue
    /// throughout.
    pub fn append(&self, start_seq: SeqNo, batch: &WriteBatch) -> Result<WalTicket> {
        let mut inner = self.inner.lock();
        self.ensure_writable(&mut inner)?;
        if let Err(e) = inner.active.writer.append(start_seq, batch) {
            inner.damaged = true;
            self.note_error(WalErrorStage::Append);
            // Try to heal immediately: re-stage the intact prefix into a
            // fresh segment and retry this append there. If recovery (or
            // the retry) fails the original error escalates and the log
            // stays damaged for the next attempt.
            if self.recover_in_place(&mut inner).is_err() {
                return Err(e);
            }
            if let Err(retry_err) = inner.active.writer.append(start_seq, batch) {
                inner.damaged = true;
                self.note_error(WalErrorStage::Append);
                return Err(retry_err);
            }
        }
        inner.active.meta.min_seq = inner.active.meta.min_seq.min(start_seq);
        inner.appended_epoch += 1;
        self.stats.records_appended.fetch_add(1, Ordering::Relaxed);
        Ok(WalTicket {
            epoch: inner.appended_epoch,
        })
    }

    /// Returns Ok when the log can accept appends, attempting in-place
    /// recovery first if an earlier failure left it damaged. The error of a
    /// failed recovery is the underlying storage fault, so callers can
    /// classify it (transient, ENOSPC, ...) for their degradation policy.
    fn ensure_writable(&self, inner: &mut WalInner) -> Result<()> {
        if inner.damaged {
            self.recover_in_place(inner)?;
        }
        Ok(())
    }

    /// Counts and logs one write-path error (satellite: no WAL error is
    /// swallowed silently).
    fn note_error(&self, stage: WalErrorStage) {
        if let Some(telemetry) = self.telemetry.get() {
            telemetry.error_event(stage);
        }
    }

    /// Rotation-based in-place recovery: decode the damaged active
    /// segment's intact record prefix, re-stage it into a fresh fsynced
    /// segment, truncate the damaged file (so a crash before the next
    /// manifest persist cannot halt replay on its torn tail) and swap the
    /// fresh segment in as active. On success the log is writable again
    /// with zero acked-write loss and no reopen.
    fn recover_in_place(&self, inner: &mut WalInner) -> Result<()> {
        let start = Instant::now();
        match self.try_recover(inner) {
            Ok(restaged) => {
                inner.damaged = false;
                self.stats.recoveries.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .records_restaged
                    .fetch_add(restaged as u64, Ordering::Relaxed);
                if let Some(telemetry) = self.telemetry.get() {
                    telemetry.rotation_event(start.elapsed(), inner.active.writer.size());
                }
                Ok(())
            }
            Err(e) => {
                self.note_error(WalErrorStage::Recovery);
                Err(e)
            }
        }
    }

    fn try_recover(&self, inner: &mut WalInner) -> Result<usize> {
        let damaged_name = inner.active.meta.file_name();
        // The intact record prefix is everything that ever ack'd (and
        // possibly a torn tail, which decode_records drops).
        let records = match self.storage.open(&damaged_name) {
            Ok(file) => decode_records(&file.read_all()?)?.0,
            // The damaged segment never reached storage: nothing to re-stage.
            Err(Error::NotFound(_)) => Vec::new(),
            Err(e) => return Err(e),
        };
        let id = inner.next_id;
        let mut fresh = ActiveSegment::create(
            &self.storage,
            WalSegmentMeta {
                id,
                min_seq: inner.active.meta.min_seq,
            },
        )?;
        for record in &records {
            fresh.writer.append(record.start_seq, &record.batch)?;
        }
        fresh.writer.sync()?;
        // Truncate the damaged file: a torn tail left on disk would halt
        // replay of every later segment if we crashed before the manifest
        // stops listing it. An empty file replays clean; the id is retired
        // and the file deleted after the next manifest persist.
        let mut truncated = self.storage.create(&damaged_name)?;
        truncated.sync()?;
        inner.next_id += 1;
        let damaged = std::mem::replace(&mut inner.active, fresh);
        inner.retired.push(damaged.meta.id);
        // Everything re-staged is fsynced in the fresh segment: every epoch
        // appended so far is durable again.
        inner.synced_epoch = inner.appended_epoch;
        inner.last_sync = Instant::now();
        Ok(records.len())
    }

    /// Makes the record behind `ticket` durable per the sync policy.
    ///
    /// With [`WalSyncPolicy::Always`], the first writer to arrive syncs up to
    /// the newest appended record and every already-covered writer returns
    /// without an fsync of its own (group commit). With
    /// [`WalSyncPolicy::Interval`], a sync is issued at most once per window.
    pub fn ensure_durable(&self, ticket: &WalTicket) -> Result<()> {
        match self.policy {
            WalSyncPolicy::Never => Ok(()),
            WalSyncPolicy::Always => self.sync_through(ticket.epoch, None),
            WalSyncPolicy::Interval(window) => self.sync_through(ticket.epoch, Some(window)),
        }
    }

    /// Forces an fsync covering everything appended so far.
    pub fn sync(&self) -> Result<()> {
        let epoch = {
            let mut inner = self.inner.lock();
            self.ensure_writable(&mut inner)?;
            inner.appended_epoch
        };
        if epoch == 0 {
            return Ok(());
        }
        self.sync_off_lock(epoch)
    }

    fn sync_through(&self, epoch: u64, window: Option<Duration>) -> Result<()> {
        {
            let inner = self.inner.lock();
            if inner.synced_epoch >= epoch {
                // A rotation or a concurrent writer's fsync already covered
                // this record: acknowledged with no fsync of our own.
                self.stats.coalesced_acks.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            if let Some(window) = window {
                if inner.last_sync.elapsed() < window {
                    // Within the sync window: acknowledged immediately, the
                    // next window-expiring writer (or rotation) will cover us.
                    self.stats.coalesced_acks.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
            }
        }
        self.sync_off_lock(epoch)
    }

    /// Group commit: elect a leader via `sync_lock`, re-check coverage, then
    /// fsync through the active segment's shared handle with the append
    /// mutex *released*, so concurrent appends overlap a slow `sync_data`.
    /// Backends without shared handles fall back to syncing under the mutex.
    fn sync_off_lock(&self, epoch: u64) -> Result<()> {
        let _leader = self.sync_lock.lock();
        let (target, handle) = {
            let mut inner = self.inner.lock();
            if inner.synced_epoch >= epoch {
                // The previous leader's fsync covered this record while we
                // queued for leadership (or a rotation recovery re-staged and
                // fsynced everything).
                self.stats.coalesced_acks.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            self.ensure_writable(&mut inner)?;
            if inner.synced_epoch >= epoch {
                self.stats.coalesced_acks.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            (inner.appended_epoch, inner.active.sync_handle.clone())
        };
        let Some(handle) = handle else {
            let mut inner = self.inner.lock();
            self.ensure_writable(&mut inner)?;
            let target = inner.appended_epoch;
            return self.sync_locked(&mut inner, target);
        };
        // `target` and `handle` were captured together under `inner`, so
        // every record with epoch <= target is either in this file or in an
        // earlier segment already synced by its sealing rotation. Appends
        // racing with this fsync land in the same file (harmlessly synced
        // early) or in a newer segment (epoch > target, not claimed).
        let telemetry = self.telemetry.get();
        let fsync_start = telemetry.map(|_| Instant::now());
        let result = handle.sync();
        if let (Some(telemetry), Some(start)) = (telemetry, fsync_start) {
            telemetry.record_fsync(start.elapsed());
        }
        let mut inner = self.inner.lock();
        match result {
            Ok(()) => {
                inner.synced_epoch = inner.synced_epoch.max(target);
                inner.last_sync = Instant::now();
                self.stats.syncs.fetch_add(1, Ordering::Relaxed);
                self.stats.syncs_off_lock.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                // After a failed fsync the on-disk state of recent records is
                // unknown. Recover in place: the intact prefix is re-staged
                // into a fresh segment and fsynced there, which covers every
                // appended record — or the WAL stays damaged and the error
                // escalates.
                inner.damaged = true;
                self.note_error(WalErrorStage::Fsync);
                match self.recover_in_place(&mut inner) {
                    Ok(_) => Ok(()),
                    Err(_) => Err(e),
                }
            }
        }
    }

    fn sync_locked(&self, inner: &mut WalInner, target: u64) -> Result<()> {
        let telemetry = self.telemetry.get();
        let fsync_start = telemetry.map(|_| Instant::now());
        if let Err(e) = inner.active.writer.sync() {
            // An fsync failure leaves the on-disk state of every record since
            // the last successful sync unknown. Recover in place: decode the
            // intact prefix, re-stage it into a fresh fsynced segment. If
            // recovery succeeds the target epoch is covered; otherwise the
            // WAL stays damaged and the original error escalates.
            inner.damaged = true;
            self.note_error(WalErrorStage::Fsync);
            return match self.recover_in_place(inner) {
                Ok(_) => Ok(()),
                Err(_) => Err(e),
            };
        }
        inner.synced_epoch = inner.synced_epoch.max(target);
        inner.last_sync = Instant::now();
        self.stats.syncs.fetch_add(1, Ordering::Relaxed);
        if let (Some(telemetry), Some(start)) = (telemetry, fsync_start) {
            telemetry.record_fsync(start.elapsed());
        }
        Ok(())
    }

    /// Seals the active segment (syncing it, so the memtable it backs is
    /// fully durable) and opens a fresh one whose records will all carry
    /// sequence numbers `>= next_min_seq`. Returns the sealed segment's id,
    /// which the engine pairs with the frozen memtable for later release.
    pub fn rotate(&self, next_min_seq: SeqNo) -> Result<u64> {
        let telemetry = self.telemetry.get();
        let rotate_start = telemetry.map(|_| Instant::now());
        let mut inner = self.inner.lock();
        self.ensure_writable(&mut inner)?;
        let target = inner.appended_epoch;
        self.sync_locked(&mut inner, target)?;
        let id = inner.next_id;
        inner.next_id += 1;
        let new_active = match ActiveSegment::create(
            &self.storage,
            WalSegmentMeta {
                id,
                min_seq: next_min_seq,
            },
        ) {
            Ok(segment) => segment,
            Err(e) => {
                self.note_error(WalErrorStage::Rotation);
                return Err(e);
            }
        };
        let old = std::mem::replace(&mut inner.active, new_active);
        let sealed_id = old.meta.id;
        let sealed_bytes = old.writer.size();
        inner.sealed.push(SealedSegment {
            meta: old.meta,
            bytes: sealed_bytes,
            // Every record in the sealed segment precedes the new segment's
            // first sequence number.
            last_seq: next_min_seq.saturating_sub(1),
        });
        self.stats.rotations.fetch_add(1, Ordering::Relaxed);
        if let (Some(telemetry), Some(start)) = (telemetry, rotate_start) {
            telemetry.rotation_event(start.elapsed(), sealed_bytes);
        }
        Ok(sealed_id)
    }

    /// Removes `segment_id` from the live set. The file is **not** deleted
    /// yet: the engine first persists a manifest without the segment, then
    /// calls [`SegmentedWal::delete_retired`]. No-op for unknown ids, so the
    /// release path is idempotent.
    ///
    /// With a replication retention floor set, a segment that may still
    /// contain records above the floor is *pinned* instead: it stays in the
    /// live set (and the manifest, and on disk) until
    /// [`SegmentedWal::set_retention_floor`] advances past its last record.
    /// Replaying a pinned segment at recovery is harmless — it re-applies
    /// the same entries at the same sequence numbers.
    pub fn retire(&self, segment_id: u64) {
        let mut inner = self.inner.lock();
        let Some(seg) = inner.sealed.iter().find(|s| s.meta.id == segment_id) else {
            return;
        };
        if let Some(floor) = inner.retention_floor {
            if seg.last_seq > floor {
                if !inner.pending_retire.contains(&segment_id) {
                    inner.pending_retire.push(segment_id);
                }
                return;
            }
        }
        inner.sealed.retain(|s| s.meta.id != segment_id);
        inner.retired.push(segment_id);
    }

    /// Sets the replication retention floor: every record with a sequence
    /// number `<= seq` has been acknowledged by every replica, so segments
    /// ending at or below it may retire. Returns `true` when a previously
    /// pinned retire was released — the engine should then persist its
    /// manifest and call [`SegmentedWal::delete_retired`].
    pub fn set_retention_floor(&self, seq: SeqNo) -> bool {
        let mut inner = self.inner.lock();
        inner.retention_floor = Some(seq);
        let pending = std::mem::take(&mut inner.pending_retire);
        let mut released = false;
        for id in pending {
            let eligible = inner
                .sealed
                .iter()
                .find(|s| s.meta.id == id)
                .map(|s| s.last_seq <= seq);
            match eligible {
                Some(true) => {
                    inner.sealed.retain(|s| s.meta.id != id);
                    inner.retired.push(id);
                    released = true;
                }
                Some(false) => inner.pending_retire.push(id),
                // The segment vanished (e.g. `remove_all`): drop the request.
                None => {}
            }
        }
        released
    }

    /// The current replication retention floor, if one is set.
    pub fn retention_floor(&self) -> Option<SeqNo> {
        self.inner.lock().retention_floor
    }

    /// Moves the cleanly replayed numbered segments of `recovery` back into
    /// the live sealed set instead of deleting them: the recovered records
    /// stay durable in their original files, so the caller skips re-logging
    /// them (the ROADMAP "adopt old segments in place" path). Files with no
    /// records remain scheduled for deletion by
    /// [`SegmentedWal::finish_recovery`]. Returns the adopted segment ids,
    /// oldest first, which the engine pairs with the single frozen memtable
    /// it rebuilds from the recovered records.
    ///
    /// The caller must check [`WalRecovery::adoptable`] first; non-clean or
    /// legacy-file recoveries must take the re-log path.
    pub fn adopt_recovered(&self, recovery: &WalRecovery) -> Vec<u64> {
        let mut inner = self.inner.lock();
        let mut adopted = Vec::new();
        for seg in &recovery.segments {
            let Some(id) = seg.id else { continue };
            if seg.records.is_empty() || !seg.clean {
                continue;
            }
            if !inner.replayed_files.contains(&seg.file_name) {
                continue;
            }
            inner.replayed_files.retain(|f| *f != seg.file_name);
            let min_seq = seg.records.first().map(|r| r.start_seq).unwrap_or(0);
            let last_seq = seg.records.iter().map(|r| r.end_seq()).max().unwrap_or(0);
            inner.sealed.push(SealedSegment {
                meta: WalSegmentMeta { id, min_seq },
                bytes: seg.bytes,
                last_seq,
            });
            adopted.push(id);
        }
        inner.sealed.sort_by_key(|s| s.meta.id);
        adopted
    }

    /// Installs a shipped segment image as a new sealed segment of this log
    /// (replica catch-up): validates that the image decodes cleanly end to
    /// end, writes it under the next local segment id, syncs it, and adds it
    /// to the live sealed set. Returns the local id and the decoded records
    /// for the caller to replay into a frozen memtable — catch-up cost is
    /// one file write per shipped segment, not one append per record.
    pub fn adopt_segment_bytes(&self, bytes: &[u8]) -> Result<(u64, Vec<WalRecord>)> {
        let (records, clean, intact) = decode_records(bytes)?;
        if !clean || intact != bytes.len() as u64 || records.is_empty() {
            return Err(Error::Corruption(
                "shipped WAL segment image is torn, corrupt or empty".into(),
            ));
        }
        let min_seq = records.first().map(|r| r.start_seq).unwrap_or(0);
        let last_seq = records.iter().map(|r| r.end_seq()).max().unwrap_or(0);
        let mut inner = self.inner.lock();
        self.ensure_writable(&mut inner)?;
        let id = inner.next_id;
        inner.next_id += 1;
        let meta = WalSegmentMeta { id, min_seq };
        let mut file = self.storage.create(&meta.file_name())?;
        file.append(bytes)?;
        file.sync()?;
        inner.sealed.push(SealedSegment {
            meta,
            bytes: bytes.len() as u64,
            last_seq,
        });
        Ok((id, records))
    }

    /// Byte images of the live sealed segments that may contain records with
    /// sequence numbers above `from_seq`, oldest first — what a leader ships
    /// to a replica that is catching up from `from_seq`. Sealed files are
    /// immutable, so the reads run without the log lock held; a segment
    /// retired and deleted concurrently is skipped (the floor protocol
    /// guarantees a needed segment is never deleted).
    pub fn sealed_segments_from(&self, from_seq: SeqNo) -> Result<Vec<ShippedSegment>> {
        let picks: Vec<(WalSegmentMeta, SeqNo)> = {
            let inner = self.inner.lock();
            inner
                .sealed
                .iter()
                .filter(|s| s.last_seq > from_seq)
                .map(|s| (s.meta, s.last_seq))
                .collect()
        };
        let mut out = Vec::new();
        for (meta, last_seq) in picks {
            match self.storage.open(&meta.file_name()) {
                Ok(file) => out.push(ShippedSegment {
                    id: meta.id,
                    min_seq: meta.min_seq,
                    last_seq,
                    bytes: file.read_all()?,
                }),
                Err(Error::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Intact records currently in the active segment whose batches extend
    /// past `from_seq` — the live tail a catching-up replica still needs.
    /// The active file may be appended to concurrently; a torn final record
    /// is simply not returned yet (it will ship once complete).
    pub fn tail_records_from(&self, from_seq: SeqNo) -> Result<Vec<WalRecord>> {
        let name = { self.inner.lock().active.meta.file_name() };
        let data = match self.storage.open(&name) {
            Ok(file) => file.read_all()?,
            Err(Error::NotFound(_)) => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let (records, _clean, _bytes) = decode_records(&data)?;
        Ok(records
            .into_iter()
            .filter(|r| r.end_seq() > from_seq)
            .collect())
    }

    /// Deletes the files of every retired segment. Idempotent: missing files
    /// are ignored.
    pub fn delete_retired(&self) -> Result<()> {
        let retired = {
            let mut inner = self.inner.lock();
            std::mem::take(&mut inner.retired)
        };
        for id in retired {
            match self.storage.delete(&segment_file_name(id)) {
                Ok(()) | Err(Error::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
            self.stats.segments_deleted.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Syncs the re-logged recovery records and deletes the files replayed by
    /// [`SegmentedWal::open`]. Must be called once after recovery re-logging.
    pub fn finish_recovery(&self) -> Result<()> {
        let files = {
            let mut inner = self.inner.lock();
            let target = inner.appended_epoch;
            if target > 0 {
                self.sync_locked(&mut inner, target)?;
            }
            std::mem::take(&mut inner.replayed_files)
        };
        for name in files {
            match self.storage.delete(&name) {
                Ok(()) | Err(Error::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// The live segments (sealed + active), oldest first, as recorded in the
    /// manifest.
    pub fn live_segments(&self) -> Vec<WalSegmentMeta> {
        let inner = self.inner.lock();
        let mut out: Vec<WalSegmentMeta> = inner.sealed.iter().map(|s| s.meta).collect();
        out.push(inner.active.meta);
        out
    }

    /// Deletes every WAL file this manager knows about plus any stray
    /// segment file on disk. Idempotent. Intended for tests that simulate a
    /// crash after a clean flush; the engine should be dropped afterwards.
    pub fn remove_all(&self) -> Result<()> {
        let mut names: Vec<String> = {
            let mut inner = self.inner.lock();
            let mut names: Vec<String> = inner.sealed.iter().map(|s| s.meta.file_name()).collect();
            names.push(inner.active.meta.file_name());
            names.extend(
                std::mem::take(&mut inner.retired)
                    .into_iter()
                    .map(segment_file_name),
            );
            names.extend(std::mem::take(&mut inner.replayed_files));
            inner.sealed.clear();
            names
        };
        names.extend(
            self.storage
                .list()?
                .into_iter()
                .filter(|n| parse_segment_file_name(n).is_some()),
        );
        names.sort();
        names.dedup();
        for name in names {
            match self.storage.delete(&name) {
                Ok(()) | Err(Error::NotFound(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// True while an append/fsync failure is unrecovered. The log self-heals:
    /// the next append, sync or rotation re-attempts rotation recovery, so
    /// this flag stays set only while the underlying fault persists.
    pub fn is_damaged(&self) -> bool {
        self.inner.lock().damaged
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> WalStatsSnapshot {
        let (segments_live, live_bytes) = {
            let inner = self.inner.lock();
            (
                inner.sealed.len() as u64 + 1,
                inner.sealed.iter().map(|s| s.bytes).sum::<u64>() + inner.active.writer.size(),
            )
        };
        WalStatsSnapshot {
            records_appended: self.stats.records_appended.load(Ordering::Relaxed),
            syncs: self.stats.syncs.load(Ordering::Relaxed),
            syncs_off_lock: self.stats.syncs_off_lock.load(Ordering::Relaxed),
            coalesced_acks: self.stats.coalesced_acks.load(Ordering::Relaxed),
            rotations: self.stats.rotations.load(Ordering::Relaxed),
            segments_deleted: self.stats.segments_deleted.load(Ordering::Relaxed),
            records_replayed: self.stats.records_replayed.load(Ordering::Relaxed),
            segments_replayed: self.stats.segments_replayed.load(Ordering::Relaxed),
            orphan_segments_deleted: self.stats.orphan_segments_deleted.load(Ordering::Relaxed),
            recoveries: self.stats.recoveries.load(Ordering::Relaxed),
            records_restaged: self.stats.records_restaged.load(Ordering::Relaxed),
            segments_live,
            live_bytes,
        }
    }
}

impl Drop for SegmentedWal {
    /// Best-effort final sync. Under [`WalSyncPolicy::Interval`] the last
    /// window's acknowledged writes may not have been fsynced yet and no
    /// later writer will arrive to cover them; a clean drop must not lose
    /// them. (A hard power cut during a long write quiesce can still lose up
    /// to one window — the interval policy's documented trade-off.)
    fn drop(&mut self) {
        let inner = self.inner.get_mut();
        if !inner.damaged {
            if let Err(_e) = inner.active.writer.sync() {
                // Nothing left to retry against — the log is going away — but
                // a swallowed final-sync error must still be visible to
                // operators.
                if let Some(telemetry) = self.telemetry.get() {
                    telemetry.error_event(WalErrorStage::Drop);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{FaultStorage, MemStorage};

    fn batch(keys: &[u64]) -> WriteBatch {
        let mut b = WriteBatch::new();
        for &k in keys {
            b.put(k, k.to_le_bytes().to_vec());
        }
        b
    }

    fn open_fresh(storage: &StorageRef, policy: WalSyncPolicy) -> SegmentedWal {
        let (wal, recovery) = SegmentedWal::open(storage, policy, &[], &[], 1).unwrap();
        assert!(recovery.is_empty());
        wal
    }

    #[test]
    fn segment_names_roundtrip() {
        assert_eq!(segment_file_name(17), "wal-00000017.log");
        assert_eq!(parse_segment_file_name("wal-00000017.log"), Some(17));
        assert_eq!(
            parse_segment_file_name("wal-123456789.log"),
            Some(123456789)
        );
        assert_eq!(parse_segment_file_name("wal-current.log"), None);
        assert_eq!(parse_segment_file_name("00000001.sst"), None);
        assert_eq!(parse_segment_file_name("wal-.log"), None);
    }

    #[test]
    fn append_rotate_replay_across_segments() {
        let storage: StorageRef = MemStorage::new_ref();
        {
            let wal = open_fresh(&storage, WalSyncPolicy::Never);
            wal.append(1, &batch(&[1, 2])).unwrap();
            let sealed = wal.rotate(3).unwrap();
            assert_eq!(sealed, 1);
            wal.append(3, &batch(&[3])).unwrap();
            let sealed = wal.rotate(4).unwrap();
            assert_eq!(sealed, 2);
            wal.append(4, &batch(&[4, 5])).unwrap();
            assert_eq!(wal.live_segments().len(), 3);
        }
        // Reopen with the live set the manifest would carry.
        let live: Vec<WalSegmentMeta> = vec![
            WalSegmentMeta { id: 1, min_seq: 1 },
            WalSegmentMeta { id: 2, min_seq: 3 },
            WalSegmentMeta { id: 3, min_seq: 4 },
        ];
        let (wal, recovery) =
            SegmentedWal::open(&storage, WalSyncPolicy::Never, &live, &[], 6).unwrap();
        assert!(recovery.clean);
        let seqs: Vec<SeqNo> = recovery.records().map(|r| r.start_seq).collect();
        assert_eq!(seqs, vec![1, 3, 4], "records must replay in segment order");
        let stats = wal.stats();
        assert_eq!(stats.segments_replayed, 3);
        assert_eq!(stats.records_replayed, 3);
    }

    #[test]
    fn orphan_segments_are_deleted_not_replayed() {
        let storage: StorageRef = MemStorage::new_ref();
        {
            let wal = open_fresh(&storage, WalSyncPolicy::Never);
            wal.append(1, &batch(&[1])).unwrap();
            wal.rotate(2).unwrap(); // seals segment 1
            wal.append(2, &batch(&[2])).unwrap(); // active segment 2
        }
        // Manifest says only segment 2 is live: segment 1 was flushed but its
        // deletion raced a crash.
        let live = vec![WalSegmentMeta { id: 2, min_seq: 2 }];
        let (wal, recovery) =
            SegmentedWal::open(&storage, WalSyncPolicy::Never, &live, &[], 3).unwrap();
        assert_eq!(recovery.num_records(), 1);
        assert_eq!(recovery.records().next().unwrap().start_seq, 2);
        let stats = wal.stats();
        assert_eq!(stats.orphan_segments_deleted, 1);
        assert!(
            !storage.exists(&segment_file_name(1)),
            "orphan must be deleted"
        );
    }

    #[test]
    fn group_commit_coalesces_acks() {
        let storage: StorageRef = MemStorage::new_ref();
        let wal = open_fresh(&storage, WalSyncPolicy::Always);
        let t1 = wal.append(1, &batch(&[1])).unwrap();
        let t2 = wal.append(2, &batch(&[2])).unwrap();
        let t3 = wal.append(3, &batch(&[3])).unwrap();
        // The first durability wait syncs through the newest record...
        wal.ensure_durable(&t3).unwrap();
        // ...so the earlier writers are acknowledged without an fsync.
        wal.ensure_durable(&t1).unwrap();
        wal.ensure_durable(&t2).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.syncs, 1, "one fsync covers the whole window");
        assert_eq!(stats.coalesced_acks, 2);
        assert_eq!(stats.records_appended, 3);
    }

    #[test]
    fn interval_policy_bounds_sync_rate() {
        let storage: StorageRef = MemStorage::new_ref();
        let wal = open_fresh(&storage, WalSyncPolicy::Interval(Duration::from_secs(3600)));
        for seq in 1..=50u64 {
            let t = wal.append(seq, &batch(&[seq])).unwrap();
            wal.ensure_durable(&t).unwrap();
        }
        let stats = wal.stats();
        assert!(
            stats.syncs <= 1,
            "within one window at most one sync may be issued, got {}",
            stats.syncs
        );
        assert_eq!(stats.coalesced_acks + stats.syncs, 50);
    }

    #[test]
    fn rotation_covers_pending_durability_waits() {
        let storage: StorageRef = MemStorage::new_ref();
        let wal = open_fresh(&storage, WalSyncPolicy::Always);
        let t = wal.append(1, &batch(&[1])).unwrap();
        wal.rotate(2).unwrap();
        wal.ensure_durable(&t).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.syncs, 1, "only the rotation's seal sync runs");
        assert_eq!(stats.coalesced_acks, 1);
    }

    #[test]
    fn retire_then_delete_is_idempotent() {
        let storage: StorageRef = MemStorage::new_ref();
        let wal = open_fresh(&storage, WalSyncPolicy::Never);
        wal.append(1, &batch(&[1])).unwrap();
        let sealed = wal.rotate(2).unwrap();
        assert!(storage.exists(&segment_file_name(sealed)));
        wal.retire(sealed);
        assert_eq!(
            wal.live_segments().len(),
            1,
            "retired segment leaves the live set"
        );
        // The file survives until delete_retired (manifest-first ordering).
        assert!(storage.exists(&segment_file_name(sealed)));
        wal.delete_retired().unwrap();
        assert!(!storage.exists(&segment_file_name(sealed)));
        // Releasing again is a no-op.
        wal.retire(sealed);
        wal.delete_retired().unwrap();
        assert_eq!(wal.stats().segments_deleted, 1);
    }

    #[test]
    fn torn_middle_segment_halts_replay_of_later_segments() {
        let storage: StorageRef = MemStorage::new_ref();
        {
            let wal = open_fresh(&storage, WalSyncPolicy::Never);
            wal.append(1, &batch(&[1])).unwrap();
            wal.rotate(2).unwrap();
            wal.append(2, &batch(&[2])).unwrap();
            wal.rotate(3).unwrap();
            wal.append(3, &batch(&[3])).unwrap();
        }
        // Corrupt segment 2 (truncate its record mid-payload).
        let name = segment_file_name(2);
        let full = storage.open(&name).unwrap().read_all().unwrap();
        let mut f = storage.create(&name).unwrap();
        f.append(&full[..full.len() - 2]).unwrap();
        let live = vec![
            WalSegmentMeta { id: 1, min_seq: 1 },
            WalSegmentMeta { id: 2, min_seq: 2 },
            WalSegmentMeta { id: 3, min_seq: 3 },
        ];
        let (_, recovery) =
            SegmentedWal::open(&storage, WalSyncPolicy::Never, &live, &[], 4).unwrap();
        assert!(!recovery.clean);
        assert!(!recovery.adoptable(), "a torn tail must not be adopted");
        let seqs: Vec<SeqNo> = recovery.records().map(|r| r.start_seq).collect();
        assert_eq!(seqs, vec![1], "replay stops at the damaged segment");
    }

    #[test]
    fn legacy_wal_is_migrated() {
        let storage: StorageRef = MemStorage::new_ref();
        {
            let mut legacy = WalWriter::create(&storage, "wal-current.log", false).unwrap();
            legacy.append(1, &batch(&[1, 2])).unwrap();
        }
        let (wal, recovery) =
            SegmentedWal::open(&storage, WalSyncPolicy::Never, &[], &["wal-current.log"], 3)
                .unwrap();
        assert_eq!(recovery.num_records(), 1);
        assert!(
            !recovery.adoptable(),
            "legacy single-file WALs are never adoptable"
        );
        // Re-log as the engine would, then finish.
        for r in recovery.records() {
            wal.append(r.start_seq, &r.batch).unwrap();
        }
        wal.finish_recovery().unwrap();
        assert!(
            !storage.exists("wal-current.log"),
            "legacy file migrated away"
        );
    }

    #[test]
    fn remove_all_is_idempotent() {
        let storage: StorageRef = MemStorage::new_ref();
        let wal = open_fresh(&storage, WalSyncPolicy::Never);
        wal.append(1, &batch(&[1])).unwrap();
        wal.rotate(2).unwrap();
        wal.append(2, &batch(&[2])).unwrap();
        wal.remove_all().unwrap();
        wal.remove_all().unwrap();
        assert!(storage
            .list()
            .unwrap()
            .iter()
            .all(|n| parse_segment_file_name(n).is_none()));
    }

    #[test]
    fn failed_append_recovers_in_place_once_fault_clears() {
        use crate::storage::{FaultConfig, FaultInjectingStorage};
        let base = MemStorage::new_ref();
        let faulty = std::sync::Arc::new(FaultInjectingStorage::new(StorageRef::clone(&base)));
        let storage: StorageRef = faulty.clone();
        let (wal, _) = SegmentedWal::open(&storage, WalSyncPolicy::Never, &[], &[], 1).unwrap();
        wal.append(1, &batch(&[1])).unwrap();
        faulty.set_config(FaultConfig {
            fail_append: true,
            ..Default::default()
        });
        // While the fault persists, appends error (recovery re-staging hits
        // the same fault) and the log reports damage.
        assert!(wal.append(2, &batch(&[2])).is_err());
        assert!(wal.is_damaged());
        assert!(wal.append(3, &batch(&[3])).is_err());
        // Fault cleared: the next append rotation-recovers in place — no
        // reopen — and the acked prefix survives.
        faulty.set_config(FaultConfig::default());
        wal.append(2, &batch(&[2])).unwrap();
        assert!(!wal.is_damaged());
        let stats = wal.stats();
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.records_restaged, 1, "acked record 1 re-staged");
        let seqs: Vec<SeqNo> = wal
            .tail_records_from(0)
            .unwrap()
            .iter()
            .map(|r| r.start_seq)
            .collect();
        assert_eq!(seqs, vec![1, 2], "acked writes survive, rejected one gone");
        // Rotation works again too.
        wal.rotate(3).unwrap();
        drop(wal);
        // A reopen after recovery replays the same clean state.
        let live: Vec<WalSegmentMeta> = vec![
            WalSegmentMeta { id: 1, min_seq: 1 },
            WalSegmentMeta { id: 2, min_seq: 1 },
            WalSegmentMeta { id: 3, min_seq: 3 },
        ];
        let (_wal, recovery) =
            SegmentedWal::open(&storage, WalSyncPolicy::Never, &live, &[], 4).unwrap();
        assert_eq!(recovery.num_records(), 2);
    }

    #[test]
    fn torn_append_recovers_transparently() {
        let (storage, faults) = FaultStorage::wrap(MemStorage::new_ref(), 42);
        let (wal, _) = SegmentedWal::open(&storage, WalSyncPolicy::Never, &[], &[], 1).unwrap();
        wal.append(1, &batch(&[1])).unwrap();
        faults.tear_appends(1);
        // The torn append is retried into a fresh segment after in-place
        // recovery: the caller sees success, not an error.
        wal.append(2, &batch(&[2])).unwrap();
        assert!(!wal.is_damaged());
        assert_eq!(wal.stats().recoveries, 1);
        let seqs: Vec<SeqNo> = wal
            .tail_records_from(0)
            .unwrap()
            .iter()
            .map(|r| r.start_seq)
            .collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(faults.injected_faults(), 1);
    }

    #[test]
    fn write_path_syncs_run_off_the_append_lock() {
        let storage: StorageRef = MemStorage::new_ref();
        let wal = open_fresh(&storage, WalSyncPolicy::Always);
        let t = wal.append(1, &batch(&[1])).unwrap();
        wal.ensure_durable(&t).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.syncs, 1);
        assert_eq!(
            stats.syncs_off_lock, 1,
            "group-commit fsync must use the shared-handle path"
        );
        // Rotation seals under the lock; its sync is not an off-lock one.
        wal.rotate(2).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.syncs, 2);
        assert_eq!(stats.syncs_off_lock, 1);
    }

    #[test]
    fn transient_fsync_error_recovers_without_reopen() {
        let (storage, faults) = FaultStorage::wrap(MemStorage::new_ref(), 7);
        let (wal, _) = SegmentedWal::open(&storage, WalSyncPolicy::Always, &[], &[], 1).unwrap();
        let t = wal.append(1, &batch(&[1])).unwrap();
        faults.fail_syncs(1);
        // The failed group-commit fsync triggers in-place recovery; the
        // re-staged fresh segment is fsynced, so the ticket is durable and
        // the caller gets an ack — same WAL object, no reopen.
        wal.ensure_durable(&t).unwrap();
        assert!(!wal.is_damaged());
        assert_eq!(wal.stats().recoveries, 1);
        // Writes continue in the fresh segment.
        let t2 = wal.append(2, &batch(&[2])).unwrap();
        wal.ensure_durable(&t2).unwrap();
        let seqs: Vec<SeqNo> = wal
            .tail_records_from(0)
            .unwrap()
            .iter()
            .map(|r| r.start_seq)
            .collect();
        assert_eq!(seqs, vec![1, 2], "zero acked-write loss across recovery");
    }

    #[test]
    fn persistent_fsync_error_keeps_wal_damaged_until_cleared() {
        let (storage, faults) = FaultStorage::wrap(MemStorage::new_ref(), 7);
        let (wal, _) = SegmentedWal::open(&storage, WalSyncPolicy::Always, &[], &[], 1).unwrap();
        let t = wal.append(1, &batch(&[1])).unwrap();
        faults.set_sync_persistent(true);
        // Recovery itself needs a working fsync, so a persistent fault keeps
        // the log damaged and the durability error escalates to the caller.
        assert!(wal.ensure_durable(&t).is_err());
        assert!(wal.is_damaged());
        assert!(wal.append(2, &batch(&[2])).is_err());
        // The moment the device heals, the next write self-recovers.
        faults.clear();
        let t2 = wal.append(2, &batch(&[2])).unwrap();
        wal.ensure_durable(&t2).unwrap();
        assert!(!wal.is_damaged());
        let seqs: Vec<SeqNo> = wal
            .tail_records_from(0)
            .unwrap()
            .iter()
            .map(|r| r.start_seq)
            .collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn adopt_recovered_keeps_segments_live() {
        let storage: StorageRef = MemStorage::new_ref();
        {
            let wal = open_fresh(&storage, WalSyncPolicy::Never);
            wal.append(1, &batch(&[1, 2])).unwrap();
            wal.rotate(3).unwrap();
            wal.append(3, &batch(&[3])).unwrap();
        }
        let live = vec![
            WalSegmentMeta { id: 1, min_seq: 1 },
            WalSegmentMeta { id: 2, min_seq: 3 },
        ];
        let (wal, recovery) =
            SegmentedWal::open(&storage, WalSyncPolicy::Never, &live, &[], 4).unwrap();
        assert!(recovery.adoptable());
        assert!(recovery.total_bytes() > 0);
        let adopted = wal.adopt_recovered(&recovery);
        assert_eq!(adopted, vec![1, 2]);
        // The adopted segments are live again (plus the fresh active one)...
        let segs = wal.live_segments();
        assert_eq!(segs.iter().map(|s| s.id).collect::<Vec<_>>(), vec![1, 2, 3]);
        // ...and finish_recovery must NOT delete their files.
        wal.finish_recovery().unwrap();
        assert!(storage.exists(&segment_file_name(1)));
        assert!(storage.exists(&segment_file_name(2)));
        // Retiring an adopted segment works like any sealed one.
        wal.retire(1);
        wal.delete_retired().unwrap();
        assert!(!storage.exists(&segment_file_name(1)));
    }

    #[test]
    fn retention_floor_pins_needed_segments() {
        let storage: StorageRef = MemStorage::new_ref();
        let wal = open_fresh(&storage, WalSyncPolicy::Never);
        wal.append(1, &batch(&[1, 2])).unwrap(); // seqs 1-2
        let seg1 = wal.rotate(3).unwrap();
        wal.append(3, &batch(&[3, 4])).unwrap(); // seqs 3-4
        let seg2 = wal.rotate(5).unwrap();
        // A replica has only acked through seq 2: segment 2 (seqs 3-4) must
        // survive a retire request, segment 1 (seqs 1-2) may go.
        wal.set_retention_floor(2);
        wal.retire(seg1);
        wal.retire(seg2);
        let live: Vec<u64> = wal.live_segments().iter().map(|s| s.id).collect();
        assert!(!live.contains(&seg1), "acked-past segment retires");
        assert!(live.contains(&seg2), "needed segment stays pinned");
        wal.delete_retired().unwrap();
        assert!(storage.exists(&segment_file_name(seg2)));
        // Once every replica acks past it, the pending retire releases.
        assert!(wal.set_retention_floor(4));
        let live: Vec<u64> = wal.live_segments().iter().map(|s| s.id).collect();
        assert!(!live.contains(&seg2));
        wal.delete_retired().unwrap();
        assert!(!storage.exists(&segment_file_name(seg2)));
    }

    #[test]
    fn shipped_segments_roundtrip_through_adoption() {
        let leader_storage: StorageRef = MemStorage::new_ref();
        let leader = open_fresh(&leader_storage, WalSyncPolicy::Never);
        leader.append(1, &batch(&[1, 2])).unwrap();
        leader.rotate(3).unwrap();
        leader.append(3, &batch(&[3])).unwrap();
        leader.rotate(4).unwrap();
        leader.append(4, &batch(&[4])).unwrap();

        // Ship everything above seq 0 (a fresh replica).
        let shipped = leader.sealed_segments_from(0).unwrap();
        assert_eq!(shipped.len(), 2);
        assert_eq!(shipped[0].min_seq, 1);
        assert_eq!(shipped[0].last_seq, 2);
        let tail = leader.tail_records_from(0).unwrap();
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].start_seq, 4);
        // A replica caught up through seq 2 needs only the second segment.
        assert_eq!(leader.sealed_segments_from(2).unwrap().len(), 1);
        assert!(leader.sealed_segments_from(4).unwrap().is_empty());

        // The replica adopts the images wholesale.
        let replica_storage: StorageRef = MemStorage::new_ref();
        let replica = open_fresh(&replica_storage, WalSyncPolicy::Never);
        let mut replayed = Vec::new();
        for seg in &shipped {
            let (_, records) = replica.adopt_segment_bytes(&seg.bytes).unwrap();
            replayed.extend(records);
        }
        let seqs: Vec<SeqNo> = replayed.iter().map(|r| r.start_seq).collect();
        assert_eq!(seqs, vec![1, 3]);
        assert_eq!(replica.live_segments().len(), 3); // active + 2 adopted

        // A torn image is rejected outright.
        let mut torn = shipped[0].bytes.clone();
        torn.truncate(torn.len() - 1);
        assert!(replica.adopt_segment_bytes(&torn).is_err());
    }

    #[test]
    fn stats_track_live_bytes() {
        let storage: StorageRef = MemStorage::new_ref();
        let wal = open_fresh(&storage, WalSyncPolicy::Never);
        wal.append(1, &batch(&[1, 2, 3])).unwrap();
        let stats = wal.stats();
        assert_eq!(stats.segments_live, 1);
        assert!(stats.live_bytes > 0);
        wal.rotate(4).unwrap();
        assert_eq!(wal.stats().segments_live, 2);
    }
}
