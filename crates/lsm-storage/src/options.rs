//! Engine configuration.

use crate::sst::TableOptions;

/// Which SST a compaction job picks from an overflowing level.
///
/// Mirrors the two RocksDB policies the paper compares in Figure 2:
/// `kByCompensatedSize` (largest file first) and `kOldestSmallestSeqFirst`
/// (the file whose data has gone the longest without compaction). The paper
/// adopts the time-based priority because it best preserves the
/// "data age increases with level depth" property LASER relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionPriority {
    /// Pick the largest SST in the overflowing level (RocksDB `kByCompensatedSize`).
    ByCompensatedSize,
    /// Pick the SST containing the oldest data, i.e. the smallest minimum
    /// sequence number (RocksDB `kOldestSmallestSeqFirst`).
    #[default]
    OldestSmallestSeqFirst,
}

/// Options for the plain key-value LSM engine ([`crate::db::LsmDb`]).
#[derive(Debug, Clone)]
pub struct LsmOptions {
    /// Size at which the mutable memtable is frozen and flushed, in bytes.
    pub memtable_size_bytes: usize,
    /// Capacity of Level-0 in bytes; level `i` holds `level0 * T^i` bytes.
    pub level0_size_bytes: u64,
    /// Size ratio `T` between adjacent levels.
    pub size_ratio: u64,
    /// Maximum number of on-disk levels `L` (levels are numbered 0..L-1).
    pub num_levels: usize,
    /// Target size for individual SST files produced by compaction.
    pub sst_target_size_bytes: u64,
    /// Compaction picking policy.
    pub compaction_priority: CompactionPriority,
    /// Whether acknowledged writes wait for WAL durability. Concurrent
    /// writers coalesce into one fsync per sync window (group commit).
    pub sync_wal: bool,
    /// Group-commit window in milliseconds, effective only with `sync_wal`:
    /// 0 means every acknowledged write waits for an fsync covering it
    /// (strict group commit); a positive value issues at most one fsync per
    /// window, bounding data loss to that window.
    pub sync_wal_interval_ms: u64,
    /// Whether compaction is triggered automatically after writes and flushes.
    /// Disable to schedule compaction manually (as the Fig. 7(e) experiment does).
    /// Ignored while a background maintenance scheduler is attached — the
    /// scheduler then owns compaction.
    pub auto_compact: bool,
    /// Capacity of the shared decoded-block cache in bytes; 0 disables it.
    pub block_cache_bytes: usize,
    /// With background maintenance attached: Level-0 file count (including
    /// frozen memtables awaiting flush) at which writers briefly yield to let
    /// maintenance catch up.
    pub l0_slowdown_files: usize,
    /// With background maintenance attached: Level-0 file count at which
    /// writers block until a background job completes.
    pub l0_stall_files: usize,
    /// With background maintenance attached: pending background jobs at which
    /// writers block (bounds queue depth).
    pub max_pending_jobs: usize,
    /// Recovery tail size (intact WAL bytes) at or above which a clean
    /// recovery adopts the replayed sealed segments in place instead of
    /// re-logging every record into a fresh active segment. Adoption turns
    /// recovery I/O from O(records re-logged) into O(1) manifest work; small
    /// tails keep the re-log path, which compacts many tiny segments into
    /// one. `u64::MAX` disables adoption.
    pub recovery_adopt_bytes: u64,
    /// SST/block construction parameters.
    pub table: TableOptions,
}

impl Default for LsmOptions {
    fn default() -> Self {
        LsmOptions {
            memtable_size_bytes: 4 << 20,
            level0_size_bytes: 64 << 20,
            size_ratio: 2,
            num_levels: 7,
            sst_target_size_bytes: 8 << 20,
            compaction_priority: CompactionPriority::default(),
            sync_wal: false,
            sync_wal_interval_ms: 0,
            auto_compact: true,
            block_cache_bytes: 32 << 20,
            l0_slowdown_files: 8,
            l0_stall_files: 16,
            max_pending_jobs: 64,
            recovery_adopt_bytes: 1 << 20,
            table: TableOptions::default(),
        }
    }
}

impl LsmOptions {
    /// A small configuration suitable for unit tests and scaled-down
    /// experiments: tiny memtable and Level-0 so the tree develops several
    /// populated levels with modest data volumes.
    pub fn small_for_tests() -> Self {
        LsmOptions {
            memtable_size_bytes: 16 << 10,
            level0_size_bytes: 32 << 10,
            size_ratio: 2,
            num_levels: 5,
            sst_target_size_bytes: 16 << 10,
            compaction_priority: CompactionPriority::default(),
            sync_wal: false,
            sync_wal_interval_ms: 0,
            auto_compact: true,
            // Tests opt into caching explicitly so I/O-accounting experiments
            // keep the paper's uncached cost shapes.
            block_cache_bytes: 0,
            l0_slowdown_files: 8,
            l0_stall_files: 16,
            max_pending_jobs: 64,
            // Small enough that the scaled-down tests exercise the adoption
            // path with a few KB of unflushed tail.
            recovery_adopt_bytes: 4 << 10,
            table: TableOptions::default(),
        }
    }

    /// Capacity of level `i` in bytes.
    pub fn level_capacity_bytes(&self, level: usize) -> u64 {
        self.level0_size_bytes
            .saturating_mul(self.size_ratio.saturating_pow(level as u32))
    }

    /// Validates option consistency.
    pub fn validate(&self) -> crate::error::Result<()> {
        if self.size_ratio < 2 {
            return Err(crate::error::Error::invalid(
                "size_ratio must be at least 2",
            ));
        }
        if self.num_levels == 0 {
            return Err(crate::error::Error::invalid(
                "num_levels must be at least 1",
            ));
        }
        if self.memtable_size_bytes == 0 || self.level0_size_bytes == 0 {
            return Err(crate::error::Error::invalid("sizes must be non-zero"));
        }
        if self.l0_slowdown_files == 0 || self.l0_stall_files < self.l0_slowdown_files {
            return Err(crate::error::Error::invalid(
                "backpressure thresholds require 1 <= l0_slowdown_files <= l0_stall_files",
            ));
        }
        if self.max_pending_jobs == 0 {
            return Err(crate::error::Error::invalid(
                "max_pending_jobs must be non-zero",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        LsmOptions::default().validate().unwrap();
        LsmOptions::small_for_tests().validate().unwrap();
    }

    #[test]
    fn level_capacity_grows_geometrically() {
        let mut o = LsmOptions {
            level0_size_bytes: 100,
            size_ratio: 2,
            ..LsmOptions::default()
        };
        assert_eq!(o.level_capacity_bytes(0), 100);
        assert_eq!(o.level_capacity_bytes(1), 200);
        assert_eq!(o.level_capacity_bytes(4), 1600);
        o.size_ratio = 10;
        assert_eq!(o.level_capacity_bytes(3), 100_000);
    }

    #[test]
    fn invalid_options_rejected() {
        let o = LsmOptions {
            size_ratio: 1,
            ..LsmOptions::default()
        };
        assert!(o.validate().is_err());
        let o = LsmOptions {
            num_levels: 0,
            ..LsmOptions::default()
        };
        assert!(o.validate().is_err());
        let o = LsmOptions {
            memtable_size_bytes: 0,
            ..LsmOptions::default()
        };
        assert!(o.validate().is_err());
        let o = LsmOptions {
            l0_slowdown_files: 9,
            l0_stall_files: 8,
            ..LsmOptions::default()
        };
        assert!(o.validate().is_err());
        let o = LsmOptions {
            max_pending_jobs: 0,
            ..LsmOptions::default()
        };
        assert!(o.validate().is_err());
    }

    #[test]
    fn default_priority_is_time_based() {
        assert_eq!(
            CompactionPriority::default(),
            CompactionPriority::OldestSmallestSeqFirst
        );
    }
}
