//! A plain key-value LSM-Tree engine with leveled compaction.
//!
//! This is the substrate's stand-in for unmodified RocksDB: a row-style
//! LSM-Tree where each entry is an opaque value blob. It provides the
//! baseline behaviour the paper relies on — write batching, flush to Level-0,
//! leveled compaction with a configurable picking priority, bloom-filtered
//! point lookups and merged range scans — and is used directly by the
//! Figure 2 experiment (key age distribution across levels under the two
//! compaction priorities).
//!
//! The Real-Time LSM-Tree engine (crate `laser-core`) builds its per-level,
//! per-column-group structure from the same components (memtable, SSTs,
//! merging iterators) rather than wrapping this type, because its compaction
//! jobs span column groups rather than whole levels.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use telemetry::trace::{self, TraceKind};
use telemetry::Telemetry;

use crate::cache::{BlockCache, ScopedCache};
use crate::degrade::{DegradationController, DegradedInfo};
use crate::error::{Error, Result};
use crate::iterator::{
    BoxedIterator, KvIterator, LevelConcatIterator, MergingIterator, NaiveMergingIterator,
    RangeIterator,
};
use crate::maintenance::{
    attach_engine, BackpressureConfig, BackpressureGate, EngineMaintenance, JobKind, JobScheduler,
    MaintainableEngine, MaintenanceHandle, Throttle,
};
use crate::manifest::{read_manifest, write_manifest, FileMeta, VersionSnapshot};
use crate::memtable::{FrozenMemTable, MemTable, MemTableRef};
use crate::observability::EngineTelemetry;
use crate::options::{CompactionPriority, LsmOptions};
use crate::retry::{retry_io, RetryPolicy};
use crate::sst::{TableBuilder, TableHandle};
use crate::storage::StorageRef;
use crate::types::{InternalKey, SeqNo, UserKey, ValueKind, WriteBatch, MAX_SEQNO};
use crate::wal_segment::{SegmentedWal, WalStatsSnapshot, WalSyncPolicy};

/// Pre-segmentation WAL file name, still recognised (and migrated) at open.
const LEGACY_WAL_NAME: &str = "wal-current.log";

/// Counters describing flush/compaction work performed by the engine.
#[derive(Debug, Default)]
pub struct CompactionStats {
    /// Number of memtable flushes.
    pub flushes: AtomicU64,
    /// Number of compaction jobs run.
    pub compactions: AtomicU64,
    /// Total bytes written by flushes and compactions (write amplification).
    pub bytes_written: AtomicU64,
    /// Total bytes read by compactions.
    pub bytes_read: AtomicU64,
    /// Total entries written out by flushes and compactions.
    pub entries_written: AtomicU64,
    /// Writes that blocked on backpressure (stall threshold reached).
    pub stall_events: AtomicU64,
    /// Writes that briefly yielded on backpressure (slowdown threshold).
    pub slowdown_events: AtomicU64,
    /// Entries dropped because they fell outside the engine's key bound
    /// (trim compactions plus regular compactions under a bound).
    pub trimmed_entries: AtomicU64,
    /// Trim compactions run (out-of-range SSTs rewritten or dropped).
    pub trim_compactions: AtomicU64,
    /// Logical bytes accepted on the write path (key + value payload),
    /// before any storage overhead — the denominator of measured write
    /// amplification.
    pub ingest_bytes: AtomicU64,
}

impl CompactionStats {
    /// Point-in-time snapshot as plain integers.
    pub fn snapshot(&self) -> CompactionStatsSnapshot {
        CompactionStatsSnapshot {
            flushes: self.flushes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            entries_written: self.entries_written.load(Ordering::Relaxed),
            stall_events: self.stall_events.load(Ordering::Relaxed),
            slowdown_events: self.slowdown_events.load(Ordering::Relaxed),
            trimmed_entries: self.trimmed_entries.load(Ordering::Relaxed),
            trim_compactions: self.trim_compactions.load(Ordering::Relaxed),
            ingest_bytes: self.ingest_bytes.load(Ordering::Relaxed),
            ..Default::default()
        }
    }
}

/// Owned snapshot of [`CompactionStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionStatsSnapshot {
    /// Number of memtable flushes.
    pub flushes: u64,
    /// Number of compaction jobs run.
    pub compactions: u64,
    /// Total bytes written by flushes and compactions.
    pub bytes_written: u64,
    /// Total bytes read by compactions.
    pub bytes_read: u64,
    /// Total entries written out.
    pub entries_written: u64,
    /// Writes that blocked on backpressure.
    pub stall_events: u64,
    /// Writes that briefly yielded on backpressure.
    pub slowdown_events: u64,
    /// Entries dropped for lying outside the engine's key bound.
    pub trimmed_entries: u64,
    /// Trim compactions run.
    pub trim_compactions: u64,
    /// Logical bytes accepted on the write path (key + value payload).
    pub ingest_bytes: u64,
    /// Block-cache hits (0 when no cache is configured).
    pub cache_hits: u64,
    /// Block-cache misses (0 when no cache is configured).
    pub cache_misses: u64,
    /// Background jobs completed by an attached maintenance scheduler.
    pub bg_jobs_completed: u64,
    /// Background jobs that failed.
    pub bg_jobs_failed: u64,
    /// Background jobs queued or running at snapshot time.
    pub bg_jobs_pending: u64,
    /// Durability counters of the segmented write-ahead log.
    pub wal: WalStatsSnapshot,
}

impl CompactionStatsSnapshot {
    /// Counter increments since `earlier` (saturating, so comparing across
    /// an engine reopen or stats reset can never underflow). The embedded
    /// WAL snapshot applies its own saturating delta.
    pub fn delta_since(&self, earlier: &CompactionStatsSnapshot) -> CompactionStatsSnapshot {
        CompactionStatsSnapshot {
            flushes: self.flushes.saturating_sub(earlier.flushes),
            compactions: self.compactions.saturating_sub(earlier.compactions),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            entries_written: self.entries_written.saturating_sub(earlier.entries_written),
            stall_events: self.stall_events.saturating_sub(earlier.stall_events),
            slowdown_events: self.slowdown_events.saturating_sub(earlier.slowdown_events),
            trimmed_entries: self.trimmed_entries.saturating_sub(earlier.trimmed_entries),
            trim_compactions: self
                .trim_compactions
                .saturating_sub(earlier.trim_compactions),
            ingest_bytes: self.ingest_bytes.saturating_sub(earlier.ingest_bytes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            bg_jobs_completed: self
                .bg_jobs_completed
                .saturating_sub(earlier.bg_jobs_completed),
            bg_jobs_failed: self.bg_jobs_failed.saturating_sub(earlier.bg_jobs_failed),
            // Pending is a point-in-time gauge, not a counter.
            bg_jobs_pending: self.bg_jobs_pending,
            wal: self.wal.delta_since(&earlier.wal),
        }
    }
}

/// One SST file attached to a level.
#[derive(Clone, Debug)]
struct LevelFile {
    meta: FileMeta,
    table: TableHandle,
}

#[derive(Default)]
struct DbInner {
    mutable: Option<MemTableRef>,
    /// Frozen memtables awaiting flush (each paired with its WAL segment),
    /// oldest first.
    immutables: Vec<FrozenMemTable>,
    /// `levels[i]` holds the files of level `i`. Level 0 files may overlap and
    /// are ordered oldest-first; deeper levels hold disjoint files sorted by key.
    levels: Vec<Vec<LevelFile>>,
    next_file_number: u64,
    last_seq: SeqNo,
}

/// A plain key-value LSM-Tree database.
pub struct LsmDb {
    storage: StorageRef,
    options: LsmOptions,
    inner: RwLock<DbInner>,
    /// Segmented write-ahead log: one segment per memtable, group commit on
    /// the write path, manifest-tracked lifecycle.
    wal: SegmentedWal,
    stats: CompactionStats,
    /// Shared decoded-block cache (None when no cache is configured). May be
    /// a scoped view of a process-wide cache shared with other engines.
    cache: Option<ScopedCache>,
    /// Registered background scheduler handle; set once by
    /// [`LsmDb::attach_maintenance`]. While present, the write path enqueues
    /// flush/compaction jobs instead of running them inline.
    maintenance: OnceLock<MaintenanceHandle>,
    /// Serialises flush jobs so L0 keeps its oldest-first order.
    flush_lock: Mutex<()>,
    /// Serialises compaction jobs so two jobs never pick the same inputs.
    compaction_lock: Mutex<()>,
    /// Writers stalled on backpressure park here; maintenance jobs notify it.
    write_room: BackpressureGate,
    /// Pre-resolved telemetry handles; set once by
    /// [`LsmDb::attach_telemetry`]. While absent, instrumentation costs one
    /// branch per hot-path operation.
    telemetry: OnceLock<EngineTelemetry>,
    /// Optional key-range restriction (`[lo, hi]` inclusive). Set when this
    /// engine serves one shard of a sharded deployment: compactions drop
    /// entries outside the bound, and trim compactions proactively rewrite
    /// SSTs adopted from a pre-split parent that still carry out-of-range
    /// data. Reads are unaffected (the router never asks for out-of-range
    /// keys, and scans clamp to the bound's range at the sharding layer).
    key_bound: RwLock<Option<(UserKey, UserKey)>>,
    /// Point reads answered per level (index = level; memtable hits count
    /// as level 0, the level they would flush into). Feeds the advisor's
    /// per-level workload attribution.
    level_reads: Vec<AtomicU64>,
    /// Read-only degradation state: entered on persistent storage faults
    /// (after WAL rotation recovery and SST/manifest retries are exhausted),
    /// cleared automatically once a storage probe succeeds again.
    degradation: DegradationController,
}

impl LsmDb {
    /// Opens (or creates) a database on `storage`, recovering any previous
    /// state from the manifest and WAL. A private block cache is created per
    /// the `block_cache_bytes` option; use [`LsmDb::open_with_cache`] to
    /// share one process-wide cache across engines instead.
    pub fn open(storage: StorageRef, options: LsmOptions) -> Result<Self> {
        let cache = if options.block_cache_bytes > 0 {
            Some(ScopedCache::unscoped(BlockCache::new(
                options.block_cache_bytes,
            )))
        } else {
            None
        };
        Self::open_with_cache(storage, options, cache)
    }

    /// Opens (or creates) a database on `storage`, serving block reads
    /// through the given cache view instead of a private per-engine cache
    /// (`block_cache_bytes` is ignored). A sharded deployment passes every
    /// shard a differently-scoped view of one process-wide [`BlockCache`] so
    /// the global byte budget and per-shard accounting are shared.
    pub fn open_with_cache(
        storage: StorageRef,
        options: LsmOptions,
        cache: Option<ScopedCache>,
    ) -> Result<Self> {
        options.validate()?;
        let snapshot = read_manifest(&storage)?;
        let mut inner = DbInner {
            levels: vec![Vec::new(); options.num_levels],
            next_file_number: snapshot.next_file_number.max(1),
            last_seq: snapshot.last_seq,
            ..Default::default()
        };
        for meta in &snapshot.files {
            let table = TableHandle::open_with_cache(&storage, &meta.file_name(), cache.clone())?;
            let level = meta.level as usize;
            if level >= inner.levels.len() {
                return Err(Error::corruption(format!(
                    "manifest references level {level} but num_levels is {}",
                    options.num_levels
                )));
            }
            inner.levels[level].push(LevelFile {
                meta: meta.clone(),
                table,
            });
        }
        for (level, files) in inner.levels.iter_mut().enumerate() {
            if level == 0 {
                files.sort_by_key(|f| f.meta.max_seq);
            } else {
                files.sort_by_key(|f| f.meta.min_user_key);
            }
        }

        // Open the segmented WAL, replaying only the segments the manifest
        // lists as live (plus anything newer, plus the legacy single-file
        // WAL if this directory predates segmentation).
        let policy = WalSyncPolicy::from_options(options.sync_wal, options.sync_wal_interval_ms);
        let (wal, recovery) = SegmentedWal::open(
            &storage,
            policy,
            &snapshot.wal_segments,
            &[LEGACY_WAL_NAME],
            snapshot.last_seq + 1,
        )?;

        let level_reads = (0..options.num_levels).map(|_| AtomicU64::new(0)).collect();
        let db = LsmDb {
            storage,
            options,
            inner: RwLock::new(inner),
            wal,
            stats: CompactionStats::default(),
            cache,
            maintenance: OnceLock::new(),
            flush_lock: Mutex::new(()),
            compaction_lock: Mutex::new(()),
            write_room: BackpressureGate::new(),
            telemetry: OnceLock::new(),
            key_bound: RwLock::new(None),
            level_reads,
            degradation: DegradationController::new(),
        };

        {
            let mut inner = db.inner.write();
            inner.mutable = Some(Arc::new(MemTable::new()));
            if recovery.adoptable() && recovery.total_bytes() >= db.options.recovery_adopt_bytes {
                // Large clean tail: adopt the replayed sealed segments in
                // place instead of re-logging every record. The records are
                // rebuilt into one frozen memtable paired with all adopted
                // segments, so the eventual flush retires them together.
                // Recovery I/O drops from O(records re-logged) to the
                // manifest write below.
                let rebuilt = Arc::new(MemTable::new());
                for record in recovery.records() {
                    for (seq, entry) in (record.start_seq..).zip(record.batch.iter()) {
                        rebuilt.insert(seq, entry);
                        inner.last_seq = inner.last_seq.max(seq);
                    }
                }
                let adopted = db.wal.adopt_recovered(&recovery);
                inner.immutables.push(FrozenMemTable {
                    memtable: rebuilt,
                    wal_segments: adopted,
                });
            } else {
                for record in recovery.records() {
                    // Re-log with the original sequence numbers so a second
                    // recovery replays identically.
                    db.wal.append(record.start_seq, &record.batch)?;
                    for (seq, entry) in (record.start_seq..).zip(record.batch.iter()) {
                        inner.mutable.as_ref().unwrap().insert(seq, entry);
                        inner.last_seq = inner.last_seq.max(seq);
                    }
                }
            }
            // Sync any re-logged records, drop the non-adopted replayed
            // files, and record the live segments in the manifest.
            db.wal.finish_recovery()?;
            db.persist_manifest(&inner)?;
        }
        Ok(db)
    }

    /// Opens a database backed by a fresh in-memory storage (for tests).
    pub fn open_in_memory(options: LsmOptions) -> Result<Self> {
        Self::open(crate::storage::MemStorage::new_ref(), options)
    }

    /// The configured options.
    pub fn options(&self) -> &LsmOptions {
        &self.options
    }

    /// The storage backend.
    pub fn storage(&self) -> &StorageRef {
        &self.storage
    }

    /// Flush/compaction statistics, including block-cache and background-job
    /// counters when those subsystems are active.
    pub fn stats(&self) -> CompactionStatsSnapshot {
        let mut snapshot = self.stats.snapshot();
        if let Some(cache) = &self.cache {
            let cache_stats = cache.cache().stats();
            snapshot.cache_hits = cache_stats.hits;
            snapshot.cache_misses = cache_stats.misses;
        }
        if let Some(handle) = self.maintenance.get() {
            let state = handle.state();
            snapshot.bg_jobs_completed = state.completed_jobs();
            snapshot.bg_jobs_failed = state.failed_jobs();
            snapshot.bg_jobs_pending = state.pending_jobs() as u64;
        }
        snapshot.wal = self.wal.stats();
        snapshot
    }

    /// Durability statistics of the segmented WAL (also embedded in
    /// [`LsmDb::stats`]).
    pub fn wal_stats(&self) -> WalStatsSnapshot {
        self.wal.stats()
    }

    /// The shared block cache, if one is configured.
    pub fn block_cache(&self) -> Option<&Arc<BlockCache>> {
        self.cache.as_ref().map(|c| c.cache())
    }

    /// Starts a background maintenance scheduler with `num_workers` threads
    /// and registers it with this engine. From then on the write path freezes
    /// full memtables and enqueues flush/compaction jobs instead of running
    /// them inline, and applies slowdown/stall backpressure per the
    /// `l0_slowdown_files` / `l0_stall_files` / `max_pending_jobs` options.
    ///
    /// The returned [`JobScheduler`] owns the worker threads: dropping it
    /// drains all queued jobs and joins the workers. The foreground
    /// `flush` / `compact_*` APIs keep working (they share the same internal
    /// locks), which deterministic tests rely on.
    ///
    /// Errors if a scheduler was already attached.
    pub fn attach_maintenance(self: &Arc<Self>, num_workers: usize) -> Result<JobScheduler> {
        attach_engine(self, num_workers)
    }

    /// Registers this engine (and its WAL) with a shared telemetry hub under
    /// `shard_label`: latency histograms on the get/scan/commit paths, byte
    /// counters on flush/compaction, and maintenance events in the hub's
    /// event log. Idempotent — a second attach keeps the first registration.
    pub fn attach_telemetry(&self, hub: &Arc<Telemetry>, shard_label: &str) {
        let _ = self
            .telemetry
            .set(EngineTelemetry::register(hub, "lsm", shard_label));
        self.wal.attach_telemetry(hub, shard_label);
    }

    /// The last sequence number assigned.
    pub fn last_seq(&self) -> SeqNo {
        self.inner.read().last_seq
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Applies a write batch atomically.
    ///
    /// The batch is appended to the active WAL segment and inserted into the
    /// mutable memtable under the engine lock; durability (per the
    /// `sync_wal` / `sync_wal_interval_ms` group-commit policy) is then
    /// awaited *outside* the lock, so concurrent writers coalesce into one
    /// fsync. With a maintenance scheduler attached, a full memtable is
    /// frozen (rotating the WAL segment) and its flush is enqueued for the
    /// background workers, after applying slowdown/stall backpressure;
    /// without one, the legacy synchronous flush/compact path runs inline.
    pub fn write(&self, batch: &WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.check_writable()?;
        let telemetry = self.telemetry.get();
        let commit_start = telemetry.map(|_| Instant::now());
        let op = telemetry.map(|t| t.begin_op(TraceKind::Commit));
        // True both when this op won the sampling decision and when an
        // enclosing router-owned sampled trace is active on this thread
        // (nested case): child spans record into whichever trace owns us.
        let traced = trace::is_active();
        EngineMaintenance::apply_backpressure(self);
        let logical_bytes: u64 = batch
            .iter()
            .map(|e| std::mem::size_of::<UserKey>() as u64 + e.value.len() as u64)
            .sum();
        self.stats
            .ingest_bytes
            .fetch_add(logical_bytes, Ordering::Relaxed);
        let ticket = {
            let _apply_span = if traced {
                trace::span("wal_append")
            } else {
                None
            };
            let mut inner = self.inner.write();
            let start_seq = inner.last_seq + 1;
            let mutable = Arc::clone(inner.mutable.as_ref().ok_or(Error::Closed)?);
            let ticket = self
                .wal
                .append(start_seq, batch)
                .map_err(|e| self.note_write_error(e))?;
            let mut seq = start_seq;
            for entry in batch.iter() {
                mutable.insert(seq, entry);
                seq += 1;
            }
            inner.last_seq = seq - 1;
            ticket
        };
        // The write is acknowledged only once its WAL record is durable.
        {
            let _durable_span = if traced {
                trace::span("wal_durable")
            } else {
                None
            };
            self.wal
                .ensure_durable(&ticket)
                .map_err(|e| self.note_write_error(e))?;
        }
        if let (Some(telemetry), Some(start), Some(op)) = (telemetry, commit_start, op) {
            let elapsed = start.elapsed();
            telemetry.commit_ns.record(elapsed.as_nanos() as u64);
            telemetry.end_op(
                TraceKind::Commit,
                op,
                elapsed,
                &[("entries", batch.len() as u64)],
            );
        }
        self.after_write_maintenance()
    }

    /// Unconditionally freezes the mutable memtable (sealing its WAL segment
    /// and opening a fresh one), without flushing it. No-op on an empty
    /// memtable. Returns true if a memtable was frozen.
    ///
    /// Used by the flush path and by crash-recovery tests that need the
    /// "frozen but not yet flushed" state.
    pub fn freeze_memtable(&self) -> Result<bool> {
        let mut inner = self.inner.write();
        let Some(mutable) = inner.mutable.as_ref() else {
            return Ok(false);
        };
        if mutable.is_empty() {
            return Ok(false);
        }
        self.freeze_locked(&mut inner)
    }

    /// Freezes the mutable memtable and immediately schedules its flush:
    /// with a maintenance scheduler attached the flush job is enqueued right
    /// away (instead of waiting for the next write-path trigger); without
    /// one the frozen memtable is drained inline. Returns true if a memtable
    /// was frozen.
    pub fn freeze_and_schedule(&self) -> Result<bool> {
        if !self.freeze_memtable()? {
            return Ok(false);
        }
        self.schedule_frozen_flush()?;
        Ok(true)
    }

    /// Freezes the mutable memtable under the held engine lock: rotates to a
    /// fresh WAL segment and pairs the sealed segment with the frozen
    /// memtable.
    fn freeze_locked(&self, inner: &mut DbInner) -> Result<bool> {
        let frozen = Arc::clone(inner.mutable.as_ref().ok_or(Error::Closed)?);
        let sealed_segment = self.wal.rotate(inner.last_seq + 1)?;
        inner
            .immutables
            .push(FrozenMemTable::sealed(frozen, sealed_segment));
        inner.mutable = Some(Arc::new(MemTable::new()));
        // No manifest write here: the previous flush-time manifest already
        // lists the sealed segment, and recovery unconditionally replays any
        // segment newer than the manifest knows, so the fresh active segment
        // needs no record. Keeping the freeze path free of manifest I/O
        // keeps the engine's write lock cheap.
        Ok(true)
    }

    /// Inserts a single key/value pair.
    pub fn put(&self, key: UserKey, value: Vec<u8>) -> Result<()> {
        let mut b = WriteBatch::new();
        b.put(key, value);
        self.write(&b)
    }

    /// Deletes a key (writes a tombstone).
    pub fn delete(&self, key: UserKey) -> Result<()> {
        let mut b = WriteBatch::new();
        b.delete(key);
        self.write(&b)
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Returns the newest value for `key`, or `None` if absent or deleted.
    pub fn get(&self, key: UserKey) -> Result<Option<Vec<u8>>> {
        self.get_at(key, MAX_SEQNO)
    }

    /// Returns the newest value for `key` visible at `snapshot_seq`.
    ///
    /// The in-memory sources (mutable and frozen memtables) are probed under
    /// the engine's read lock — a hit pays no snapshot work at all. On a
    /// miss, only the candidate tables are Arc-snapshotted and every disk
    /// probe runs with the lock *released*, so a cold read never stalls
    /// writers. Files whose manifest key range excludes `key` are pruned
    /// before their table (or bloom filter) is touched — on Level-0 this
    /// skips most files outright, and on deeper levels at most one file
    /// survives the binary search.
    pub fn get_at(&self, key: UserKey, snapshot_seq: SeqNo) -> Result<Option<Vec<u8>>> {
        let telemetry = self.telemetry.get();
        let start = telemetry.map(|_| Instant::now());
        let op = telemetry.map(|t| t.begin_op(TraceKind::Get));
        // True both when this op won the sampling decision and when an
        // enclosing router-owned sampled trace is active on this thread
        // (nested case): child spans record into whichever trace owns us.
        let traced = trace::is_active();
        let result = self.get_at_inner(key, snapshot_seq, traced);
        if let (Some(telemetry), Some(start), Some(op)) = (telemetry, start, op) {
            let elapsed = start.elapsed();
            telemetry.get_ns.record(elapsed.as_nanos() as u64);
            telemetry.end_op(TraceKind::Get, op, elapsed, &[("key", key)]);
        }
        result
    }

    fn get_at_inner(
        &self,
        key: UserKey,
        snapshot_seq: SeqNo,
        traced: bool,
    ) -> Result<Option<Vec<u8>>> {
        let tables = {
            let _memtable_span = if traced {
                trace::span("memtable_probe")
            } else {
                None
            };
            let inner = self.inner.read();
            if let Some(mutable) = &inner.mutable {
                if let Some((ik, value)) = mutable.get(key, snapshot_seq) {
                    self.record_level_read(0);
                    return Ok(filter_tombstone(ik, value));
                }
            }
            // Frozen memtables, newest first.
            for imm in inner.immutables.iter().rev() {
                if let Some((ik, value)) = imm.memtable.get(key, snapshot_seq) {
                    self.record_level_read(0);
                    return Ok(filter_tombstone(ik, value));
                }
            }
            // Memtable miss: snapshot the Level-0 candidates newest first
            // (range-pruned via metadata, which may be narrower than the
            // file contents for SSTs adopted from a pre-split parent shard),
            // then at most one candidate per deeper level.
            let mut tables: Vec<(usize, TableHandle)> = inner.levels[0]
                .iter()
                .rev()
                .filter(|f| f.meta.min_user_key <= key && key <= f.meta.max_user_key)
                .map(|f| (0, f.table.clone()))
                .collect();
            for (level_no, level) in inner.levels.iter().enumerate().skip(1) {
                let idx = level.partition_point(|f| f.meta.max_user_key < key);
                if idx < level.len() && level[idx].meta.min_user_key <= key {
                    tables.push((level_no, level[idx].table.clone()));
                }
            }
            tables
        };
        let mut sst_span = if traced {
            trace::span("sst_probe")
        } else {
            None
        };
        if let Some(span) = &mut sst_span {
            span.annotate("candidates", tables.len());
        }
        for (probed, (level, table)) in tables.iter().enumerate() {
            if let Some((ik, value)) = table.get(key, snapshot_seq)? {
                if let Some(span) = &mut sst_span {
                    span.annotate("tables_probed", probed + 1);
                }
                self.record_level_read(*level);
                return Ok(filter_tombstone(ik, value));
            }
        }
        if let Some(span) = &mut sst_span {
            span.annotate("tables_probed", tables.len());
        }
        Ok(None)
    }

    /// Scans keys in `[lo, hi]`, returning the newest visible version of each
    /// (tombstoned keys are omitted).
    pub fn scan(&self, lo: UserKey, hi: UserKey) -> Result<Vec<(UserKey, Vec<u8>)>> {
        self.scan_at(lo, hi, MAX_SEQNO)
    }

    /// Scans keys in `[lo, hi]` as of `snapshot_seq`: a thin collect over the
    /// streaming [`LsmDb::range`] iterator.
    pub fn scan_at(
        &self,
        lo: UserKey,
        hi: UserKey,
        snapshot_seq: SeqNo,
    ) -> Result<Vec<(UserKey, Vec<u8>)>> {
        let telemetry = self.telemetry.get();
        let start = telemetry.map(|_| Instant::now());
        let op = telemetry.map(|t| t.begin_op(TraceKind::Scan));
        // True both when this op won the sampling decision and when an
        // enclosing router-owned sampled trace is active on this thread
        // (nested case): child spans record into whichever trace owns us.
        let traced = trace::is_active();
        let iter = {
            let mut setup_span = if traced {
                trace::span("merge_setup")
            } else {
                None
            };
            let iter = self.range(lo, hi, snapshot_seq)?;
            if let Some(span) = &mut setup_span {
                span.annotate("merge_width", iter.merge_width());
            }
            iter
        };
        let mut iter = iter;
        let mut out = Vec::new();
        {
            let _drain_span = if traced { trace::span("drain") } else { None };
            while iter.next_visible()? {
                if !iter.is_tombstone() {
                    out.push((iter.user_key(), iter.value().to_vec()));
                }
            }
        }
        if let (Some(telemetry), Some(start), Some(op)) = (telemetry, start, op) {
            let elapsed = start.elapsed();
            telemetry.scan_ns.record(elapsed.as_nanos() as u64);
            telemetry.end_op(TraceKind::Scan, op, elapsed, &[("rows", out.len() as u64)]);
        }
        Ok(out)
    }

    /// Streaming range scan: the newest version of every user key in
    /// `[lo, hi]` visible at `snapshot_seq`, in key order, produced lazily.
    /// Tombstones are surfaced via [`RangeIterator::is_tombstone`] (the
    /// `Iterator` facade skips them). This is the entry point `scan_at`,
    /// cross-shard scans and the compaction drain build on.
    pub fn range(&self, lo: UserKey, hi: UserKey, snapshot_seq: SeqNo) -> Result<RangeIterator> {
        RangeIterator::new(self.range_iterator(lo, hi)?, lo, hi, snapshot_seq)
    }

    /// Builds the tournament-tree merge over every source that may contain
    /// keys in `[lo, hi]`: memtables, all overlapping Level-0 files, and one
    /// lazy [`LevelConcatIterator`] per deeper level — so the merge width is
    /// `memtables + L0 + #levels`, independent of how many files a deep
    /// level holds. Children are ordered newest-to-oldest so ties resolve
    /// toward fresher data.
    pub fn range_iterator(&self, lo: UserKey, hi: UserKey) -> Result<MergingIterator> {
        let inner = self.inner.read();
        let mut children: Vec<BoxedIterator> = Vec::new();
        if let Some(mutable) = &inner.mutable {
            children.push(Box::new(mutable.iter()));
        }
        for imm in inner.immutables.iter().rev() {
            children.push(Box::new(imm.memtable.iter()));
        }
        for (level, files) in inner.levels.iter().enumerate() {
            Self::push_level_children(level, files, Some((lo, hi)), &mut children);
        }
        Ok(MergingIterator::new(children))
    }

    /// The pre-overhaul merge shape: one child per overlapping file, flat,
    /// drained by the linear-scan [`NaiveMergingIterator`]. Kept as the
    /// executable reference the property tests and the `read_path` bench
    /// compare the tournament stack against; not used by any read path.
    pub fn naive_range_iterator(&self, lo: UserKey, hi: UserKey) -> Result<NaiveMergingIterator> {
        let inner = self.inner.read();
        let mut children: Vec<BoxedIterator> = Vec::new();
        if let Some(mutable) = &inner.mutable {
            children.push(Box::new(mutable.iter()));
        }
        for imm in inner.immutables.iter().rev() {
            children.push(Box::new(imm.memtable.iter()));
        }
        for level in inner.levels.iter() {
            for file in level.iter().rev() {
                if file.meta.overlaps(lo, hi) {
                    children.push(Box::new(file.table.iter()));
                }
            }
        }
        Ok(NaiveMergingIterator::new(children))
    }

    /// Appends the merge children contributed by one level, newest first:
    /// Level-0 files become one child each (they may overlap), deeper levels
    /// contribute a single lazy concatenating child over their disjoint
    /// files. The one place child assembly is encoded — `range_iterator`,
    /// `iter_level` and the compaction drain all route through it.
    fn push_level_children(
        level: usize,
        files: &[LevelFile],
        range: Option<(UserKey, UserKey)>,
        children: &mut Vec<BoxedIterator>,
    ) {
        let in_range = |f: &LevelFile| range.is_none_or(|(lo, hi)| f.meta.overlaps(lo, hi));
        if level == 0 {
            for file in files.iter().rev() {
                if in_range(file) {
                    children.push(Box::new(file.table.iter()));
                }
            }
        } else {
            let tables: Vec<TableHandle> = files
                .iter()
                .filter(|f| in_range(f))
                .map(|f| f.table.clone())
                .collect();
            if !tables.is_empty() {
                children.push(Box::new(LevelConcatIterator::new(tables)));
            }
        }
    }

    /// Iterates every entry (all versions) currently stored in `level`.
    /// Used by experiments that inspect how data ages through the tree.
    pub fn iter_level(&self, level: usize) -> Result<MergingIterator> {
        let inner = self.inner.read();
        if level >= inner.levels.len() {
            return Err(Error::invalid(format!("level {level} out of range")));
        }
        let mut children: Vec<BoxedIterator> = Vec::new();
        Self::push_level_children(level, &inner.levels[level], None, &mut children);
        Ok(MergingIterator::new(children))
    }

    /// Returns the metadata of every file, grouped by level.
    pub fn level_files(&self) -> Vec<Vec<FileMeta>> {
        let inner = self.inner.read();
        inner
            .levels
            .iter()
            .map(|files| files.iter().map(|f| f.meta.clone()).collect())
            .collect()
    }

    /// Total bytes stored in each level.
    pub fn level_sizes(&self) -> Vec<u64> {
        let inner = self.inner.read();
        inner
            .levels
            .iter()
            .map(|files| files.iter().map(|f| f.meta.file_size).sum())
            .collect()
    }

    /// Number of entries in the mutable memtable (for tests).
    pub fn memtable_len(&self) -> usize {
        let inner = self.inner.read();
        inner.mutable.as_ref().map(|m| m.len()).unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Flush
    // ------------------------------------------------------------------

    /// Flushes the mutable memtable and every frozen memtable to Level-0
    /// SSTs, retiring their WAL segments. No-op when nothing is buffered.
    /// Rejected with [`Error::ReadOnly`] while the engine is degraded.
    pub fn flush(&self) -> Result<()> {
        self.check_writable()?;
        let result = (|| {
            self.freeze_memtable()?;
            while self.flush_frozen_one_impl()? {}
            Ok(())
        })();
        if let Err(e) = &result {
            self.note_storage_error(e);
        }
        result
    }

    /// Flushes the oldest frozen memtable, if any, to a Level-0 SST. Once
    /// the SST is installed in the manifest, the WAL segment backing the
    /// memtable is retired and its file deleted — recovery never replays
    /// data that already lives in the tree. Returns true if a memtable was
    /// flushed.
    fn flush_frozen_one_impl(&self) -> Result<bool> {
        if let Some(info) = self.degradation.info() {
            // While degraded, background flushing is blocked outright:
            // re-running half-failed jobs against a broken device risks
            // double-applying work (at-most-once), and the typed error also
            // trips the backpressure gate's failed-jobs bail-out so stalled
            // writers are released instead of waiting forever.
            return Err(Error::read_only(info.reason));
        }
        let telemetry = self.telemetry.get();
        let flush_start = telemetry.map(|_| Instant::now());
        // Serialise flushes so Level-0 keeps its oldest-first order.
        let _flushing = self.flush_lock.lock();
        let (frozen, file_number) = {
            let mut inner = self.inner.write();
            let Some(frozen) = inner.immutables.first().cloned() else {
                return Ok(false);
            };
            if frozen.memtable.is_empty() {
                inner
                    .immutables
                    .retain(|m| !Arc::ptr_eq(&m.memtable, &frozen.memtable));
                for segment in &frozen.wal_segments {
                    self.wal.retire(*segment);
                }
                self.persist_manifest(&inner)?;
                drop(inner);
                self.wal.delete_retired()?;
                return Ok(true);
            }
            let file_number = inner.next_file_number;
            inner.next_file_number += 1;
            (frozen, file_number)
        };

        // Build the SST outside the lock; the frozen memtable stays readable
        // in `immutables` until the file is installed.
        let meta =
            self.build_sst_from_entries(file_number, 0, 0, frozen.memtable.to_sorted_vec())?;
        let (flushed_bytes, flushed_entries) = (meta.file_size, meta.num_entries);

        {
            let mut inner = self.inner.write();
            let table =
                TableHandle::open_with_cache(&self.storage, &meta.file_name(), self.cache.clone())?;
            inner.levels[0].push(LevelFile { meta, table });
            inner
                .immutables
                .retain(|m| !Arc::ptr_eq(&m.memtable, &frozen.memtable));
            // Manifest-first segment GC: drop the segments from the live set,
            // persist a manifest that has the SST and no longer lists them,
            // and only then unlink the files. A crash in between leaves
            // orphan files that the next open deletes unreplayed.
            for segment in &frozen.wal_segments {
                self.wal.retire(*segment);
            }
            self.persist_manifest(&inner)?;
        }
        self.wal.delete_retired()?;
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        if let (Some(telemetry), Some(start)) = (telemetry, flush_start) {
            telemetry.flush_event(start.elapsed(), flushed_bytes, flushed_entries);
        }
        self.notify_write_room();
        Ok(true)
    }

    fn build_sst_from_entries(
        &self,
        file_number: u64,
        level: u32,
        column_group: u32,
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<FileMeta> {
        let name = format!("{file_number:08}.sst");
        // A transient fault mid-build restarts the whole table from scratch
        // (create truncates), so a retried build never sees torn output.
        let props = retry_io(
            &RetryPolicy::transient_io(),
            |_, _| self.note_io_retry(),
            || {
                let file = self.storage.create(&name)?;
                let mut builder = TableBuilder::new(file, self.options.table.clone());
                for (k, v) in &entries {
                    builder.add(k, v)?;
                }
                builder.finish()
            },
        )?;
        self.stats
            .bytes_written
            .fetch_add(props.file_size, Ordering::Relaxed);
        self.stats
            .entries_written
            .fetch_add(props.num_entries, Ordering::Relaxed);
        Ok(FileMeta {
            file_number,
            level,
            min_user_key: props.min_user_key,
            max_user_key: props.max_user_key,
            num_entries: props.num_entries,
            file_size: props.file_size,
            min_seq: props.min_seq,
            max_seq: props.max_seq,
            column_group,
        })
    }

    fn persist_manifest(&self, inner: &DbInner) -> Result<()> {
        let snapshot = VersionSnapshot {
            next_file_number: inner.next_file_number,
            last_seq: inner.last_seq,
            files: inner
                .levels
                .iter()
                .flat_map(|files| files.iter().map(|f| f.meta.clone()))
                .collect(),
            wal_segments: self.wal.live_segments(),
        };
        // The manifest write is atomic (write-new-then-swap), so a transient
        // fault can simply be retried.
        retry_io(
            &RetryPolicy::transient_io(),
            |_, _| self.note_io_retry(),
            || write_manifest(&self.storage, &snapshot),
        )
    }

    // ------------------------------------------------------------------
    // Compaction
    // ------------------------------------------------------------------

    /// Returns the level with the highest overflow score (> 1.0), if any.
    /// The last level never overflows (there is nowhere to push its data).
    /// Level-0 additionally overflows on *file count* (at the slowdown
    /// threshold), so a backpressure pileup always has a compaction that can
    /// clear it even when the files are small.
    fn pick_compaction_level(&self, inner: &DbInner) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (level, files) in inner.levels.iter().enumerate() {
            if level + 1 >= inner.levels.len() {
                break;
            }
            let size: u64 = files.iter().map(|f| f.meta.file_size).sum();
            let capacity = self.options.level_capacity_bytes(level);
            if capacity == 0 {
                continue;
            }
            let mut score = size as f64 / capacity as f64;
            // The count trigger only applies in background mode: the legacy
            // synchronous path (and the paper's experiments) compacts purely
            // on byte overflow, and must keep doing so.
            if level == 0 && self.maintenance.get().is_some() && self.options.l0_slowdown_files > 0
            {
                // `files + 1` so the score strictly exceeds 1.0 exactly when
                // the count reaches the slowdown threshold — a stalled writer
                // (stall == slowdown is allowed) must always have a runnable
                // compaction, or backpressure would wait forever.
                let count_score = (files.len() + 1) as f64 / self.options.l0_slowdown_files as f64;
                if files.len() >= self.options.l0_slowdown_files {
                    score = score.max(count_score);
                }
            }
            if score > 1.0 && best.map(|(_, s)| score > s).unwrap_or(true) {
                best = Some((level, score));
            }
        }
        best.map(|(level, _)| level)
    }

    /// Picks which files of `level` should be compacted, honouring the
    /// configured [`CompactionPriority`].
    fn pick_input_files(&self, inner: &DbInner, level: usize) -> Vec<u64> {
        let files = &inner.levels[level];
        if files.is_empty() {
            return Vec::new();
        }
        if level == 0 {
            // Level-0 files overlap; compact all of them together.
            return files.iter().map(|f| f.meta.file_number).collect();
        }
        let chosen = match self.options.compaction_priority {
            CompactionPriority::ByCompensatedSize => files.iter().max_by_key(|f| f.meta.file_size),
            CompactionPriority::OldestSmallestSeqFirst => {
                files.iter().min_by_key(|f| f.meta.min_seq)
            }
        };
        chosen.map(|f| vec![f.meta.file_number]).unwrap_or_default()
    }

    /// Runs a single compaction job if any level overflows. Returns `true`
    /// if work was done. Safe to call concurrently (from background workers
    /// and the foreground API): jobs are serialised internally.
    pub fn compact_once(&self) -> Result<bool> {
        if let Some(info) = self.degradation.info() {
            // Same error-state gate as the flush path: no compactions while
            // the engine is read-only.
            return Err(Error::read_only(info.reason));
        }
        let _compacting = self.compaction_lock.lock();
        // Snapshot the plan under the read lock.
        let plan = {
            let inner = self.inner.read();
            let Some(level) = self.pick_compaction_level(&inner) else {
                return Ok(false);
            };
            let inputs = self.pick_input_files(&inner, level);
            if inputs.is_empty() {
                return Ok(false);
            }
            (level, inputs)
        };
        let (level, input_numbers) = plan;
        self.compact_files(level, &input_numbers)?;
        Ok(true)
    }

    /// Repeatedly compacts until no level overflows.
    pub fn compact_until_stable(&self) -> Result<()> {
        while self.compact_once()? {}
        Ok(())
    }

    /// Compacts the given files of `level` into `level + 1`.
    fn compact_files(&self, level: usize, input_numbers: &[u64]) -> Result<()> {
        let telemetry = self.telemetry.get();
        let compaction_start = telemetry.map(|_| Instant::now());
        let target_level = level + 1;
        // Gather inputs and overlapping files in the target level.
        let (inputs, overlaps, output_is_last_level) = {
            let inner = self.inner.read();
            let inputs: Vec<LevelFile> = inner.levels[level]
                .iter()
                .filter(|f| input_numbers.contains(&f.meta.file_number))
                .cloned()
                .collect();
            if inputs.is_empty() {
                return Ok(());
            }
            let lo = inputs.iter().map(|f| f.meta.min_user_key).min().unwrap();
            let hi = inputs.iter().map(|f| f.meta.max_user_key).max().unwrap();
            let overlaps: Vec<LevelFile> = inner.levels[target_level]
                .iter()
                .filter(|f| f.meta.overlaps(lo, hi))
                .cloned()
                .collect();
            let output_is_last_level = target_level + 1 >= inner.levels.len();
            (inputs, overlaps, output_is_last_level)
        };

        let input_bytes: u64 = inputs
            .iter()
            .chain(overlaps.iter())
            .map(|f| f.meta.file_size)
            .sum();
        self.stats
            .bytes_read
            .fetch_add(input_bytes, Ordering::Relaxed);

        // Merge: newer sources first so ties resolve toward fresher versions.
        // The input files may overlap (Level-0) and become one child each;
        // the target level's overlapping files are disjoint and concatenate
        // into a single lazy child.
        let mut children: Vec<BoxedIterator> = Vec::new();
        for f in inputs.iter().rev() {
            children.push(Box::new(f.table.iter()));
        }
        if !overlaps.is_empty() {
            children.push(Box::new(LevelConcatIterator::new(
                overlaps.iter().map(|f| f.table.clone()).collect(),
            )));
        }
        // Drain the streaming iterator: it yields exactly the newest version
        // of each user key (everything is visible at MAX_SEQNO), with no
        // per-entry key decode. Tombstones are dropped once they reach the
        // last level, and entries outside the key bound (shard-split
        // leftovers) are dropped at every level.
        let mut stream =
            RangeIterator::new(MergingIterator::new(children), 0, UserKey::MAX, MAX_SEQNO)?;
        let key_bound = self.key_bound();
        let mut trimmed = 0u64;
        let mut outputs: Vec<FileMeta> = Vec::new();
        let mut current: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut current_bytes = 0u64;
        while stream.next_visible()? {
            let user_key = stream.user_key();
            let out_of_bound = key_bound.is_some_and(|(lo, hi)| user_key < lo || user_key > hi);
            if out_of_bound {
                trimmed += 1;
            }
            let drop_entry = out_of_bound || (output_is_last_level && stream.is_tombstone());
            if !drop_entry {
                current_bytes += (stream.key().len() + stream.value().len()) as u64;
                current.push((stream.key().to_vec(), stream.value().to_vec()));
                if current_bytes >= self.options.sst_target_size_bytes {
                    outputs.push(self.write_compaction_output(
                        target_level as u32,
                        std::mem::take(&mut current),
                    )?);
                    current_bytes = 0;
                }
            }
        }
        if !current.is_empty() {
            outputs.push(self.write_compaction_output(target_level as u32, current)?);
        }

        // Install the new version.
        {
            let mut inner = self.inner.write();
            let input_set: Vec<u64> = inputs.iter().map(|f| f.meta.file_number).collect();
            let overlap_set: Vec<u64> = overlaps.iter().map(|f| f.meta.file_number).collect();
            inner.levels[level].retain(|f| !input_set.contains(&f.meta.file_number));
            inner.levels[target_level].retain(|f| !overlap_set.contains(&f.meta.file_number));
            for meta in &outputs {
                let table = TableHandle::open_with_cache(
                    &self.storage,
                    &meta.file_name(),
                    self.cache.clone(),
                )?;
                inner.levels[target_level].push(LevelFile {
                    meta: meta.clone(),
                    table,
                });
            }
            inner.levels[target_level].sort_by_key(|f| f.meta.min_user_key);
            self.persist_manifest(&inner)?;
            // Delete the replaced files.
            for f in inputs.iter().chain(overlaps.iter()) {
                let _ = self.storage.delete(&f.meta.file_name());
            }
        }
        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
        if trimmed > 0 {
            self.stats
                .trimmed_entries
                .fetch_add(trimmed, Ordering::Relaxed);
        }
        if let (Some(telemetry), Some(start)) = (telemetry, compaction_start) {
            let bytes_written: u64 = outputs.iter().map(|m| m.file_size).sum();
            let entries_written: u64 = outputs.iter().map(|m| m.num_entries).sum();
            telemetry.compaction_event(
                start.elapsed(),
                input_bytes,
                bytes_written,
                entries_written,
            );
        }
        self.notify_write_room();
        Ok(())
    }

    fn write_compaction_output(
        &self,
        level: u32,
        entries: Vec<(Vec<u8>, Vec<u8>)>,
    ) -> Result<FileMeta> {
        let file_number = {
            let mut inner = self.inner.write();
            let n = inner.next_file_number;
            inner.next_file_number += 1;
            n
        };
        self.build_sst_from_entries(file_number, level, 0, entries)
    }

    /// Flushes outstanding data and persists the manifest.
    pub fn close(&self) -> Result<()> {
        self.flush()?;
        let inner = self.inner.read();
        self.persist_manifest(&inner)?;
        Ok(())
    }

    /// Deletes every WAL segment file, idempotently (used by tests that
    /// simulate crashes after a clean flush: all durable data must come from
    /// SSTs alone). The engine should be dropped afterwards.
    pub fn remove_wal(&self) -> Result<()> {
        self.wal.remove_all()
    }

    // ------------------------------------------------------------------
    // Replication support (WAL shipping, replicated apply, retention)
    // ------------------------------------------------------------------

    /// Applies a record replicated from a leader at its original sequence
    /// numbers, through this replica's own WAL and memtable (so a replica
    /// crash recovers through the ordinary replay path).
    ///
    /// Sequence handling is strict: a record that starts beyond
    /// `last_seq + 1` is a replication gap and errors (the caller must fall
    /// back to segment catch-up); a fully duplicate record (retransmission)
    /// is skipped idempotently; a partially overlapping record logs and
    /// applies only its unseen suffix — re-logging an already-applied prefix
    /// would replay duplicate internal keys after a replica restart.
    /// Returns the replica's new last applied sequence number.
    pub fn apply_replicated(&self, start_seq: SeqNo, batch: &WriteBatch) -> Result<SeqNo> {
        if batch.is_empty() {
            return Ok(self.last_seq());
        }
        self.check_writable()?;
        EngineMaintenance::apply_backpressure(self);
        let ticket = {
            let mut inner = self.inner.write();
            let next = inner.last_seq + 1;
            if start_seq > next {
                return Err(Error::invalid(format!(
                    "replication gap: record starts at seq {start_seq} but this \
                     replica has only applied through {}",
                    inner.last_seq
                )));
            }
            let end_seq = start_seq + batch.len() as SeqNo - 1;
            if end_seq < next {
                return Ok(inner.last_seq);
            }
            let skip = (next - start_seq) as usize;
            let suffix;
            let (log_start, log_batch): (SeqNo, &WriteBatch) = if skip == 0 {
                (start_seq, batch)
            } else {
                let mut b = WriteBatch::new();
                for entry in batch.iter().skip(skip) {
                    b.push(entry.clone());
                }
                suffix = b;
                (next, &suffix)
            };
            let logical_bytes: u64 = log_batch
                .iter()
                .map(|e| std::mem::size_of::<UserKey>() as u64 + e.value.len() as u64)
                .sum();
            self.stats
                .ingest_bytes
                .fetch_add(logical_bytes, Ordering::Relaxed);
            let mutable = Arc::clone(inner.mutable.as_ref().ok_or(Error::Closed)?);
            let ticket = self
                .wal
                .append(log_start, log_batch)
                .map_err(|e| self.note_write_error(e))?;
            let mut seq = log_start;
            for entry in log_batch.iter() {
                mutable.insert(seq, entry);
                seq += 1;
            }
            inner.last_seq = seq - 1;
            ticket
        };
        self.wal
            .ensure_durable(&ticket)
            .map_err(|e| self.note_write_error(e))?;
        self.after_write_maintenance()?;
        Ok(self.last_seq())
    }

    /// The catch-up payload a leader ships to a replica that has applied
    /// through `from_seq`: the byte images of every live sealed segment that
    /// may contain newer records (adopted wholesale on the other end), plus
    /// the intact records of the live tail. Together they cover everything
    /// this engine has accepted past `from_seq`.
    pub fn wal_catchup(
        &self,
        from_seq: SeqNo,
    ) -> Result<(
        Vec<crate::wal_segment::ShippedSegment>,
        Vec<crate::wal::WalRecord>,
    )> {
        let segments = self.wal.sealed_segments_from(from_seq)?;
        let tail = self.wal.tail_records_from(from_seq)?;
        Ok((segments, tail))
    }

    /// Adopts a shipped sealed-segment image in place (replica catch-up):
    /// the image becomes a local sealed segment, its records are rebuilt
    /// into one frozen memtable paired with that segment, and the manifest
    /// is persisted — O(1) appends per segment instead of one per record.
    /// The image must continue this replica's sequence run contiguously.
    /// Returns the new last applied sequence number.
    pub fn adopt_wal_segment(&self, bytes: &[u8]) -> Result<SeqNo> {
        let _flushing = self.flush_lock.lock();
        let mut inner = self.inner.write();
        let (records, clean, _) = crate::wal::decode_records(bytes)?;
        if !clean || records.is_empty() {
            return Err(Error::corruption(
                "shipped WAL segment image is torn, corrupt or empty",
            ));
        }
        let first = records.first().map(|r| r.start_seq).unwrap_or(0);
        let last = records.iter().map(|r| r.end_seq()).max().unwrap_or(0);
        if first > inner.last_seq + 1 {
            return Err(Error::invalid(format!(
                "replication gap: shipped segment starts at seq {first} but this \
                 replica has only applied through {}",
                inner.last_seq
            )));
        }
        if last <= inner.last_seq {
            // Entirely duplicate (a re-ship after reconnect): skip.
            return Ok(inner.last_seq);
        }
        if first <= inner.last_seq {
            // Partially overlapping: adopting the whole image would leave
            // duplicate sequence numbers in this WAL, and a later recovery
            // would replay them twice into one memtable. The caller must
            // apply the records individually instead (which trims overlap).
            return Err(Error::invalid(format!(
                "shipped segment [{first}, {last}] overlaps applied prefix \
                 (through {}); apply its records individually",
                inner.last_seq
            )));
        }
        let (segment_id, records) = self.wal.adopt_segment_bytes(bytes)?;
        let rebuilt = Arc::new(MemTable::new());
        for record in &records {
            for (seq, entry) in (record.start_seq..).zip(record.batch.iter()) {
                rebuilt.insert(seq, entry);
            }
        }
        inner.immutables.push(FrozenMemTable {
            memtable: rebuilt,
            wal_segments: vec![segment_id],
        });
        inner.last_seq = inner.last_seq.max(last);
        self.persist_manifest(&inner)?;
        Ok(inner.last_seq)
    }

    /// Sets the WAL retention floor from replication acknowledgements: every
    /// record with a sequence number `<= seq` is acked by every replica, so
    /// segments ending at or below it may retire. When the advance releases
    /// a previously pinned segment, the manifest is re-persisted and the
    /// file deleted.
    pub fn set_wal_retention_floor(&self, seq: SeqNo) -> Result<()> {
        if self.wal.set_retention_floor(seq) {
            let inner = self.inner.read();
            self.persist_manifest(&inner)?;
            drop(inner);
            self.wal.delete_retired()?;
        }
        Ok(())
    }

    /// True while the engine can accept writes — its WAL has no unrecovered
    /// damage and it has not entered read-only degradation. The replication
    /// health monitor treats an unhealthy leader as lost and promotes a
    /// replica.
    pub fn is_healthy(&self) -> bool {
        !self.wal.is_damaged() && !self.degradation.is_degraded()
    }

    // ------------------------------------------------------------------
    // Graceful degradation (read-only mode on persistent storage faults)
    // ------------------------------------------------------------------

    /// True while the engine is in read-only degradation: writes are
    /// rejected with [`Error::ReadOnly`], reads and replica serving
    /// continue, flushes and compactions are blocked.
    pub fn is_degraded(&self) -> bool {
        self.degradation.is_degraded()
    }

    /// Why (and for how long) the engine has been read-only, if degraded.
    pub fn degraded_info(&self) -> Option<DegradedInfo> {
        self.degradation.info()
    }

    /// Attempts to leave read-only degradation: re-runs WAL rotation
    /// recovery if the log is still damaged, then probes the storage with a
    /// small write-fsync-delete cycle. On success the engine clears the
    /// degraded flag, emits `Recovered`, zeroes the `laser_degraded` gauge
    /// and wakes stalled writers. Returns true if the engine is (now)
    /// healthy. Called automatically by every rejected write, so recovery
    /// needs no operator action; health loops may also call it directly.
    pub fn probe_recovery(&self) -> bool {
        if !self.degradation.is_degraded() {
            return true;
        }
        // A damaged WAL recovers through its own rotation-recovery path;
        // `sync` re-attempts it and fails while the fault persists.
        if self.wal.is_damaged() && self.wal.sync().is_err() {
            return false;
        }
        if self.storage_probe().is_err() {
            return false;
        }
        if let Some(downtime) = self.degradation.clear() {
            if let Some(telemetry) = self.telemetry.get() {
                telemetry.recovered_event(downtime);
            }
            self.notify_write_room();
        }
        true
    }

    /// A minimal durability probe: create, append, fsync and delete a scratch
    /// file. Exercises the same failure modes (EIO, ENOSPC) as the real
    /// write paths without touching live data.
    fn storage_probe(&self) -> Result<()> {
        const PROBE_NAME: &str = "health-probe.tmp";
        let result = (|| {
            let mut file = self.storage.create(PROBE_NAME)?;
            file.append(b"laser-storage-probe")?;
            file.sync()
        })();
        let _ = self.storage.delete(PROBE_NAME);
        result
    }

    /// Rejects the write with a typed error while degraded, probing for
    /// recovery first so a healed device resumes service on the very next
    /// write.
    fn check_writable(&self) -> Result<()> {
        if !self.degradation.is_degraded() || self.probe_recovery() {
            return Ok(());
        }
        let reason = self
            .degradation
            .info()
            .map(|i| i.reason)
            .unwrap_or_else(|| "storage fault".to_string());
        Err(Error::read_only(reason))
    }

    /// Enters read-only degradation (idempotently) after a persistent
    /// storage fault, emitting `Degraded` and raising `laser_degraded` on
    /// the transition edge.
    fn enter_degraded(&self, cause: &Error) {
        if self.degradation.enter(cause.to_string()) {
            if let Some(telemetry) = self.telemetry.get() {
                telemetry.degraded_event();
            }
        }
    }

    /// Classifies an error escaping the write or maintenance path: anything
    /// non-transient (the WAL already self-healed transients, `retry_io`
    /// already retried the rest) degrades the engine instead of leaving the
    /// next caller to hit the same broken device.
    fn note_storage_error(&self, e: &Error) {
        if !e.is_transient() && !e.is_read_only() {
            self.enter_degraded(e);
        }
    }

    fn note_write_error(&self, e: Error) -> Error {
        self.note_storage_error(&e);
        e
    }

    fn note_io_retry(&self) {
        if let Some(telemetry) = self.telemetry.get() {
            telemetry.io_retry();
        }
    }

    // ------------------------------------------------------------------
    // Key-range restriction and trim compaction (shard-split support)
    // ------------------------------------------------------------------

    /// Restricts this engine to the inclusive key range `[lo, hi]`. From
    /// then on compactions drop entries outside the bound and
    /// [`LsmDb::trim_once`] can proactively rewrite SSTs that still carry
    /// out-of-range data (files adopted by reference from a pre-split
    /// parent shard). The bound never affects reads: callers are expected to
    /// route only in-range keys at this engine.
    pub fn set_key_bound(&self, lo: UserKey, hi: UserKey) {
        *self.key_bound.write() = Some((lo, hi));
    }

    /// The key bound, if one is set.
    pub fn key_bound(&self) -> Option<(UserKey, UserKey)> {
        *self.key_bound.read()
    }

    /// Attributes one answered point read to `level` (clamped to the
    /// deepest configured level).
    fn record_level_read(&self, level: usize) {
        if let Some(counter) = self
            .level_reads
            .get(level.min(self.level_reads.len().saturating_sub(1)))
        {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point reads answered per level since open (index = level; memtable
    /// hits count as level 0). Reads that found nothing are not attributed.
    pub fn reads_by_level(&self) -> Vec<u64> {
        self.level_reads
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Approximate bytes buffered in the mutable and frozen memtables.
    pub fn buffered_bytes(&self) -> u64 {
        let inner = self.inner.read();
        let mut total = inner
            .mutable
            .as_ref()
            .map(|m| m.approximate_bytes())
            .unwrap_or(0);
        total += inner
            .immutables
            .iter()
            .map(|m| m.memtable.approximate_bytes())
            .sum::<usize>();
        total as u64
    }

    /// Total bytes of all attached SST files.
    pub fn total_sst_bytes(&self) -> u64 {
        self.level_sizes().iter().sum()
    }

    /// Rewrites one SST whose *contents* exceed the key bound, keeping only
    /// in-range entries (the file is removed outright if nothing remains).
    /// Returns true if a file was processed. No-op without a key bound.
    /// Safe to call concurrently with writes and compactions.
    pub fn trim_once(&self) -> Result<bool> {
        if self.degradation.is_degraded() {
            return Ok(false);
        }
        let Some((lo, hi)) = self.key_bound() else {
            return Ok(false);
        };
        let telemetry = self.telemetry.get();
        let trim_start = telemetry.map(|_| Instant::now());
        // Serialise with compactions so the victim cannot be replaced (and
        // its file deleted) between planning and install.
        let _compacting = self.compaction_lock.lock();
        let victim = {
            let inner = self.inner.read();
            let mut found = None;
            'levels: for (level, files) in inner.levels.iter().enumerate() {
                for file in files {
                    if file.table.spans_outside(lo, hi) {
                        found = Some((level, file.clone()));
                        break 'levels;
                    }
                }
            }
            found
        };
        let Some((level, victim)) = victim else {
            return Ok(false);
        };

        // Rewrite outside the lock; the victim stays attached (and readable)
        // until the replacement is installed.
        let mut kept: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut iter = victim.table.iter();
        iter.seek_to_first()?;
        while iter.valid() {
            let ik = InternalKey::decode(iter.key())?;
            if ik.user_key >= lo && ik.user_key <= hi {
                kept.push((iter.key().to_vec(), iter.value().to_vec()));
            }
            iter.next()?;
        }
        let trimmed = victim.meta.num_entries.saturating_sub(kept.len() as u64);
        let replacement = if kept.is_empty() {
            None
        } else {
            let file_number = {
                let mut inner = self.inner.write();
                let n = inner.next_file_number;
                inner.next_file_number += 1;
                n
            };
            // The replacement's manifest bounds are its true content bounds,
            // which lie within `[lo, hi]` by construction.
            Some(self.build_sst_from_entries(
                file_number,
                level as u32,
                victim.meta.column_group,
                kept,
            )?)
        };

        let rewritten_bytes = replacement.as_ref().map_or(0, |meta| meta.file_size);
        {
            let mut inner = self.inner.write();
            let Some(pos) = inner.levels[level]
                .iter()
                .position(|f| f.meta.file_number == victim.meta.file_number)
            else {
                // The victim vanished (e.g. a foreground flush raced us on
                // Level-0 bookkeeping); discard the replacement we built for
                // it rather than leaving an orphan file behind.
                if let Some(meta) = &replacement {
                    let _ = self.storage.delete(&meta.file_name());
                }
                return Ok(true);
            };
            match replacement {
                Some(meta) => {
                    let table = TableHandle::open_with_cache(
                        &self.storage,
                        &meta.file_name(),
                        self.cache.clone(),
                    )?;
                    // Replace in place so Level-0's oldest-first order (and
                    // deeper levels' sort) is preserved.
                    inner.levels[level][pos] = LevelFile { meta, table };
                }
                None => {
                    inner.levels[level].remove(pos);
                }
            }
            self.persist_manifest(&inner)?;
            let _ = self.storage.delete(&victim.meta.file_name());
        }
        self.stats
            .trimmed_entries
            .fetch_add(trimmed, Ordering::Relaxed);
        self.stats.trim_compactions.fetch_add(1, Ordering::Relaxed);
        if let (Some(telemetry), Some(start)) = (telemetry, trim_start) {
            telemetry.trim_event(
                start.elapsed(),
                victim.meta.file_size,
                rewritten_bytes,
                trimmed,
            );
        }
        Ok(true)
    }

    /// True if some SST still carries entries outside the key bound.
    pub fn needs_trim(&self) -> bool {
        let Some((lo, hi)) = self.key_bound() else {
            return false;
        };
        let inner = self.inner.read();
        inner
            .levels
            .iter()
            .flatten()
            .any(|f| f.table.spans_outside(lo, hi))
    }
}

impl EngineMaintenance for LsmDb {
    fn maintenance_cell(&self) -> &OnceLock<MaintenanceHandle> {
        &self.maintenance
    }

    fn write_room(&self) -> &BackpressureGate {
        &self.write_room
    }

    fn backpressure_config(&self) -> BackpressureConfig {
        BackpressureConfig {
            l0_slowdown_files: self.options.l0_slowdown_files,
            l0_stall_files: self.options.l0_stall_files,
            max_pending_jobs: self.options.max_pending_jobs,
        }
    }

    fn compaction_kind(&self) -> JobKind {
        JobKind::Compaction
    }

    /// Freezes the mutable memtable (rotating the WAL segment) when it
    /// crossed the size threshold.
    fn freeze_if_full(&self) -> Result<bool> {
        let mut inner = self.inner.write();
        let Some(mutable) = inner.mutable.as_ref() else {
            return Ok(false);
        };
        if mutable.approximate_bytes() < self.options.memtable_size_bytes || mutable.is_empty() {
            return Ok(false);
        }
        self.freeze_locked(&mut inner)
    }

    fn flush_frozen_one(&self) -> Result<bool> {
        self.flush_frozen_one_impl()
    }

    fn compact_once(&self) -> Result<bool> {
        LsmDb::compact_once(self)
    }

    /// True if some level (by bytes, or Level-0 by file count) overflows.
    fn needs_compaction(&self) -> bool {
        let inner = self.inner.read();
        self.pick_compaction_level(&inner).is_some()
    }

    fn has_frozen_memtables(&self) -> bool {
        !self.inner.read().immutables.is_empty()
    }

    fn l0_pressure(&self) -> usize {
        let inner = self.inner.read();
        inner.levels[0].len() + inner.immutables.len()
    }

    fn maybe_flush(&self) -> Result<()> {
        let should_flush = {
            let inner = self.inner.read();
            inner
                .mutable
                .as_ref()
                .map(|m| m.approximate_bytes() >= self.options.memtable_size_bytes)
                .unwrap_or(false)
        };
        if should_flush {
            self.flush()?;
        }
        Ok(())
    }

    fn auto_compact(&self) -> bool {
        self.options.auto_compact
    }

    fn trim_once(&self) -> Result<bool> {
        LsmDb::trim_once(self)
    }

    fn needs_trim(&self) -> bool {
        LsmDb::needs_trim(self)
    }

    fn record_throttle(&self, throttle: Throttle) {
        match throttle {
            Throttle::Stall => {
                self.stats.stall_events.fetch_add(1, Ordering::Relaxed);
            }
            Throttle::Slowdown => {
                self.stats.slowdown_events.fetch_add(1, Ordering::Relaxed);
            }
            Throttle::None => {}
        }
    }

    fn record_stall_duration(&self, waited: Duration) {
        if let Some(telemetry) = self.telemetry.get() {
            telemetry.stall_event(waited);
        }
    }
}

impl MaintainableEngine for LsmDb {
    /// Forwards to the shared [`EngineMaintenance::run_job`] protocol. A
    /// persistent storage fault escaping a background job degrades the
    /// engine to read-only instead of letting the pool churn against a
    /// broken device.
    fn run_maintenance_job(&self, kind: JobKind) -> Result<()> {
        let result = self.run_job(kind);
        if let Err(e) = &result {
            self.note_storage_error(e);
        }
        result
    }
}

fn filter_tombstone(ik: InternalKey, value: Vec<u8>) -> Option<Vec<u8>> {
    if ik.kind == ValueKind::Tombstone {
        None
    } else {
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn small_db() -> LsmDb {
        LsmDb::open_in_memory(LsmOptions::small_for_tests()).unwrap()
    }

    #[test]
    fn put_get_roundtrip() {
        let db = small_db();
        db.put(1, b"one".to_vec()).unwrap();
        db.put(2, b"two".to_vec()).unwrap();
        assert_eq!(db.get(1).unwrap(), Some(b"one".to_vec()));
        assert_eq!(db.get(2).unwrap(), Some(b"two".to_vec()));
        assert_eq!(db.get(3).unwrap(), None);
    }

    #[test]
    fn overwrite_returns_latest() {
        let db = small_db();
        db.put(7, b"v1".to_vec()).unwrap();
        db.put(7, b"v2".to_vec()).unwrap();
        assert_eq!(db.get(7).unwrap(), Some(b"v2".to_vec()));
        db.flush().unwrap();
        db.put(7, b"v3".to_vec()).unwrap();
        assert_eq!(db.get(7).unwrap(), Some(b"v3".to_vec()));
    }

    #[test]
    fn delete_hides_key() {
        let db = small_db();
        db.put(5, b"x".to_vec()).unwrap();
        db.delete(5).unwrap();
        assert_eq!(db.get(5).unwrap(), None);
        // Deleting a missing key is fine.
        db.delete(99).unwrap();
        assert_eq!(db.get(99).unwrap(), None);
    }

    #[test]
    fn snapshot_reads_see_past_versions() {
        let db = small_db();
        db.put(1, b"a".to_vec()).unwrap();
        let snap = db.last_seq();
        db.put(1, b"b".to_vec()).unwrap();
        assert_eq!(db.get_at(1, snap).unwrap(), Some(b"a".to_vec()));
        assert_eq!(db.get(1).unwrap(), Some(b"b".to_vec()));
    }

    #[test]
    fn flush_moves_data_to_level0() {
        let db = small_db();
        for i in 0..100u64 {
            db.put(i, vec![i as u8; 64]).unwrap();
        }
        db.flush().unwrap();
        assert_eq!(db.memtable_len(), 0);
        let files = db.level_files();
        let total_l0_plus: usize = files.iter().map(|l| l.len()).sum();
        assert!(total_l0_plus > 0, "expected at least one SST after flush");
        for i in 0..100u64 {
            assert_eq!(db.get(i).unwrap(), Some(vec![i as u8; 64]));
        }
    }

    #[test]
    fn scan_merges_memtable_and_disk() {
        let db = small_db();
        for i in 0..50u64 {
            db.put(i, vec![1]).unwrap();
        }
        db.flush().unwrap();
        for i in 50..100u64 {
            db.put(i, vec![2]).unwrap();
        }
        let all = db.scan(0, 99).unwrap();
        assert_eq!(all.len(), 100);
        assert_eq!(all.first().unwrap().0, 0);
        assert_eq!(all.last().unwrap().0, 99);
        let window = db.scan(40, 59).unwrap();
        assert_eq!(window.len(), 20);
        assert!(window.iter().all(|(k, v)| if *k < 50 {
            v == &vec![1]
        } else {
            v == &vec![2]
        }));
    }

    #[test]
    fn scan_skips_deleted_and_old_versions() {
        let db = small_db();
        for i in 0..20u64 {
            db.put(i, b"old".to_vec()).unwrap();
        }
        db.flush().unwrap();
        for i in 0..10u64 {
            db.put(i, b"new".to_vec()).unwrap();
        }
        for i in 15..20u64 {
            db.delete(i).unwrap();
        }
        let result = db.scan(0, 19).unwrap();
        assert_eq!(result.len(), 15);
        for (k, v) in &result {
            if *k < 10 {
                assert_eq!(v, b"new");
            } else {
                assert_eq!(v, b"old");
            }
        }
    }

    #[test]
    fn compaction_keeps_data_correct_and_bounded() {
        let mut options = LsmOptions::small_for_tests();
        options.auto_compact = true;
        let db = LsmDb::open_in_memory(options).unwrap();
        // Write enough data (with overwrites) to force several compactions.
        for round in 0..6u64 {
            for i in 0..400u64 {
                db.put(i, format!("round-{round}-key-{i}").into_bytes())
                    .unwrap();
            }
        }
        db.flush().unwrap();
        db.compact_until_stable().unwrap();
        let stats = db.stats();
        assert!(stats.compactions > 0, "expected compactions to run");
        // All keys resolve to the latest round.
        for i in (0..400u64).step_by(17) {
            assert_eq!(
                db.get(i).unwrap(),
                Some(format!("round-5-key-{i}").into_bytes())
            );
        }
        // No level (other than the last) exceeds its capacity.
        let sizes = db.level_sizes();
        for (level, size) in sizes.iter().enumerate().take(sizes.len() - 1) {
            let cap = db.options().level_capacity_bytes(level);
            assert!(
                *size <= cap,
                "level {level} has {size} bytes, capacity {cap}"
            );
        }
    }

    #[test]
    fn data_ages_into_deeper_levels() {
        let mut options = LsmOptions::small_for_tests();
        options.compaction_priority = CompactionPriority::OldestSmallestSeqFirst;
        let db = LsmDb::open_in_memory(options).unwrap();
        for i in 0..3000u64 {
            db.put(i, vec![0u8; 32]).unwrap();
        }
        db.flush().unwrap();
        db.compact_until_stable().unwrap();
        let files = db.level_files();
        let populated: Vec<usize> = files
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert!(
            populated.iter().any(|&l| l >= 1),
            "expected data to reach level >= 1, levels populated: {populated:?}"
        );
    }

    #[test]
    fn recovery_from_manifest_and_wal() {
        let storage: StorageRef = MemStorage::new_ref();
        let options = LsmOptions::small_for_tests();
        {
            let db = LsmDb::open(Arc::clone(&storage), options.clone()).unwrap();
            for i in 0..500u64 {
                db.put(i, i.to_le_bytes().to_vec()).unwrap();
            }
            db.flush().unwrap();
            // These writes stay only in the WAL (no flush).
            for i in 500..600u64 {
                db.put(i, i.to_le_bytes().to_vec()).unwrap();
            }
            // Drop without closing: simulates a crash.
        }
        let db = LsmDb::open(Arc::clone(&storage), options).unwrap();
        for i in (0..600u64).step_by(29) {
            assert_eq!(
                db.get(i).unwrap(),
                Some(i.to_le_bytes().to_vec()),
                "key {i} lost after recovery"
            );
        }
    }

    #[test]
    fn recovery_without_wal_keeps_flushed_data_only() {
        let storage: StorageRef = MemStorage::new_ref();
        let options = LsmOptions::small_for_tests();
        {
            let db = LsmDb::open(Arc::clone(&storage), options.clone()).unwrap();
            for i in 0..100u64 {
                db.put(i, vec![1]).unwrap();
            }
            db.flush().unwrap();
            for i in 100..150u64 {
                db.put(i, vec![2]).unwrap();
            }
            db.remove_wal().unwrap();
        }
        let db = LsmDb::open(Arc::clone(&storage), options).unwrap();
        assert_eq!(db.get(50).unwrap(), Some(vec![1]));
        assert_eq!(
            db.get(120).unwrap(),
            None,
            "unflushed data without WAL is lost"
        );
    }

    #[test]
    fn compaction_priorities_differ_in_choice() {
        // Construct a level-1 with two files: one big and new, one small and old.
        // ByCompensatedSize must pick the big one, OldestSmallestSeqFirst the old one.
        for (priority, expect_oldest) in [
            (CompactionPriority::ByCompensatedSize, false),
            (CompactionPriority::OldestSmallestSeqFirst, true),
        ] {
            let mut options = LsmOptions::small_for_tests();
            options.compaction_priority = priority;
            options.auto_compact = false;
            let db = LsmDb::open_in_memory(options).unwrap();
            // Old small batch.
            for i in 0..50u64 {
                db.put(i, vec![0u8; 16]).unwrap();
            }
            db.flush().unwrap();
            // New large batch over a disjoint range.
            for i in 10_000..10_400u64 {
                db.put(i, vec![0u8; 64]).unwrap();
            }
            db.flush().unwrap();
            {
                // Both flushed files sit in level 0; compact them into level 1
                // so the priority choice applies to level 1 next time.
                db.compact_until_stable().unwrap();
            }
            let inner = db.inner.read();
            if inner.levels[1].len() < 2 {
                // Not enough structure to differentiate priorities; acceptable
                // for the small sizes, skip assertion.
                continue;
            }
            let chosen = db.pick_input_files(&inner, 1);
            assert_eq!(chosen.len(), 1);
            let chosen_meta = inner.levels[1]
                .iter()
                .find(|f| f.meta.file_number == chosen[0])
                .unwrap()
                .meta
                .clone();
            let oldest = inner.levels[1]
                .iter()
                .map(|f| f.meta.min_seq)
                .min()
                .unwrap();
            let biggest = inner.levels[1]
                .iter()
                .map(|f| f.meta.file_size)
                .max()
                .unwrap();
            if expect_oldest {
                assert_eq!(chosen_meta.min_seq, oldest);
            } else {
                assert_eq!(chosen_meta.file_size, biggest);
            }
        }
    }

    #[test]
    fn stats_track_writes() {
        let db = small_db();
        for i in 0..2000u64 {
            db.put(i, vec![0u8; 32]).unwrap();
        }
        db.flush().unwrap();
        let stats = db.stats();
        assert!(stats.flushes >= 1);
        assert!(stats.bytes_written > 0);
        assert!(stats.entries_written >= 2000);
    }

    #[test]
    fn empty_batch_is_noop() {
        let db = small_db();
        let before = db.last_seq();
        db.write(&WriteBatch::new()).unwrap();
        assert_eq!(db.last_seq(), before);
    }

    #[test]
    fn enospc_degrades_to_read_only_and_self_recovers() {
        use crate::storage::FaultStorage;
        let (storage, faults) = FaultStorage::wrap(MemStorage::new_ref(), 3);
        let db = LsmDb::open(storage, LsmOptions::small_for_tests()).unwrap();
        db.put(1, b"a".to_vec()).unwrap();
        faults.set_disk_full(true);
        // The write that hits the full disk surfaces the raw ENOSPC and
        // flips the engine read-only.
        let err = db.put(2, b"b".to_vec()).unwrap_err();
        assert!(err.is_disk_full());
        assert!(db.is_degraded());
        assert!(!db.is_healthy());
        // Later writes are rejected with the typed error...
        assert!(db.put(3, b"c".to_vec()).unwrap_err().is_read_only());
        // ...flushes are blocked...
        assert!(db.flush().unwrap_err().is_read_only());
        // ...but reads keep serving.
        assert_eq!(db.get(1).unwrap(), Some(b"a".to_vec()));
        assert_eq!(db.scan(0, 10).unwrap().len(), 1);
        // Space freed: the very next write probes, recovers and succeeds.
        faults.set_disk_full(false);
        db.put(2, b"b".to_vec()).unwrap();
        assert!(!db.is_degraded());
        assert!(db.is_healthy());
        db.flush().unwrap();
        assert_eq!(db.get(2).unwrap(), Some(b"b".to_vec()));
        assert!(db.degraded_info().is_none());
    }

    #[test]
    fn transient_eio_on_flush_path_is_retried() {
        use crate::storage::FaultStorage;
        let (storage, faults) = FaultStorage::wrap(MemStorage::new_ref(), 11);
        let db = LsmDb::open(storage, LsmOptions::small_for_tests()).unwrap();
        for i in 0..50u64 {
            db.put(i, vec![i as u8; 32]).unwrap();
        }
        // A heavy (but transient) EIO rate on the SST/manifest path: the
        // bounded-backoff retry rebuilds the table until a build gets
        // through, so the flush still succeeds and nothing degrades.
        faults.set_eio_per_mille(300);
        let result = db.flush();
        faults.set_eio_per_mille(0);
        if result.is_err() {
            // The retry budget is bounded; with an unlucky seed the flush
            // may still escalate. Heal and assert the engine recovers.
            assert!(db.probe_recovery());
        }
        db.flush().unwrap();
        assert!(!db.is_degraded());
        for i in (0..50u64).step_by(7) {
            assert_eq!(db.get(i).unwrap(), Some(vec![i as u8; 32]));
        }
    }
}
