//! Background maintenance: a threaded flush/compaction job scheduler.
//!
//! Both engines of this workspace historically ran *all* maintenance on the
//! write path: `write()` flushed the memtable synchronously and then looped
//! `compact_until_stable()`. That serialises reshaping work with foreground
//! traffic, which is exactly what a real-time LSM-Tree must avoid.
//!
//! The [`JobScheduler`] owns a configurable pool of worker threads consuming
//! a queue of [`JobKind`] jobs. Engines stay agnostic of threading: they
//! implement [`MaintainableEngine::run_maintenance_job`] and receive a
//! [`MaintenanceHandle`] that the write path uses to enqueue work and to
//! consult queue depth for backpressure. Jobs hold only a `Weak` reference to
//! the engine, so dropping the engine never deadlocks on its own workers; a
//! job whose engine is gone is silently skipped.
//!
//! ## Shutdown
//!
//! Dropping the scheduler closes the queue, lets the workers finish every
//! job already enqueued (so a frozen memtable whose flush was scheduled is
//! never lost), and joins them. [`JobScheduler::wait_idle`] offers the same
//! barrier without shutting down, which benches and tests use to settle the
//! tree deterministically.
//!
//! ## Backpressure
//!
//! The scheduler exposes pending-job depth per [`JobKind`]; engines combine
//! it with their Level-0 file count to implement the usual two-step policy
//! (sleep briefly at the *slowdown* threshold, block at the *stall*
//! threshold until a job completes). The thresholds live in the engine
//! options (`l0_slowdown_files` / `l0_stall_files` / `max_pending_jobs`).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{Error, Result};

/// The kinds of background work the scheduler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Flush one frozen memtable to a Level-0 SST.
    Flush,
    /// One whole-level compaction step (`lsm-storage`'s leveled compaction).
    Compaction,
    /// One CG-local compaction step (`laser-core`'s layout-changing merge).
    CgCompaction,
    /// One trim-compaction step: rewrite one SST that still carries entries
    /// outside the engine's key bound (left behind by a shard split that
    /// adopted the file by reference instead of rewriting it).
    Trim,
}

/// Number of distinct [`JobKind`] variants (sizes the per-kind counters).
const NUM_JOB_KINDS: usize = 4;

impl JobKind {
    fn index(self) -> usize {
        match self {
            JobKind::Flush => 0,
            JobKind::Compaction => 1,
            JobKind::CgCompaction => 2,
            JobKind::Trim => 3,
        }
    }
}

/// An engine that can execute maintenance jobs on behalf of the scheduler.
pub trait MaintainableEngine: Send + Sync + 'static {
    /// Executes one job of `kind`. Called from scheduler worker threads; the
    /// engine is responsible for its own internal locking and for notifying
    /// any writers blocked on backpressure once state has changed.
    fn run_maintenance_job(&self, kind: JobKind) -> Result<()>;
}

/// Per-handle (per-engine) pending counters. A scheduler shared by many
/// shards tracks queue depth both globally (in [`SchedulerState`], for
/// `wait_idle` and pool-wide gauges) and per registered handle, so one
/// shard's pending compaction never suppresses or stalls another shard's.
#[derive(Debug, Default)]
struct HandleState {
    pending: AtomicUsize,
    pending_per_kind: [AtomicUsize; NUM_JOB_KINDS],
}

struct Job {
    kind: JobKind,
    engine: Weak<dyn MaintainableEngine>,
    /// Counters of the handle that submitted this job.
    local: Arc<HandleState>,
}

enum Message {
    Work(Job),
    /// Sent once per worker at shutdown; everything enqueued earlier drains
    /// first (FIFO), so no scheduled flush is lost.
    Shutdown,
}

/// Shared counters describing the scheduler's queue and history.
#[derive(Debug, Default)]
pub struct SchedulerState {
    /// Jobs enqueued or currently running, in total and per kind.
    pending: AtomicUsize,
    pending_per_kind: [AtomicUsize; NUM_JOB_KINDS],
    completed: AtomicU64,
    failed: AtomicU64,
    shutdown: AtomicBool,
    last_error: Mutex<Option<String>>,
    idle: Condvar,
    idle_lock: Mutex<()>,
}

impl SchedulerState {
    /// Jobs enqueued or running.
    pub fn pending_jobs(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Jobs of one kind enqueued or running.
    pub fn pending_of(&self, kind: JobKind) -> usize {
        self.pending_per_kind[kind.index()].load(Ordering::Acquire)
    }

    /// Jobs completed successfully since the scheduler started.
    pub fn completed_jobs(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Jobs that returned an error.
    pub fn failed_jobs(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Message of the most recent failed job, if any.
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().clone()
    }

    fn job_started(&self) {}

    fn job_finished(&self, kind: JobKind, local: &HandleState, result: &Result<()>) {
        match result {
            Ok(()) => {
                self.completed.fetch_add(1, Ordering::Relaxed);
            }
            Err(e) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                *self.last_error.lock() = Some(e.to_string());
            }
        }
        self.settle(kind, local);
    }

    fn job_skipped(&self, kind: JobKind, local: &HandleState) {
        self.settle(kind, local);
    }

    fn settle(&self, kind: JobKind, local: &HandleState) {
        local.pending_per_kind[kind.index()].fetch_sub(1, Ordering::AcqRel);
        local.pending.fetch_sub(1, Ordering::AcqRel);
        self.pending_per_kind[kind.index()].fetch_sub(1, Ordering::AcqRel);
        self.pending.fetch_sub(1, Ordering::AcqRel);
        let _guard = self.idle_lock.lock();
        self.idle.notify_all();
    }
}

/// The handle an engine keeps to its scheduler: submit jobs, observe depth.
///
/// Holds only the queue sender and shared counters — never the worker
/// threads — so an engine owning a handle does not keep the scheduler alive
/// or interfere with its shutdown.
#[derive(Clone)]
pub struct MaintenanceHandle {
    tx: Sender<Message>,
    state: Arc<SchedulerState>,
    /// This handle's own pending counters; distinct per registered engine so
    /// shards sharing one scheduler observe only their own queue depth.
    local: Arc<HandleState>,
    engine: Weak<dyn MaintainableEngine>,
}

impl std::fmt::Debug for MaintenanceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MaintenanceHandle")
            .field("pending", &self.state.pending_jobs())
            .finish()
    }
}

impl MaintenanceHandle {
    /// Enqueues a job. Returns false if the scheduler has shut down.
    pub fn submit(&self, kind: JobKind) -> bool {
        if self.state.shutdown.load(Ordering::Acquire) {
            return false;
        }
        self.local.pending.fetch_add(1, Ordering::AcqRel);
        self.local.pending_per_kind[kind.index()].fetch_add(1, Ordering::AcqRel);
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        self.state.pending_per_kind[kind.index()].fetch_add(1, Ordering::AcqRel);
        let job = Job {
            kind,
            engine: Weak::clone(&self.engine),
            local: Arc::clone(&self.local),
        };
        if self.tx.send(Message::Work(job)).is_err() {
            self.state.job_skipped(kind, &self.local);
            return false;
        }
        true
    }

    /// Enqueues a job only if this handle has none of that kind already
    /// pending, so the write path cannot flood the queue with duplicate
    /// compaction requests. Deduplication is per engine: on a scheduler
    /// shared by many shards, one shard's pending compaction never
    /// suppresses another's.
    pub fn submit_if_idle(&self, kind: JobKind) -> bool {
        if self.local.pending_per_kind[kind.index()].load(Ordering::Acquire) > 0 {
            return false;
        }
        self.submit(kind)
    }

    /// True once the owning [`JobScheduler`] has been dropped. Engines fall
    /// back to their inline flush/compaction path when this turns true, so
    /// writes keep making progress after shutdown.
    pub fn is_shutdown(&self) -> bool {
        self.state.shutdown.load(Ordering::Acquire)
    }

    /// Scheduler counters (global across every handle of the scheduler).
    pub fn state(&self) -> &Arc<SchedulerState> {
        &self.state
    }

    /// Jobs this handle enqueued that are still queued or running. On a
    /// dedicated scheduler this equals the global queue depth; on a shared
    /// one it is this engine's share, which is what backpressure should see.
    pub fn pending_jobs(&self) -> usize {
        self.local.pending.load(Ordering::Acquire)
    }

    /// Jobs queued or running across the whole scheduler (every handle).
    pub fn scheduler_pending_jobs(&self) -> usize {
        self.state.pending_jobs()
    }
}

/// A cloneable submission-side view of a [`JobScheduler`]: just the queue
/// sender and the shared counters, without the worker threads. It lets a
/// component that cannot borrow the scheduler itself — e.g. the replication
/// health monitor re-provisioning a lost replica from its own thread —
/// register late-arriving engines with the shared pool. A client outliving
/// its scheduler degrades gracefully: handles registered through it refuse
/// submissions (`is_shutdown`), so the engine maintains itself inline.
#[derive(Clone)]
pub struct SchedulerClient {
    tx: Sender<Message>,
    state: Arc<SchedulerState>,
}

impl std::fmt::Debug for SchedulerClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerClient")
            .field("pending", &self.state.pending_jobs())
            .finish()
    }
}

impl SchedulerClient {
    /// Creates a submission handle for `engine` on the scheduler's queue
    /// (see [`JobScheduler::register`]).
    pub fn register(&self, engine: &Arc<dyn MaintainableEngine>) -> MaintenanceHandle {
        MaintenanceHandle {
            tx: self.tx.clone(),
            state: Arc::clone(&self.state),
            local: Arc::new(HandleState::default()),
            engine: Arc::downgrade(engine),
        }
    }
}

/// Backpressure thresholds, mirrored from the engine options.
#[derive(Debug, Clone, Copy)]
pub struct BackpressureConfig {
    /// L0 pressure at which writers briefly yield.
    pub l0_slowdown_files: usize,
    /// L0 pressure at which writers block until a job completes.
    pub l0_stall_files: usize,
    /// Pending-job depth at which writers block.
    pub max_pending_jobs: usize,
}

/// What the gate did to one write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throttle {
    /// No threshold was hit.
    None,
    /// The writer yielded briefly (slowdown threshold).
    Slowdown,
    /// The writer blocked until background work made room (stall threshold).
    Stall,
}

/// The writer-side throttling gate shared by both engines: the two-step
/// slowdown/stall policy over L0 pressure and scheduler queue depth.
/// Maintenance jobs call [`BackpressureGate::notify`] after making progress.
#[derive(Default)]
pub struct BackpressureGate {
    lock: Mutex<()>,
    condvar: Condvar,
}

impl std::fmt::Debug for BackpressureGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BackpressureGate")
    }
}

impl BackpressureGate {
    /// Creates an open gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wakes all writers parked on the gate.
    pub fn notify(&self) {
        let _guard = self.lock.lock();
        self.condvar.notify_all();
    }

    /// Applies the two-step policy before a write. `l0_pressure` counts
    /// on-disk L0 files plus frozen memtables; `needs_flush` reports whether
    /// frozen memtables await flushing (so a stalled writer kicks a Flush
    /// rather than a useless compaction); `compaction_kind` is the engine's
    /// compaction job flavour. Returns what happened, for stats accounting.
    /// Returns immediately once the scheduler has shut down — the caller
    /// then maintains the tree inline.
    pub fn wait_for_room(
        &self,
        config: BackpressureConfig,
        handle: &MaintenanceHandle,
        l0_pressure: &dyn Fn() -> usize,
        needs_flush: &dyn Fn() -> bool,
        compaction_kind: JobKind,
    ) -> Throttle {
        if handle.is_shutdown() {
            return Throttle::None;
        }
        let l0 = l0_pressure();
        let pending = handle.pending_jobs();
        if l0 >= config.l0_stall_files || pending >= config.max_pending_jobs {
            let failed_at_entry = handle.state().failed_jobs();
            let mut guard = self.lock.lock();
            loop {
                if handle.is_shutdown() {
                    break;
                }
                // A backend that keeps failing jobs will never clear the
                // pileup; stop stalling rather than hang the writer (the
                // failure stays visible via stats().bg_jobs_failed).
                if handle.state().failed_jobs() > failed_at_entry + 1 {
                    break;
                }
                if l0_pressure() < config.l0_stall_files
                    && handle.pending_jobs() < config.max_pending_jobs
                {
                    break;
                }
                // Make sure something is scheduled that can clear the pileup:
                // a flush if frozen memtables are the pressure, otherwise a
                // compaction. If nothing can be scheduled, bail out rather
                // than waiting forever.
                if handle.pending_jobs() == 0 {
                    let kind = if needs_flush() {
                        JobKind::Flush
                    } else {
                        compaction_kind
                    };
                    // A false return here usually means another writer won
                    // the submission race (fine — a job is now pending);
                    // only a shut-down scheduler justifies giving up.
                    if !handle.submit_if_idle(kind) && handle.is_shutdown() {
                        break;
                    }
                }
                self.condvar
                    .wait_for(&mut guard, std::time::Duration::from_millis(20));
            }
            Throttle::Stall
        } else if l0 >= config.l0_slowdown_files {
            std::thread::sleep(std::time::Duration::from_millis(1));
            Throttle::Slowdown
        } else {
            Throttle::None
        }
    }
}

/// The engine-side maintenance glue shared by every LSM engine in this
/// workspace. Engines supply the storage-specific primitives (freeze, flush
/// one frozen memtable, one compaction step, pressure gauges) and inherit
/// the whole write-path maintenance protocol as default methods:
/// backpressure, freeze-and-enqueue after a write, the inline fallback when
/// no scheduler is attached, and the background job bodies themselves.
///
/// [`attach_engine`] registers a [`JobScheduler`] with an engine implementing
/// this trait, and the engine's [`MaintainableEngine::run_maintenance_job`]
/// impl simply forwards to [`EngineMaintenance::run_job`].
pub trait EngineMaintenance: MaintainableEngine {
    /// The cell holding the registered scheduler handle (set once by
    /// [`attach_engine`]).
    fn maintenance_cell(&self) -> &OnceLock<MaintenanceHandle>;
    /// The gate stalled writers park on.
    fn write_room(&self) -> &BackpressureGate;
    /// Backpressure thresholds, mirrored from the engine options.
    fn backpressure_config(&self) -> BackpressureConfig;
    /// The engine's compaction job flavour.
    fn compaction_kind(&self) -> JobKind;
    /// Freezes the mutable memtable if it crossed the size threshold
    /// (rotating the WAL segment). Returns true if a memtable was frozen.
    fn freeze_if_full(&self) -> Result<bool>;
    /// Flushes the oldest frozen memtable, if any. Returns true if one was
    /// flushed.
    fn flush_frozen_one(&self) -> Result<bool>;
    /// Runs one compaction step if any level overflows. Returns true if work
    /// was done.
    fn compact_once(&self) -> Result<bool>;
    /// True if some level overflows and a compaction would make progress.
    fn needs_compaction(&self) -> bool;
    /// True if frozen memtables await flushing.
    fn has_frozen_memtables(&self) -> bool;
    /// L0 pressure as seen by backpressure: on-disk Level-0 files plus
    /// frozen memtables still waiting for their flush job.
    fn l0_pressure(&self) -> usize;
    /// Inline flush of the mutable memtable when it crossed the size
    /// threshold (the legacy synchronous path).
    fn maybe_flush(&self) -> Result<()>;
    /// Whether the legacy synchronous path compacts after writes.
    fn auto_compact(&self) -> bool;
    /// Records a throttle outcome in the engine's stats.
    fn record_throttle(&self, throttle: Throttle);
    /// Reports how long a write actually stalled on backpressure, so
    /// attached telemetry can histogram the wait and log a stall event.
    /// Called by the default [`EngineMaintenance::apply_backpressure`] only
    /// for [`Throttle::Stall`]; the default is a no-op.
    fn record_stall_duration(&self, _waited: Duration) {}
    /// Rewrites one SST that still carries entries outside the engine's key
    /// bound, dropping them. Returns true if a file was rewritten. Engines
    /// without range restriction keep the default no-op.
    fn trim_once(&self) -> Result<bool> {
        Ok(false)
    }
    /// True if some SST still carries entries outside the engine's key bound
    /// and a [`EngineMaintenance::trim_once`] would make progress.
    fn needs_trim(&self) -> bool {
        false
    }

    // ------------------------------------------------------------------
    // Shared default glue
    // ------------------------------------------------------------------

    /// The registered scheduler handle, if it is still accepting jobs. A
    /// handle whose scheduler has been dropped is treated as absent so
    /// writes fall back to inline maintenance.
    fn active_maintenance(&self) -> Option<&MaintenanceHandle> {
        self.maintenance_cell().get().filter(|h| !h.is_shutdown())
    }

    /// Applies the shared slowdown/stall policy before a write. No-op when
    /// no scheduler is attached.
    fn apply_backpressure(&self) {
        let Some(handle) = self.active_maintenance() else {
            return;
        };
        let start = Instant::now();
        let throttle = self.write_room().wait_for_room(
            self.backpressure_config(),
            handle,
            &|| self.l0_pressure(),
            &|| self.has_frozen_memtables(),
            self.compaction_kind(),
        );
        if throttle != Throttle::None {
            self.record_throttle(throttle);
            if throttle == Throttle::Stall {
                // Engines route this into their telemetry (histogram, event
                // log, and a `stall_wait` retro-span on any active trace).
                self.record_stall_duration(start.elapsed());
            } else {
                // Slowdown yields are brief but real: attribute them when a
                // trace is active (no-op otherwise, off the fast path).
                telemetry::trace::retro_span("slowdown_wait", start.elapsed(), &[]);
            }
        }
    }

    /// Wakes writers parked on backpressure after maintenance made progress.
    fn notify_write_room(&self) {
        self.write_room().notify();
    }

    /// Schedules the flush of already-frozen memtables: enqueues a flush job
    /// when a live scheduler is attached, drains them inline otherwise. The
    /// body of the engines' `freeze_and_schedule` convenience — a manual
    /// `freeze_memtable()` alone leaves the frozen memtable waiting for the
    /// next write-path trigger.
    fn schedule_frozen_flush(&self) -> Result<()> {
        match self.active_maintenance() {
            Some(handle) if handle.submit(JobKind::Flush) => Ok(()),
            // No scheduler (or it shut down between the check and the
            // submit): drain inline instead of leaking the frozen memtable.
            _ => {
                while self.flush_frozen_one()? {}
                Ok(())
            }
        }
    }

    /// The post-write maintenance step: with a scheduler attached, freeze a
    /// full memtable and enqueue flush/compaction jobs; without one, drain
    /// any leftover frozen memtables and run the legacy synchronous path.
    fn after_write_maintenance(&self) -> Result<()> {
        match self.active_maintenance().cloned() {
            Some(handle) => {
                if self.freeze_if_full()? && !handle.submit(JobKind::Flush) {
                    // Scheduler shut down between the check and the submit:
                    // drain the frozen memtable inline instead of leaking it.
                    while self.flush_frozen_one()? {}
                }
                if self.needs_compaction() {
                    handle.submit_if_idle(self.compaction_kind());
                }
            }
            None => {
                // Drain any memtables frozen before a scheduler shutdown,
                // then run the legacy synchronous path.
                if self.has_frozen_memtables() {
                    while self.flush_frozen_one()? {}
                }
                self.maybe_flush()?;
                if self.auto_compact() {
                    while self.compact_once()? {}
                }
            }
        }
        Ok(())
    }

    /// Executes one background job. Flush jobs drain the oldest frozen
    /// memtable and chain a compaction when the tree overflows; compaction
    /// jobs run one step and re-enqueue themselves while work remains, so a
    /// single submission settles the whole tree without monopolising a
    /// worker. Engines forward `MaintainableEngine::run_maintenance_job`
    /// here.
    fn run_job(&self, kind: JobKind) -> Result<()> {
        match kind {
            JobKind::Flush => {
                self.flush_frozen_one()?;
                if self.needs_compaction() {
                    if let Some(handle) = self.maintenance_cell().get() {
                        handle.submit_if_idle(self.compaction_kind());
                    }
                }
                Ok(())
            }
            JobKind::Compaction | JobKind::CgCompaction => {
                let did_work = self.compact_once()?;
                if did_work && self.needs_compaction() {
                    if let Some(handle) = self.maintenance_cell().get() {
                        // `submit_if_idle` would see this running job as
                        // pending, so resubmit directly; bounded because it
                        // only happens while a level still overflows.
                        handle.submit(self.compaction_kind());
                    }
                }
                Ok(())
            }
            JobKind::Trim => {
                // Rewrite one out-of-range file per job and re-enqueue while
                // more remain, so one post-split submission trims the whole
                // shard without monopolising a worker.
                let did_work = self.trim_once()?;
                if did_work && self.needs_trim() {
                    if let Some(handle) = self.maintenance_cell().get() {
                        handle.submit(JobKind::Trim);
                    }
                }
                Ok(())
            }
        }
    }
}

/// Starts a background maintenance scheduler with `num_workers` threads and
/// registers it with `engine` (the shared body of the engines'
/// `attach_maintenance` methods). Errors if a scheduler was already attached.
pub fn attach_engine<E>(engine: &Arc<E>, num_workers: usize) -> Result<JobScheduler>
where
    E: EngineMaintenance + 'static,
{
    let dyn_engine: Arc<dyn MaintainableEngine> = Arc::clone(engine) as Arc<dyn MaintainableEngine>;
    let (scheduler, handle) = JobScheduler::start(&dyn_engine, num_workers);
    if engine.maintenance_cell().set(handle).is_err() {
        return Err(Error::invalid(
            "a maintenance scheduler is already attached",
        ));
    }
    Ok(scheduler)
}

/// Registers one engine with an existing shared scheduler: a submission
/// handle with its own pending counters is created and installed in the
/// engine's maintenance cell. Used both at open (for every initial shard)
/// and when a shard split brings new child engines online mid-flight.
/// Errors if the engine already has a scheduler attached.
pub fn register_shard_engine<E>(scheduler: &JobScheduler, engine: &Arc<E>) -> Result<()>
where
    E: EngineMaintenance + 'static,
{
    register_shard_engine_with(&scheduler.client(), engine)
}

/// [`register_shard_engine`] through a cloneable [`SchedulerClient`], for
/// components that hold a client rather than the scheduler itself (e.g. the
/// replication health monitor registering a re-provisioned replica).
pub fn register_shard_engine_with<E>(client: &SchedulerClient, engine: &Arc<E>) -> Result<()>
where
    E: EngineMaintenance + 'static,
{
    let dyn_engine: Arc<dyn MaintainableEngine> = Arc::clone(engine) as Arc<dyn MaintainableEngine>;
    let handle = client.register(&dyn_engine);
    if engine.maintenance_cell().set(handle).is_err() {
        return Err(Error::invalid(
            "a maintenance scheduler is already attached to a shard",
        ));
    }
    Ok(())
}

/// Starts one shared worker pool with `num_workers` threads and registers
/// every engine of `engines` with it. Used by sharded deployments: all
/// shards submit to the same queue, so flush/compaction of disjoint shards
/// runs in parallel across the pool instead of one-compaction-at-a-time per
/// engine-private scheduler. Errors if any engine already has a scheduler
/// attached (engines registered before the failure keep their handles, whose
/// scheduler is dropped and drained when this function returns).
pub fn attach_shard_engines<E>(engines: &[Arc<E>], num_workers: usize) -> Result<JobScheduler>
where
    E: EngineMaintenance + 'static,
{
    let scheduler = JobScheduler::start_pool(num_workers);
    for engine in engines {
        register_shard_engine(&scheduler, engine)?;
    }
    Ok(scheduler)
}

/// A pool of background worker threads executing maintenance jobs.
///
/// Owns the threads; dropping it drains the queue and joins every worker.
pub struct JobScheduler {
    tx: Sender<Message>,
    /// Kept so shutdown can drain messages that raced past the sentinels.
    rx: Arc<Mutex<Receiver<Message>>>,
    workers: Vec<JoinHandle<()>>,
    state: Arc<SchedulerState>,
}

impl std::fmt::Debug for JobScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobScheduler")
            .field("workers", &self.workers.len())
            .field("pending", &self.state.pending_jobs())
            .finish()
    }
}

impl JobScheduler {
    /// Starts a worker pool with `num_workers` threads (at least one) that is
    /// not yet serving any engine. Engines are attached afterwards with
    /// [`JobScheduler::register`] — a sharded deployment registers every
    /// shard with the same pool, so flushes and compactions of disjoint
    /// shards run genuinely in parallel across the workers.
    pub fn start_pool(num_workers: usize) -> JobScheduler {
        let (tx, rx) = channel::<Message>();
        let rx = Arc::new(Mutex::new(rx));
        let state = Arc::new(SchedulerState::default());
        let workers = (0..num_workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("lsm-maintenance-{i}"))
                    .spawn(move || worker_loop(&rx, &state))
                    .expect("spawn maintenance worker")
            })
            .collect();
        JobScheduler {
            tx,
            rx,
            workers,
            state,
        }
    }

    /// Creates a submission handle for `engine` on this scheduler's queue.
    /// Each handle carries its own pending counters, so per-engine
    /// deduplication and backpressure stay correct when many engines share
    /// one pool.
    pub fn register(&self, engine: &Arc<dyn MaintainableEngine>) -> MaintenanceHandle {
        self.client().register(engine)
    }

    /// A cloneable submission-side view of this scheduler (see
    /// [`SchedulerClient`]).
    pub fn client(&self) -> SchedulerClient {
        SchedulerClient {
            tx: self.tx.clone(),
            state: Arc::clone(&self.state),
        }
    }

    /// Starts `num_workers` worker threads (at least one) for `engine` and
    /// returns the scheduler plus the handle the engine should register via
    /// its `attach_maintenance` method.
    pub fn start(
        engine: &Arc<dyn MaintainableEngine>,
        num_workers: usize,
    ) -> (JobScheduler, MaintenanceHandle) {
        let scheduler = Self::start_pool(num_workers);
        let handle = scheduler.register(engine);
        (scheduler, handle)
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Scheduler counters.
    pub fn state(&self) -> &Arc<SchedulerState> {
        &self.state
    }

    /// Blocks until no job is queued or running. Note that without external
    /// coordination new jobs may be enqueued immediately afterwards.
    pub fn wait_idle(&self) {
        let mut guard = self.state.idle_lock.lock();
        while self.state.pending_jobs() > 0 {
            self.state
                .idle
                .wait_for(&mut guard, std::time::Duration::from_millis(50));
        }
    }
}

impl Drop for JobScheduler {
    /// Clean shutdown: refuse new submissions, enqueue one shutdown sentinel
    /// per worker *behind* every job already queued (so no scheduled flush is
    /// lost), then join the workers.
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        for _ in 0..self.workers.len() {
            let _ = self.tx.send(Message::Shutdown);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // A submit() that passed the shutdown check concurrently with this
        // drop may have enqueued work behind the sentinels; account those
        // jobs as skipped so the pending counters settle at zero (the
        // submitting write path re-drains inline once it sees the shutdown).
        let rx = self.rx.lock();
        while let Ok(message) = rx.try_recv() {
            if let Message::Work(job) = message {
                self.state.job_skipped(job.kind, &job.local);
            }
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Message>>, state: &SchedulerState) {
    loop {
        // Hold the receiver lock only while dequeuing, so workers run jobs
        // concurrently.
        let message = {
            let rx = rx.lock();
            rx.recv()
        };
        let job = match message {
            Ok(Message::Work(job)) => job,
            // A sentinel (or, defensively, a closed queue) ends this worker.
            Ok(Message::Shutdown) | Err(_) => return,
        };
        match job.engine.upgrade() {
            Some(engine) => {
                state.job_started();
                let result = engine.run_maintenance_job(job.kind);
                state.job_finished(job.kind, &job.local, &result);
            }
            // Engine dropped while the job sat in the queue: nothing to do.
            None => state.job_skipped(job.kind, &job.local),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[derive(Default)]
    struct CountingEngine {
        flushes: AtomicU64,
        compactions: AtomicU64,
        slow: bool,
    }

    impl MaintainableEngine for CountingEngine {
        fn run_maintenance_job(&self, kind: JobKind) -> Result<()> {
            if self.slow {
                std::thread::sleep(Duration::from_millis(5));
            }
            match kind {
                JobKind::Flush => self.flushes.fetch_add(1, Ordering::Relaxed),
                _ => self.compactions.fetch_add(1, Ordering::Relaxed),
            };
            Ok(())
        }
    }

    fn start(engine: Arc<CountingEngine>, workers: usize) -> (JobScheduler, MaintenanceHandle) {
        let dyn_engine: Arc<dyn MaintainableEngine> = engine;
        JobScheduler::start(&dyn_engine, workers)
    }

    #[test]
    fn jobs_run_and_counters_settle() {
        let engine = Arc::new(CountingEngine::default());
        let (scheduler, handle) = start(Arc::clone(&engine), 2);
        for _ in 0..10 {
            assert!(handle.submit(JobKind::Flush));
        }
        for _ in 0..5 {
            assert!(handle.submit(JobKind::Compaction));
        }
        scheduler.wait_idle();
        assert_eq!(engine.flushes.load(Ordering::Relaxed), 10);
        assert_eq!(engine.compactions.load(Ordering::Relaxed), 5);
        assert_eq!(handle.pending_jobs(), 0);
        assert_eq!(scheduler.state().completed_jobs(), 15);
        assert_eq!(scheduler.state().failed_jobs(), 0);
    }

    #[test]
    fn drop_while_busy_drains_queue_and_joins() {
        let engine = Arc::new(CountingEngine {
            slow: true,
            ..Default::default()
        });
        let (scheduler, handle) = start(Arc::clone(&engine), 3);
        for _ in 0..20 {
            handle.submit(JobKind::Flush);
        }
        // Dropping immediately must still run everything already enqueued.
        drop(scheduler);
        assert_eq!(engine.flushes.load(Ordering::Relaxed), 20);
        // After shutdown, submissions report failure.
        assert!(!handle.submit(JobKind::Flush));
    }

    #[test]
    fn engine_dropped_jobs_are_skipped() {
        let engine = Arc::new(CountingEngine {
            slow: true,
            ..Default::default()
        });
        let (scheduler, handle) = start(Arc::clone(&engine), 1);
        handle.submit(JobKind::Flush);
        drop(engine);
        // These find no engine to run against once the queue reaches them.
        for _ in 0..5 {
            handle.submit(JobKind::CgCompaction);
        }
        scheduler.wait_idle();
        assert!(scheduler.state().completed_jobs() <= 1);
        assert_eq!(handle.pending_jobs(), 0);
    }

    #[test]
    fn submit_if_idle_deduplicates() {
        let engine = Arc::new(CountingEngine {
            slow: true,
            ..Default::default()
        });
        let (scheduler, handle) = start(Arc::clone(&engine), 1);
        // Block the single worker with flushes, then try duplicate compactions.
        for _ in 0..3 {
            handle.submit(JobKind::Flush);
        }
        assert!(handle.submit_if_idle(JobKind::Compaction));
        assert!(!handle.submit_if_idle(JobKind::Compaction));
        scheduler.wait_idle();
        assert_eq!(engine.compactions.load(Ordering::Relaxed), 1);
    }
}
