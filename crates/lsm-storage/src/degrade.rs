//! Graceful read-only degradation after persistent storage faults.
//!
//! When an engine's storage keeps failing after the WAL's rotation recovery
//! and the SST/manifest path's bounded retries, crashing the process (or the
//! maintenance pool) would also take down every healthy read. Instead the
//! engine flips a [`DegradationController`] into the degraded state:
//!
//! * writes are rejected with [`Error::ReadOnly`](crate::Error::ReadOnly),
//! * reads, scans and replica serving continue from the already-durable tree,
//! * flushes and compactions are blocked (re-running them against a broken
//!   device could duplicate or drop work, breaking at-most-once apply),
//! * a `Degraded` event fires and the `laser_degraded` gauge goes to 1.
//!
//! Recovery is automatic: each rejected write first runs a cheap storage
//! probe, and the moment the device heals (fault cleared, space freed) the
//! engine clears the flag, emits `Recovered` and resumes full service.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Why and since when an engine is read-only.
#[derive(Debug, Clone)]
pub struct DegradedInfo {
    /// Human-readable cause (the display of the triggering error).
    pub reason: String,
    /// How long the engine has been degraded.
    pub since: Duration,
}

#[derive(Debug)]
struct DegradedSince {
    reason: String,
    at: Instant,
}

/// Tracks one engine's read-only degradation state. The flag itself is a
/// lock-free atomic so healthy-path checks cost one relaxed load; the
/// reason/timestamp pair sits behind a mutex taken only on transitions and
/// status queries.
#[derive(Debug, Default)]
pub struct DegradationController {
    degraded: AtomicBool,
    detail: Mutex<Option<DegradedSince>>,
}

impl DegradationController {
    /// A controller starting in the healthy state.
    pub fn new() -> Self {
        Self::default()
    }

    /// True while the engine is read-only.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Enters the degraded state. Returns true on the transition edge (the
    /// caller emits the `Degraded` event exactly once); a repeat enter keeps
    /// the original reason and start time.
    pub fn enter(&self, reason: impl Into<String>) -> bool {
        let mut detail = self.detail.lock();
        if detail.is_some() {
            return false;
        }
        *detail = Some(DegradedSince {
            reason: reason.into(),
            at: Instant::now(),
        });
        self.degraded.store(true, Ordering::Release);
        true
    }

    /// Leaves the degraded state. Returns how long the engine was degraded
    /// on the transition edge (the caller emits `Recovered`), or `None` if
    /// it was already healthy.
    pub fn clear(&self) -> Option<Duration> {
        let mut detail = self.detail.lock();
        let since = detail.take()?;
        self.degraded.store(false, Ordering::Release);
        Some(since.at.elapsed())
    }

    /// The current cause and duration, if degraded.
    pub fn info(&self) -> Option<DegradedInfo> {
        let detail = self.detail.lock();
        detail.as_ref().map(|d| DegradedInfo {
            reason: d.reason.clone(),
            since: d.at.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_fire_once() {
        let ctl = DegradationController::new();
        assert!(!ctl.is_degraded());
        assert!(ctl.enter("no space"));
        assert!(!ctl.enter("still no space"), "repeat enter is not an edge");
        assert!(ctl.is_degraded());
        assert_eq!(ctl.info().unwrap().reason, "no space");
        assert!(ctl.clear().is_some());
        assert!(ctl.clear().is_none(), "repeat clear is not an edge");
        assert!(!ctl.is_degraded());
        assert!(ctl.info().is_none());
    }
}
