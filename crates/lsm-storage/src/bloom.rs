//! Bloom filter over user keys, attached to every SST.
//!
//! The paper assumes SST bloom filters are cached in memory and give an
//! effective point-lookup cost of O(1) for row-style trees (Section 2.2). We
//! use double hashing (Kirsch–Mitzenmacher) over a single 64-bit hash, which
//! is the same construction RocksDB and LevelDB use.

use crate::coding::{get_u32, put_u32};
use crate::error::{Error, Result};
use crate::hash::hash64_seeded;

/// A builder that accumulates keys and produces an encoded bloom filter.
#[derive(Debug, Clone)]
pub struct BloomFilterBuilder {
    bits_per_key: usize,
    hashes: Vec<u64>,
}

impl BloomFilterBuilder {
    /// Creates a builder targeting `bits_per_key` bits per key (10 gives a
    /// false-positive rate of roughly 1%, the value the paper assumes).
    pub fn new(bits_per_key: usize) -> Self {
        BloomFilterBuilder {
            bits_per_key: bits_per_key.max(1),
            hashes: Vec::new(),
        }
    }

    /// Adds a key.
    pub fn add(&mut self, key: &[u8]) {
        self.hashes.push(hash64_seeded(key, 0xb10f));
    }

    /// Number of keys added so far.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// Returns true if no keys have been added.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// Builds the encoded filter. Layout: `[bit array][num_probes: u32][num_bits: u32]`.
    pub fn finish(&self) -> Vec<u8> {
        let n = self.hashes.len().max(1);
        let num_bits = (n * self.bits_per_key).max(64);
        // Optimal probe count is ln(2) * bits/key, clamped to a sane range.
        let num_probes = ((self.bits_per_key as f64 * 0.69) as u32).clamp(1, 30);
        let num_bytes = num_bits.div_ceil(8);
        let num_bits = num_bytes * 8;
        let mut bits = vec![0u8; num_bytes];
        for &h in &self.hashes {
            let mut h1 = h;
            let h2 = h.rotate_left(17) | 1;
            for _ in 0..num_probes {
                let pos = (h1 % num_bits as u64) as usize;
                bits[pos / 8] |= 1 << (pos % 8);
                h1 = h1.wrapping_add(h2);
            }
        }
        let mut out = bits;
        put_u32(&mut out, num_probes);
        put_u32(&mut out, num_bits as u32);
        out
    }
}

/// A decoded bloom filter that answers membership queries.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u8>,
    num_probes: u32,
    num_bits: u64,
}

impl BloomFilter {
    /// Decodes a filter produced by [`BloomFilterBuilder::finish`].
    pub fn decode(data: &[u8]) -> Result<Self> {
        if data.len() < 8 {
            return Err(Error::corruption("bloom filter too short"));
        }
        let num_probes = get_u32(&data[data.len() - 8..])?;
        let num_bits = get_u32(&data[data.len() - 4..])? as u64;
        let bits = data[..data.len() - 8].to_vec();
        if (bits.len() as u64) * 8 < num_bits {
            return Err(Error::corruption(
                "bloom filter bit array shorter than header claims",
            ));
        }
        if num_probes == 0 || num_probes > 64 {
            return Err(Error::corruption("bloom filter probe count out of range"));
        }
        Ok(BloomFilter {
            bits,
            num_probes,
            num_bits,
        })
    }

    /// Returns true if `key` *may* be in the set; false means definitely not.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        if self.num_bits == 0 {
            return true;
        }
        let h = hash64_seeded(key, 0xb10f);
        let mut h1 = h;
        let h2 = h.rotate_left(17) | 1;
        for _ in 0..self.num_probes {
            let pos = (h1 % self.num_bits) as usize;
            if self.bits[pos / 8] & (1 << (pos % 8)) == 0 {
                return false;
            }
            h1 = h1.wrapping_add(h2);
        }
        true
    }

    /// Size of the encoded bit array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.bits.len() + 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn no_false_negatives() {
        let mut b = BloomFilterBuilder::new(10);
        for i in 0..5_000u64 {
            b.add(&key(i));
        }
        let f = BloomFilter::decode(&b.finish()).unwrap();
        for i in 0..5_000u64 {
            assert!(f.may_contain(&key(i)), "false negative for {i}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut b = BloomFilterBuilder::new(10);
        for i in 0..10_000u64 {
            b.add(&key(i));
        }
        let f = BloomFilter::decode(&b.finish()).unwrap();
        let mut fp = 0usize;
        let trials = 20_000u64;
        for i in 1_000_000..1_000_000 + trials {
            if f.may_contain(&key(i)) {
                fp += 1;
            }
        }
        let rate = fp as f64 / trials as f64;
        // 10 bits/key should give ~1%; allow generous slack.
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    #[test]
    fn empty_filter_decodes() {
        let b = BloomFilterBuilder::new(10);
        assert!(b.is_empty());
        let f = BloomFilter::decode(&b.finish()).unwrap();
        // An empty filter may return false for everything (no false negatives
        // are possible since no key was added).
        let _ = f.may_contain(&key(1));
    }

    #[test]
    fn corrupt_filters_rejected() {
        assert!(BloomFilter::decode(&[1, 2, 3]).is_err());
        // Header claims more bits than the array holds.
        let mut bogus = vec![0u8; 4];
        put_u32(&mut bogus, 4);
        put_u32(&mut bogus, 1_000_000);
        assert!(BloomFilter::decode(&bogus).is_err());
        // Zero probes.
        let mut bogus = vec![0u8; 16];
        put_u32(&mut bogus, 0);
        put_u32(&mut bogus, 64);
        assert!(BloomFilter::decode(&bogus).is_err());
    }

    #[test]
    fn one_bit_per_key_still_has_no_false_negatives() {
        let mut b = BloomFilterBuilder::new(1);
        for i in 0..1_000u64 {
            b.add(&key(i));
        }
        let f = BloomFilter::decode(&b.finish()).unwrap();
        for i in 0..1_000u64 {
            assert!(f.may_contain(&key(i)));
        }
    }
}
