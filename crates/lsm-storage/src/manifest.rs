//! Version metadata: which SST files belong to which level.
//!
//! The manifest is a single file containing a checksummed snapshot of the
//! current version (file lists per level, the next file number and the last
//! sequence number). It is rewritten atomically (write to a temporary name
//! then rename) every time the version changes, which keeps recovery trivial:
//! read the one manifest, open the listed files, replay the WAL.

use crate::checksum::crc32;
use crate::coding::{put_u32, put_u64, put_varint64, Decoder};
use crate::error::{Error, Result};
use crate::storage::StorageRef;
use crate::types::{SeqNo, UserKey};
use crate::wal_segment::WalSegmentMeta;

/// Magic number at the start of a manifest file.
const MANIFEST_MAGIC: u64 = 0x4C41_5345_524D_414E; // "LASERMAN"

/// Metadata describing one SST file in the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Monotonically increasing file number; the file name is derived from it.
    pub file_number: u64,
    /// Level the file belongs to.
    pub level: u32,
    /// Smallest user key in the file.
    pub min_user_key: UserKey,
    /// Largest user key in the file.
    pub max_user_key: UserKey,
    /// Number of entries.
    pub num_entries: u64,
    /// File size in bytes.
    pub file_size: u64,
    /// Smallest sequence number in the file.
    pub min_seq: SeqNo,
    /// Largest sequence number in the file.
    pub max_seq: SeqNo,
    /// Identifier of the column group this file stores (always 0 for the plain
    /// key-value engine; LASER uses one file set per column group per level).
    pub column_group: u32,
}

impl FileMeta {
    /// The storage file name for this SST.
    pub fn file_name(&self) -> String {
        format!("{:08}.sst", self.file_number)
    }

    /// Returns true if this file's key range overlaps `[lo, hi]`.
    pub fn overlaps(&self, lo: UserKey, hi: UserKey) -> bool {
        self.min_user_key <= hi && lo <= self.max_user_key
    }

    /// Range-restricted adoption: the metadata this file contributes to a
    /// version that only owns `[lo, hi]` (a shard-split child adopting a
    /// parent SST without rewriting it). `None` if the file lies entirely
    /// outside the range; otherwise the key bounds are clamped to it, so the
    /// adopting tree's per-level disjointness and binary-search invariants
    /// hold even though the underlying file may still carry out-of-range
    /// entries (dropped later by a trim compaction).
    pub fn restricted_to(&self, lo: UserKey, hi: UserKey) -> Option<FileMeta> {
        if !self.overlaps(lo, hi) {
            return None;
        }
        Some(FileMeta {
            min_user_key: self.min_user_key.max(lo),
            max_user_key: self.max_user_key.min(hi),
            ..self.clone()
        })
    }

    fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint64(dst, self.file_number);
        put_varint64(dst, self.level as u64);
        put_u64(dst, self.min_user_key);
        put_u64(dst, self.max_user_key);
        put_varint64(dst, self.num_entries);
        put_varint64(dst, self.file_size);
        put_u64(dst, self.min_seq);
        put_u64(dst, self.max_seq);
        put_varint64(dst, self.column_group as u64);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        Ok(FileMeta {
            file_number: d.varint64()?,
            level: d.varint64()? as u32,
            min_user_key: d.u64()?,
            max_user_key: d.u64()?,
            num_entries: d.varint64()?,
            file_size: d.varint64()?,
            min_seq: d.u64()?,
            max_seq: d.u64()?,
            column_group: d.varint64()? as u32,
        })
    }
}

/// A complete snapshot of the tree's on-disk state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionSnapshot {
    /// Next file number to allocate.
    pub next_file_number: u64,
    /// Last sequence number assigned to a write.
    pub last_seq: SeqNo,
    /// All live files (any level, any column group).
    pub files: Vec<FileMeta>,
    /// Live WAL segments whose records are not yet fully flushed to SSTs.
    /// Recovery replays exactly these (in id order); anything else on disk is
    /// an orphan. Empty in manifests written before WAL segmentation.
    pub wal_segments: Vec<WalSegmentMeta>,
}

impl VersionSnapshot {
    /// Encodes the snapshot with a trailing checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        put_u64(&mut body, MANIFEST_MAGIC);
        put_varint64(&mut body, self.next_file_number);
        put_u64(&mut body, self.last_seq);
        put_varint64(&mut body, self.files.len() as u64);
        for f in &self.files {
            f.encode_to(&mut body);
        }
        put_varint64(&mut body, self.wal_segments.len() as u64);
        for s in &self.wal_segments {
            s.encode_to(&mut body);
        }
        let mut out = body;
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decodes and verifies a snapshot.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < 12 {
            return Err(Error::corruption("manifest too short"));
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 4);
        let stored = crate::coding::get_u32(crc_bytes)?;
        if crc32(body) != stored {
            return Err(Error::corruption("manifest checksum mismatch"));
        }
        let mut d = Decoder::new(body);
        if d.u64()? != MANIFEST_MAGIC {
            return Err(Error::corruption("bad manifest magic"));
        }
        let next_file_number = d.varint64()?;
        let last_seq = d.u64()?;
        let count = d.varint64()? as usize;
        let mut files = Vec::with_capacity(count);
        for _ in 0..count {
            files.push(FileMeta::decode(&mut d)?);
        }
        // Manifests written before WAL segmentation end here.
        let mut wal_segments = Vec::new();
        if !d.is_empty() {
            let count = d.varint64()? as usize;
            for _ in 0..count {
                wal_segments.push(WalSegmentMeta::decode(&mut d)?);
            }
        }
        Ok(VersionSnapshot {
            next_file_number,
            last_seq,
            files,
            wal_segments,
        })
    }
}

/// Name of the live manifest file.
pub const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";

/// Persists a snapshot atomically (write temp, sync, rename).
pub fn write_manifest(storage: &StorageRef, snapshot: &VersionSnapshot) -> Result<()> {
    let mut f = storage.create(MANIFEST_TMP)?;
    f.append(&snapshot.encode())?;
    f.sync()?;
    storage.rename(MANIFEST_TMP, MANIFEST_NAME)?;
    Ok(())
}

/// Reads the current manifest, or returns an empty snapshot if none exists.
pub fn read_manifest(storage: &StorageRef) -> Result<VersionSnapshot> {
    if !storage.exists(MANIFEST_NAME) {
        return Ok(VersionSnapshot::default());
    }
    let data = storage.open(MANIFEST_NAME)?.read_all()?;
    VersionSnapshot::decode(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn sample_file(n: u64, level: u32) -> FileMeta {
        FileMeta {
            file_number: n,
            level,
            min_user_key: n * 100,
            max_user_key: n * 100 + 99,
            num_entries: 1000 + n,
            file_size: 4096 * n,
            min_seq: n,
            max_seq: n + 10,
            column_group: (n % 3) as u32,
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        let snap = VersionSnapshot {
            next_file_number: 42,
            last_seq: 99,
            files: (1..10).map(|n| sample_file(n, (n % 4) as u32)).collect(),
            wal_segments: vec![
                WalSegmentMeta { id: 3, min_seq: 10 },
                WalSegmentMeta { id: 4, min_seq: 55 },
            ],
        };
        let enc = snap.encode();
        let dec = VersionSnapshot::decode(&enc).unwrap();
        assert_eq!(dec, snap);
    }

    #[test]
    fn legacy_snapshot_without_wal_segments_decodes() {
        // Re-create the pre-segmentation encoding: body without the trailing
        // wal-segment list, then the checksum.
        let snap = VersionSnapshot {
            next_file_number: 7,
            last_seq: 20,
            files: vec![sample_file(1, 0)],
            wal_segments: vec![],
        };
        let mut body = Vec::new();
        crate::coding::put_u64(&mut body, super::MANIFEST_MAGIC);
        crate::coding::put_varint64(&mut body, snap.next_file_number);
        crate::coding::put_u64(&mut body, snap.last_seq);
        crate::coding::put_varint64(&mut body, snap.files.len() as u64);
        for f in &snap.files {
            f.encode_to(&mut body);
        }
        let crc = crate::checksum::crc32(&body);
        crate::coding::put_u32(&mut body, crc);
        let dec = VersionSnapshot::decode(&body).unwrap();
        assert_eq!(dec, snap);
    }

    #[test]
    fn empty_snapshot_roundtrip() {
        let snap = VersionSnapshot::default();
        assert_eq!(VersionSnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn corruption_rejected() {
        let snap = VersionSnapshot {
            next_file_number: 1,
            last_seq: 2,
            files: vec![sample_file(1, 0)],
            ..Default::default()
        };
        let mut enc = snap.encode();
        enc[10] ^= 0xFF;
        assert!(VersionSnapshot::decode(&enc).is_err());
        assert!(VersionSnapshot::decode(&enc[..4]).is_err());
    }

    #[test]
    fn write_and_read_manifest() {
        let storage: StorageRef = MemStorage::new_ref();
        // Missing manifest -> empty snapshot.
        assert_eq!(read_manifest(&storage).unwrap(), VersionSnapshot::default());
        let snap = VersionSnapshot {
            next_file_number: 7,
            last_seq: 123,
            files: vec![sample_file(3, 1), sample_file(4, 2)],
            wal_segments: vec![WalSegmentMeta { id: 1, min_seq: 1 }],
        };
        write_manifest(&storage, &snap).unwrap();
        assert_eq!(read_manifest(&storage).unwrap(), snap);
        // Overwrite with a newer snapshot.
        let snap2 = VersionSnapshot {
            next_file_number: 8,
            last_seq: 200,
            ..Default::default()
        };
        write_manifest(&storage, &snap2).unwrap();
        assert_eq!(read_manifest(&storage).unwrap(), snap2);
        // Temp file is not left behind.
        assert!(!storage.exists(MANIFEST_TMP));
    }

    #[test]
    fn file_meta_helpers() {
        let f = sample_file(2, 1);
        assert_eq!(f.file_name(), "00000002.sst");
        assert!(f.overlaps(150, 250));
        assert!(f.overlaps(299, 400));
        assert!(!f.overlaps(300, 400));
        assert!(!f.overlaps(0, 100));
    }
}
