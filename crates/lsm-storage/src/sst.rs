//! Sorted String Table (SST) files.
//!
//! An SST is an immutable, sorted file of internal-key → value entries,
//! produced by flushing a memtable or by compaction. Layout:
//!
//! ```text
//! [data block 0][crc32]
//! [data block 1][crc32]
//! ...
//! [bloom filter block][crc32]
//! [index block][crc32]          // last key of each data block -> block handle
//! [footer]                      // fixed 72 bytes, see Footer
//! ```
//!
//! Index blocks and bloom filters are assumed to be cached in memory, exactly
//! as the paper assumes in its cost analysis (Section 2.1).

use std::sync::Arc;

use crate::block::{Block, BlockBuilder};
use crate::bloom::{BloomFilter, BloomFilterBuilder};
use crate::cache::{BlockCache, CachedBlock, ScopedCache};
use crate::checksum::crc32;
use crate::coding::{put_u32, put_u64, Decoder};
use crate::error::{Error, Result};
use crate::iterator::KvIterator;
use crate::storage::{RandomAccessFile, StorageRef, WritableFile};
use crate::types::{InternalKey, UserKey};

/// Magic number identifying an SST footer.
const SST_MAGIC: u64 = 0x4C41_5345_5253_5354; // "LASERSST"

/// Fixed footer size in bytes.
const FOOTER_SIZE: usize = 80;

/// Location of a block within an SST file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHandle {
    /// Byte offset of the block within the file.
    pub offset: u64,
    /// Length of the block in bytes (excluding the trailing checksum).
    pub size: u64,
}

impl BlockHandle {
    fn encode_to(&self, dst: &mut Vec<u8>) {
        put_u64(dst, self.offset);
        put_u64(dst, self.size);
    }

    fn decode(d: &mut Decoder<'_>) -> Result<Self> {
        Ok(BlockHandle {
            offset: d.u64()?,
            size: d.u64()?,
        })
    }
}

/// Options controlling SST construction.
#[derive(Debug, Clone)]
pub struct TableOptions {
    /// Target uncompressed size of a data block in bytes (RocksDB default: 4 KiB).
    pub block_size: usize,
    /// Bloom filter bits per key (10 ≈ 1% false-positive rate).
    pub bloom_bits_per_key: usize,
    /// Restart interval for key prefix compression inside data blocks.
    pub restart_interval: usize,
    /// Whether to delta/prefix-encode keys within data blocks.
    pub prefix_compression: bool,
}

impl Default for TableOptions {
    fn default() -> Self {
        TableOptions {
            block_size: 4096,
            bloom_bits_per_key: 10,
            restart_interval: 16,
            prefix_compression: true,
        }
    }
}

/// Summary metadata about a finished SST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableProperties {
    /// Number of entries in the table.
    pub num_entries: u64,
    /// Smallest user key present.
    pub min_user_key: UserKey,
    /// Largest user key present.
    pub max_user_key: UserKey,
    /// Total file size in bytes.
    pub file_size: u64,
    /// Number of data blocks.
    pub num_data_blocks: u64,
    /// Smallest sequence number present (proxy for the age of the newest data).
    pub min_seq: u64,
    /// Largest sequence number present.
    pub max_seq: u64,
}

#[derive(Debug, Clone)]
struct Footer {
    bloom_handle: BlockHandle,
    index_handle: BlockHandle,
    num_entries: u64,
    min_user_key: UserKey,
    max_user_key: UserKey,
    min_seq: u64,
    max_seq: u64,
}

impl Footer {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FOOTER_SIZE);
        self.bloom_handle.encode_to(&mut out);
        self.index_handle.encode_to(&mut out);
        put_u64(&mut out, self.num_entries);
        put_u64(&mut out, self.min_user_key);
        put_u64(&mut out, self.max_user_key);
        put_u64(&mut out, self.min_seq);
        put_u64(&mut out, self.max_seq);
        put_u64(&mut out, SST_MAGIC);
        debug_assert_eq!(out.len(), FOOTER_SIZE);
        out
    }

    fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() != FOOTER_SIZE {
            return Err(Error::corruption("sst footer has wrong size"));
        }
        let mut d = Decoder::new(buf);
        let bloom_handle = BlockHandle::decode(&mut d)?;
        let index_handle = BlockHandle::decode(&mut d)?;
        let num_entries = d.u64()?;
        let min_user_key = d.u64()?;
        let max_user_key = d.u64()?;
        let min_seq = d.u64()?;
        let max_seq = d.u64()?;
        let magic = d.u64()?;
        if magic != SST_MAGIC {
            return Err(Error::corruption("bad sst magic number"));
        }
        Ok(Footer {
            bloom_handle,
            index_handle,
            num_entries,
            min_user_key,
            max_user_key,
            min_seq,
            max_seq,
        })
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Builds an SST by appending internal-key/value pairs in sorted order.
pub struct TableBuilder {
    file: Box<dyn WritableFile>,
    options: TableOptions,
    data_block: BlockBuilder,
    index_block: BlockBuilder,
    bloom: BloomFilterBuilder,
    offset: u64,
    num_entries: u64,
    num_data_blocks: u64,
    min_user_key: Option<UserKey>,
    max_user_key: Option<UserKey>,
    min_seq: u64,
    max_seq: u64,
    last_key: Vec<u8>,
}

impl TableBuilder {
    /// Creates a builder writing to `file`.
    pub fn new(file: Box<dyn WritableFile>, options: TableOptions) -> Self {
        let mut data_block = BlockBuilder::with_restart_interval(options.restart_interval);
        data_block.set_prefix_compression(options.prefix_compression);
        TableBuilder {
            bloom: BloomFilterBuilder::new(options.bloom_bits_per_key),
            data_block,
            index_block: BlockBuilder::new(),
            file,
            options,
            offset: 0,
            num_entries: 0,
            num_data_blocks: 0,
            min_user_key: None,
            max_user_key: None,
            min_seq: u64::MAX,
            max_seq: 0,
            last_key: Vec::new(),
        }
    }

    /// Adds an entry. `key` is an encoded [`InternalKey`]; entries must be
    /// added in strictly increasing encoded-key order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if !self.last_key.is_empty() && key <= self.last_key.as_slice() {
            return Err(Error::invalid(
                "sst entries must be added in increasing key order",
            ));
        }
        let decoded = InternalKey::decode(key)?;
        let user_key = decoded.user_key;
        if self.min_user_key.is_none() {
            self.min_user_key = Some(user_key);
        }
        self.max_user_key = Some(user_key);
        self.min_seq = self.min_seq.min(decoded.seq);
        self.max_seq = self.max_seq.max(decoded.seq);
        self.bloom.add(&user_key.to_be_bytes());
        self.data_block.add(key, value)?;
        self.num_entries += 1;
        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        if self.data_block.size_estimate() >= self.options.block_size {
            self.flush_data_block()?;
        }
        Ok(())
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Approximate current file size in bytes.
    pub fn estimated_size(&self) -> u64 {
        self.offset + self.data_block.size_estimate() as u64
    }

    fn flush_data_block(&mut self) -> Result<()> {
        if self.data_block.is_empty() {
            return Ok(());
        }
        let last_key = self.data_block.last_key().to_vec();
        let contents = self.data_block.finish();
        let handle = self.write_block(&contents)?;
        let mut handle_enc = Vec::with_capacity(16);
        handle.encode_to(&mut handle_enc);
        self.index_block.add(&last_key, &handle_enc)?;
        self.num_data_blocks += 1;
        Ok(())
    }

    fn write_block(&mut self, contents: &[u8]) -> Result<BlockHandle> {
        let handle = BlockHandle {
            offset: self.offset,
            size: contents.len() as u64,
        };
        let mut trailer = Vec::with_capacity(4);
        put_u32(&mut trailer, crc32(contents));
        self.file.append(contents)?;
        self.file.append(&trailer)?;
        self.offset += contents.len() as u64 + 4;
        Ok(handle)
    }

    /// Finishes the table, returning its properties. The file is synced.
    pub fn finish(mut self) -> Result<TableProperties> {
        if self.num_entries == 0 {
            return Err(Error::invalid("cannot finish an empty sst"));
        }
        self.flush_data_block()?;
        let bloom_contents = self.bloom.finish();
        let bloom_handle = self.write_block(&bloom_contents)?;
        let index_contents = self.index_block.finish();
        let index_handle = self.write_block(&index_contents)?;
        let footer = Footer {
            bloom_handle,
            index_handle,
            num_entries: self.num_entries,
            min_user_key: self.min_user_key.unwrap_or(0),
            max_user_key: self.max_user_key.unwrap_or(0),
            min_seq: self.min_seq,
            max_seq: self.max_seq,
        };
        self.file.append(&footer.encode())?;
        self.offset += FOOTER_SIZE as u64;
        self.file.sync()?;
        Ok(TableProperties {
            num_entries: self.num_entries,
            min_user_key: footer.min_user_key,
            max_user_key: footer.max_user_key,
            file_size: self.offset,
            num_data_blocks: self.num_data_blocks,
            min_seq: footer.min_seq,
            max_seq: footer.max_seq,
        })
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// An open, immutable SST.
pub struct Table {
    file: Box<dyn RandomAccessFile>,
    index: Block,
    bloom: BloomFilter,
    props: TableProperties,
    name: String,
    /// Shared block cache plus this table's process-unique cache id. Ids are
    /// handed out per *open*, never reused, so cached blocks of a replaced or
    /// deleted SST can never leak into reads of a newer file.
    cache: Option<(Arc<BlockCache>, u64)>,
}

impl Drop for Table {
    fn drop(&mut self) {
        if let Some((cache, id)) = &self.cache {
            cache.evict_table(*id);
        }
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("props", &self.props)
            .finish()
    }
}

impl Table {
    /// Opens an SST by name from a storage backend (no block cache).
    pub fn open(storage: &StorageRef, name: &str) -> Result<Arc<Table>> {
        Self::open_with_cache(storage, name, None)
    }

    /// Opens an SST, serving data-block reads through `cache` when given.
    /// The scope of the handle decides which accounting scope of the shared
    /// cache this table's blocks charge (see [`ScopedCache`]).
    pub fn open_with_cache(
        storage: &StorageRef,
        name: &str,
        cache: Option<ScopedCache>,
    ) -> Result<Arc<Table>> {
        let file = storage.open(name)?;
        let file_size = file.len();
        if file_size < FOOTER_SIZE as u64 {
            return Err(Error::corruption(format!("sst {name} smaller than footer")));
        }
        let footer_buf = file.read_at(file_size - FOOTER_SIZE as u64, FOOTER_SIZE)?;
        let footer = Footer::decode(&footer_buf)?;
        let index_data = read_verified_block(file.as_ref(), footer.index_handle)?;
        let index = Block::decode(index_data)?;
        let bloom_data = read_verified_block(file.as_ref(), footer.bloom_handle)?;
        let bloom = BloomFilter::decode(&bloom_data)?;
        let num_data_blocks = index.entries()?.len() as u64;
        let cache = cache.map(|c| {
            let id = c.register_table();
            (Arc::clone(c.cache()), id)
        });
        Ok(Arc::new(Table {
            file,
            index,
            bloom,
            cache,
            props: TableProperties {
                num_entries: footer.num_entries,
                min_user_key: footer.min_user_key,
                max_user_key: footer.max_user_key,
                file_size,
                num_data_blocks,
                min_seq: footer.min_seq,
                max_seq: footer.max_seq,
            },
            name: name.to_string(),
        }))
    }

    /// Table metadata.
    pub fn properties(&self) -> &TableProperties {
        &self.props
    }

    /// The file name this table was opened from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns false if the bloom filter proves `user_key` is absent.
    pub fn may_contain(&self, user_key: UserKey) -> bool {
        if user_key < self.props.min_user_key || user_key > self.props.max_user_key {
            return false;
        }
        self.bloom.may_contain(&user_key.to_be_bytes())
    }

    /// Returns true if this table's user-key range overlaps `[lo, hi]`.
    pub fn overlaps(&self, lo: UserKey, hi: UserKey) -> bool {
        self.props.min_user_key <= hi && lo <= self.props.max_user_key
    }

    /// Returns true if some entry's user key lies outside `[lo, hi]`. Unlike
    /// the (possibly clamped) manifest metadata, this consults the footer's
    /// *content* bounds — a table adopted into a range-restricted shard
    /// reports true here until a trim compaction rewrites it.
    pub fn spans_outside(&self, lo: UserKey, hi: UserKey) -> bool {
        self.props.min_user_key < lo || self.props.max_user_key > hi
    }

    fn read_data_block(&self, handle: BlockHandle) -> Result<Block> {
        Block::decode(read_verified_block(self.file.as_ref(), handle)?)
    }

    /// Returns the decoded entries of data block `idx`, consulting the shared
    /// block cache first when one is attached.
    fn block_entries(&self, idx: usize, handle: BlockHandle) -> Result<CachedBlock> {
        if let Some((cache, id)) = &self.cache {
            if let Some(entries) = cache.get(*id, idx as u32) {
                return Ok(entries);
            }
            let entries: CachedBlock = Arc::new(self.read_data_block(handle)?.entries()?);
            cache.insert(*id, idx as u32, Arc::clone(&entries));
            return Ok(entries);
        }
        Ok(Arc::new(self.read_data_block(handle)?.entries()?))
    }
}

/// Shared handle to an open table plus convenience lookup operations.
#[derive(Clone, Debug)]
pub struct TableHandle(pub Arc<Table>);

impl TableHandle {
    /// Opens an SST and wraps it in a handle (no block cache).
    pub fn open(storage: &StorageRef, name: &str) -> Result<TableHandle> {
        Ok(TableHandle(Table::open(storage, name)?))
    }

    /// Opens an SST with an attached shared block cache.
    pub fn open_with_cache(
        storage: &StorageRef,
        name: &str,
        cache: Option<ScopedCache>,
    ) -> Result<TableHandle> {
        Ok(TableHandle(Table::open_with_cache(storage, name, cache)?))
    }

    /// Table metadata.
    pub fn properties(&self) -> &TableProperties {
        self.0.properties()
    }

    /// The underlying file name.
    pub fn name(&self) -> &str {
        self.0.name()
    }

    /// Bloom + range check.
    pub fn may_contain(&self, user_key: UserKey) -> bool {
        self.0.may_contain(user_key)
    }

    /// Range overlap check.
    pub fn overlaps(&self, lo: UserKey, hi: UserKey) -> bool {
        self.0.overlaps(lo, hi)
    }

    /// True if some entry's user key lies outside `[lo, hi]` (see
    /// [`Table::spans_outside`]).
    pub fn spans_outside(&self, lo: UserKey, hi: UserKey) -> bool {
        self.0.spans_outside(lo, hi)
    }

    /// Creates an iterator over the whole table.
    pub fn iter(&self) -> TableIterator {
        TableIterator::new(Arc::clone(&self.0))
    }

    /// Point lookup: newest version of `user_key` visible at `seq`.
    pub fn get(&self, user_key: UserKey, seq: u64) -> Result<Option<(InternalKey, Vec<u8>)>> {
        if !self.may_contain(user_key) {
            return Ok(None);
        }
        let mut iter = self.iter();
        let target = InternalKey::seek_to(user_key);
        iter.seek(&target.encode())?;
        while iter.valid() {
            let ik = InternalKey::decode(iter.key())?;
            if ik.user_key != user_key {
                return Ok(None);
            }
            if ik.seq <= seq {
                return Ok(Some((ik, iter.value().to_vec())));
            }
            iter.next()?;
        }
        Ok(None)
    }
}

fn read_verified_block(file: &dyn RandomAccessFile, handle: BlockHandle) -> Result<Vec<u8>> {
    let buf = file.read_at(handle.offset, handle.size as usize + 4)?;
    if buf.len() != handle.size as usize + 4 {
        return Err(Error::corruption("short read for block"));
    }
    let (contents, trailer) = buf.split_at(handle.size as usize);
    let stored = crate::coding::get_u32(trailer)?;
    let actual = crc32(contents);
    if stored != actual {
        return Err(Error::corruption(format!(
            "block checksum mismatch at offset {}: stored {stored:#x} computed {actual:#x}",
            handle.offset
        )));
    }
    Ok(contents.to_vec())
}

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

/// Iterates all entries of a table in key order, loading one data block at a
/// time. Entries of the current block are decoded eagerly so advancing is
/// O(1) and seeking within a block is a binary search.
pub struct TableIterator {
    table: Arc<Table>,
    index_entries: Vec<(Vec<u8>, BlockHandle)>,
    current_block_idx: usize,
    /// Decoded entries of the current block (shared with the block cache).
    current_entries: CachedBlock,
    /// Position of the current entry within `current_entries`.
    entry_idx: usize,
    valid: bool,
    /// Number of data blocks materialised (cache hits included; for I/O
    /// accounting in tests).
    pub blocks_loaded: usize,
}

impl TableIterator {
    /// Creates an iterator positioned before the first entry.
    pub fn new(table: Arc<Table>) -> Self {
        let index_entries = table
            .index
            .entries()
            .unwrap_or_default()
            .into_iter()
            .filter_map(|(k, v)| {
                let mut d = Decoder::new(&v);
                BlockHandle::decode(&mut d).ok().map(|h| (k, h))
            })
            .collect();
        TableIterator {
            table,
            index_entries,
            current_block_idx: 0,
            current_entries: Arc::new(Vec::new()),
            entry_idx: 0,
            valid: false,
            blocks_loaded: 0,
        }
    }

    fn load_block(&mut self, idx: usize) -> Result<bool> {
        if idx >= self.index_entries.len() {
            self.current_entries = Arc::new(Vec::new());
            self.valid = false;
            return Ok(false);
        }
        let handle = self.index_entries[idx].1;
        self.current_entries = self.table.block_entries(idx, handle)?;
        self.blocks_loaded += 1;
        self.current_block_idx = idx;
        self.entry_idx = 0;
        Ok(true)
    }
}

impl KvIterator for TableIterator {
    fn seek_to_first(&mut self) -> Result<()> {
        self.valid = false;
        if self.load_block(0)? && !self.current_entries.is_empty() {
            self.entry_idx = 0;
            self.valid = true;
        }
        Ok(())
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        self.valid = false;
        // Binary search the index for the first block whose last key >= target.
        let mut lo = 0usize;
        let mut hi = self.index_entries.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.index_entries[mid].0.as_slice() < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo >= self.index_entries.len() || !self.load_block(lo)? {
            return Ok(());
        }
        // Binary search within the decoded block for the first key >= target.
        let pos = self
            .current_entries
            .partition_point(|(k, _)| k.as_slice() < target);
        if pos < self.current_entries.len() {
            self.entry_idx = pos;
            self.valid = true;
        } else {
            // Target is past the end of this block; move to the next block.
            let next = self.current_block_idx + 1;
            if self.load_block(next)? && !self.current_entries.is_empty() {
                self.entry_idx = 0;
                self.valid = true;
            }
        }
        Ok(())
    }

    fn next(&mut self) -> Result<()> {
        if !self.valid {
            return Ok(());
        }
        if self.entry_idx + 1 < self.current_entries.len() {
            self.entry_idx += 1;
            return Ok(());
        }
        let next = self.current_block_idx + 1;
        if self.load_block(next)? && !self.current_entries.is_empty() {
            self.entry_idx = 0;
        } else {
            self.valid = false;
        }
        Ok(())
    }

    fn valid(&self) -> bool {
        self.valid
    }

    fn key(&self) -> &[u8] {
        &self.current_entries[self.entry_idx].0
    }

    fn value(&self) -> &[u8] {
        &self.current_entries[self.entry_idx].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use crate::types::ValueKind;

    fn make_table(entries: &[(u64, u64, ValueKind, &[u8])]) -> (StorageRef, TableHandle) {
        let storage: StorageRef = MemStorage::new_ref();
        let file = storage.create("test.sst").unwrap();
        let mut builder = TableBuilder::new(file, TableOptions::default());
        for &(key, seq, kind, value) in entries {
            let ik = InternalKey::new(key, seq, kind);
            builder.add(&ik.encode(), value).unwrap();
        }
        builder.finish().unwrap();
        let handle = TableHandle::open(&storage, "test.sst").unwrap();
        (storage, handle)
    }

    #[test]
    fn build_and_read_small_table() {
        let entries: Vec<(u64, u64, ValueKind, &[u8])> = vec![
            (1, 10, ValueKind::Full, b"one"),
            (2, 11, ValueKind::Full, b"two"),
            (3, 12, ValueKind::Full, b"three"),
        ];
        let (_s, table) = make_table(&entries);
        let props = table.properties().clone();
        assert_eq!(props.num_entries, 3);
        assert_eq!(props.min_user_key, 1);
        assert_eq!(props.max_user_key, 3);

        let mut it = table.iter();
        it.seek_to_first().unwrap();
        let mut seen = Vec::new();
        while it.valid() {
            let ik = InternalKey::decode(it.key()).unwrap();
            seen.push((ik.user_key, it.value().to_vec()));
            it.next().unwrap();
        }
        assert_eq!(
            seen,
            vec![
                (1, b"one".to_vec()),
                (2, b"two".to_vec()),
                (3, b"three".to_vec())
            ]
        );
    }

    #[test]
    fn multi_block_table_roundtrip() {
        let value = vec![7u8; 100];
        let entries: Vec<(u64, u64, ValueKind, &[u8])> = (0..2000u64)
            .map(|i| (i, 1, ValueKind::Full, value.as_slice()))
            .collect();
        let (_s, table) = make_table(&entries);
        assert!(
            table.properties().num_data_blocks > 10,
            "expected many data blocks"
        );
        let mut it = table.iter();
        it.seek_to_first().unwrap();
        let mut count = 0u64;
        while it.valid() {
            let ik = InternalKey::decode(it.key()).unwrap();
            assert_eq!(ik.user_key, count);
            count += 1;
            it.next().unwrap();
        }
        assert_eq!(count, 2000);
    }

    #[test]
    fn seek_lands_on_correct_entry() {
        let value = vec![1u8; 64];
        let entries: Vec<(u64, u64, ValueKind, &[u8])> = (0..1000u64)
            .map(|i| (i * 3, 1, ValueKind::Full, value.as_slice()))
            .collect();
        let (_s, table) = make_table(&entries);
        let mut it = table.iter();
        // Exact hit.
        it.seek(&InternalKey::seek_to(300).encode()).unwrap();
        assert!(it.valid());
        assert_eq!(InternalKey::decode(it.key()).unwrap().user_key, 300);
        // Between keys: next larger.
        it.seek(&InternalKey::seek_to(301).encode()).unwrap();
        assert!(it.valid());
        assert_eq!(InternalKey::decode(it.key()).unwrap().user_key, 303);
        // Past the end.
        it.seek(&InternalKey::seek_to(10_000).encode()).unwrap();
        assert!(!it.valid());
        // Before the beginning.
        it.seek(&InternalKey::seek_to(0).encode()).unwrap();
        assert!(it.valid());
        assert_eq!(InternalKey::decode(it.key()).unwrap().user_key, 0);
    }

    #[test]
    fn get_returns_newest_visible_version() {
        let entries: Vec<(u64, u64, ValueKind, &[u8])> = vec![
            (5, 30, ValueKind::Full, b"v3"),
            (5, 20, ValueKind::Full, b"v2"),
            (5, 10, ValueKind::Full, b"v1"),
            (7, 15, ValueKind::Tombstone, b""),
        ];
        let (_s, table) = make_table(&entries);
        // Latest.
        let (ik, v) = table.get(5, u64::MAX >> 8).unwrap().unwrap();
        assert_eq!((ik.seq, v.as_slice()), (30, &b"v3"[..]));
        // Snapshot in the past.
        let (ik, v) = table.get(5, 25).unwrap().unwrap();
        assert_eq!((ik.seq, v.as_slice()), (20, &b"v2"[..]));
        let (ik, _) = table.get(5, 10).unwrap().unwrap();
        assert_eq!(ik.seq, 10);
        // Before any version existed.
        assert!(table.get(5, 5).unwrap().is_none());
        // Tombstones are surfaced, not hidden.
        let (ik, _) = table.get(7, u64::MAX >> 8).unwrap().unwrap();
        assert_eq!(ik.kind, ValueKind::Tombstone);
        // Missing key.
        assert!(table.get(100, u64::MAX >> 8).unwrap().is_none());
    }

    #[test]
    fn bloom_filter_skips_absent_keys() {
        let entries: Vec<(u64, u64, ValueKind, &[u8])> = (0..100u64)
            .map(|i| (i * 2, 1, ValueKind::Full, &b"v"[..]))
            .collect();
        let (_s, table) = make_table(&entries);
        assert!(table.may_contain(50));
        assert!(
            !table.may_contain(1_000_000),
            "out of range must be excluded"
        );
        // Odd keys inside the range: mostly excluded by the bloom filter.
        let mut excluded = 0;
        for i in 0..100u64 {
            if !table.may_contain(i * 2 + 1) {
                excluded += 1;
            }
        }
        assert!(
            excluded > 90,
            "bloom filter should exclude most absent keys, excluded {excluded}"
        );
    }

    #[test]
    fn unsorted_input_rejected() {
        let storage: StorageRef = MemStorage::new_ref();
        let file = storage.create("bad.sst").unwrap();
        let mut builder = TableBuilder::new(file, TableOptions::default());
        builder
            .add(&InternalKey::new(5, 1, ValueKind::Full).encode(), b"x")
            .unwrap();
        assert!(builder
            .add(&InternalKey::new(4, 1, ValueKind::Full).encode(), b"y")
            .is_err());
    }

    #[test]
    fn empty_table_rejected() {
        let storage: StorageRef = MemStorage::new_ref();
        let file = storage.create("empty.sst").unwrap();
        let builder = TableBuilder::new(file, TableOptions::default());
        assert!(builder.finish().is_err());
    }

    #[test]
    fn corruption_detected() {
        let storage: StorageRef = MemStorage::new_ref();
        {
            let file = storage.create("c.sst").unwrap();
            let mut builder = TableBuilder::new(file, TableOptions::default());
            for i in 0..100u64 {
                builder
                    .add(
                        &InternalKey::new(i, 1, ValueKind::Full).encode(),
                        &[0u8; 32],
                    )
                    .unwrap();
            }
            builder.finish().unwrap();
        }
        // Flip a byte in the middle of the file (inside a data block) and
        // rewrite the file.
        let original = storage.open("c.sst").unwrap().read_all().unwrap();
        let mut corrupted = original.clone();
        corrupted[100] ^= 0xFF;
        let mut f = storage.create("c.sst").unwrap();
        f.append(&corrupted).unwrap();
        let table = TableHandle::open(&storage, "c.sst").unwrap();
        let mut it = table.iter();
        let err = it.seek_to_first();
        assert!(err.is_err(), "corrupted data block must fail checksum");
    }

    #[test]
    fn overlap_checks() {
        let entries: Vec<(u64, u64, ValueKind, &[u8])> = vec![
            (10, 1, ValueKind::Full, b"a"),
            (20, 1, ValueKind::Full, b"b"),
        ];
        let (_s, table) = make_table(&entries);
        assert!(table.overlaps(15, 25));
        assert!(table.overlaps(0, 10));
        assert!(table.overlaps(20, 30));
        assert!(!table.overlaps(21, 30));
        assert!(!table.overlaps(0, 9));
    }
}
