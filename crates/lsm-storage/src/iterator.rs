//! Iterator abstractions: the [`KvIterator`] trait implemented by memtables,
//! SSTs and merging iterators, plus the k-way merge stack used for range
//! queries and compaction.
//!
//! The paper's `LevelMergingIterator` (Section 4.4) is built from this
//! generic k-way merge: each child iterates one level's sorted run(s) and the
//! merge emits entries in internal-key order, so all versions of a user key
//! appear consecutively, newest first.
//!
//! The merge stack has three layers:
//!
//! * [`MergingIterator`] — a tournament-tree (binary min-heap) k-way merge:
//!   `next()` costs O(log k) key comparisons instead of the O(k) re-scan of
//!   the naive merge, which matters because every scanned *and* compacted
//!   entry drains through this loop.
//! * [`LevelConcatIterator`] — walks the sorted, non-overlapping SSTs of one
//!   deep level as a single child, opening each table's iterator lazily only
//!   when the cursor crosses into it. This collapses a level's contribution
//!   to the merge width from "number of overlapping files" to exactly 1, and
//!   a seek touches exactly one file per level.
//! * [`RangeIterator`] — a streaming visibility filter over the merge:
//!   newest-visible-version per user key at a snapshot, exposing tombstones
//!   to the caller (scans skip them, compactions keep them until the last
//!   level). It never decodes an [`InternalKey`](crate::types::InternalKey)
//!   per entry — the user-key, sequence and kind fields live at fixed
//!   offsets of the 17-byte encoding and are compared as raw slices.
//!
//! [`NaiveMergingIterator`] preserves the pre-tournament linear-scan merge as
//! an executable reference: property tests assert the heap produces
//! byte-identical output, and the `read_path` bench measures the gap.

use std::cmp::Ordering;

use crate::error::Result;
use crate::sst::{TableHandle, TableIterator};
use crate::types::{InternalKey, SeqNo, UserKey, ValueKind, INTERNAL_KEY_LEN};

/// A cursor over `(encoded internal key, value)` pairs in ascending key order.
pub trait KvIterator {
    /// Positions the iterator at the first entry.
    fn seek_to_first(&mut self) -> Result<()>;
    /// Positions the iterator at the first entry with key >= `target`.
    fn seek(&mut self, target: &[u8]) -> Result<()>;
    /// Advances to the next entry.
    fn next(&mut self) -> Result<()>;
    /// Returns true while positioned on a valid entry.
    fn valid(&self) -> bool;
    /// Current key (encoded internal key). Only valid while `valid()`.
    fn key(&self) -> &[u8];
    /// Current value. Only valid while `valid()`.
    fn value(&self) -> &[u8];
}

/// Boxed iterator alias used when composing heterogeneous children.
pub type BoxedIterator = Box<dyn KvIterator + Send>;

/// An iterator over an in-memory vector of `(key, value)` pairs.
///
/// Used for tests, for iterating immutable memtable snapshots, and as a
/// building block in higher layers.
#[derive(Debug, Clone, Default)]
pub struct VecIterator {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    pos: usize,
    valid: bool,
}

impl VecIterator {
    /// Creates an iterator over `entries`, which must already be sorted by key.
    pub fn new(entries: Vec<(Vec<u8>, Vec<u8>)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be sorted and unique"
        );
        VecIterator {
            entries,
            pos: 0,
            valid: false,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl KvIterator for VecIterator {
    fn seek_to_first(&mut self) -> Result<()> {
        self.pos = 0;
        self.valid = !self.entries.is_empty();
        Ok(())
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        self.pos = self.entries.partition_point(|(k, _)| k.as_slice() < target);
        self.valid = self.pos < self.entries.len();
        Ok(())
    }

    fn next(&mut self) -> Result<()> {
        if self.valid {
            self.pos += 1;
            self.valid = self.pos < self.entries.len();
        }
        Ok(())
    }

    fn valid(&self) -> bool {
        self.valid
    }

    fn key(&self) -> &[u8] {
        &self.entries[self.pos].0
    }

    fn value(&self) -> &[u8] {
        &self.entries[self.pos].1
    }
}

/// K-way merging iterator backed by a tournament tree (binary min-heap).
///
/// Children are assigned priorities by their position: when two children are
/// positioned on equal keys, the child with the lower index wins and the other
/// children are *not* skipped (duplicate keys are emitted). Callers that need
/// newest-version-wins semantics order children from newest to oldest and
/// de-duplicate by user key while draining (see [`RangeIterator`]).
///
/// `seek`/`seek_to_first` cost O(k) to rebuild the heap; `next()` costs
/// O(log k) — the winning child advances and sifts back into place without
/// re-examining the other k-1 children.
pub struct MergingIterator {
    children: Vec<BoxedIterator>,
    /// Min-heap of indices into `children`, ordered by (current key, index).
    /// Only valid (positioned) children appear; the root is the current entry.
    heap: Vec<usize>,
}

/// True if child `a` orders strictly before child `b`: smaller key first,
/// ties broken toward the lower (newer) index.
fn child_less(children: &[BoxedIterator], a: usize, b: usize) -> bool {
    match children[a].key().cmp(children[b].key()) {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => a < b,
    }
}

impl MergingIterator {
    /// Creates a merging iterator over `children`. Order matters: earlier
    /// children win ties, so put newer sources first.
    pub fn new(children: Vec<BoxedIterator>) -> Self {
        MergingIterator {
            heap: Vec::with_capacity(children.len()),
            children,
        }
    }

    /// Number of child iterators.
    pub fn num_children(&self) -> usize {
        self.children.len()
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < self.heap.len()
                && child_less(&self.children, self.heap[right], self.heap[left])
            {
                smallest = right;
            }
            if child_less(&self.children, self.heap[smallest], self.heap[pos]) {
                self.heap.swap(pos, smallest);
                pos = smallest;
            } else {
                break;
            }
        }
    }

    /// Rebuilds the heap from the children's current positions (after a seek).
    fn rebuild_heap(&mut self) {
        self.heap.clear();
        for (i, child) in self.children.iter().enumerate() {
            if child.valid() {
                self.heap.push(i);
            }
        }
        for pos in (0..self.heap.len() / 2).rev() {
            self.sift_down(pos);
        }
    }
}

impl KvIterator for MergingIterator {
    fn seek_to_first(&mut self) -> Result<()> {
        for child in &mut self.children {
            child.seek_to_first()?;
        }
        self.rebuild_heap();
        Ok(())
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        for child in &mut self.children {
            child.seek(target)?;
        }
        self.rebuild_heap();
        Ok(())
    }

    fn next(&mut self) -> Result<()> {
        let Some(&top) = self.heap.first() else {
            return Ok(());
        };
        self.children[top].next()?;
        if self.children[top].valid() {
            self.sift_down(0);
        } else {
            let last = self.heap.pop().expect("heap non-empty");
            if !self.heap.is_empty() {
                self.heap[0] = last;
                self.sift_down(0);
            }
        }
        Ok(())
    }

    fn valid(&self) -> bool {
        !self.heap.is_empty()
    }

    fn key(&self) -> &[u8] {
        self.children[*self.heap.first().expect("iterator not valid")].key()
    }

    fn value(&self) -> &[u8] {
        self.children[*self.heap.first().expect("iterator not valid")].value()
    }
}

/// The pre-tournament k-way merge: `next()` re-scans all k children with full
/// key comparisons. Kept as an executable reference implementation — property
/// tests assert [`MergingIterator`] produces byte-identical output, and the
/// `read_path` bench quantifies the O(k) vs O(log k) gap. Not used on any
/// production path.
pub struct NaiveMergingIterator {
    children: Vec<BoxedIterator>,
    /// Index of the child currently holding the smallest key, or `None`.
    current: Option<usize>,
}

impl NaiveMergingIterator {
    /// Creates a naive merging iterator over `children` (earlier children win
    /// ties, exactly like [`MergingIterator`]).
    pub fn new(children: Vec<BoxedIterator>) -> Self {
        NaiveMergingIterator {
            children,
            current: None,
        }
    }

    /// Number of child iterators.
    pub fn num_children(&self) -> usize {
        self.children.len()
    }

    fn find_smallest(&mut self) {
        let mut smallest: Option<usize> = None;
        for (i, child) in self.children.iter().enumerate() {
            if !child.valid() {
                continue;
            }
            match smallest {
                None => smallest = Some(i),
                Some(s) => {
                    // Strictly smaller wins; ties keep the earlier (newer) child.
                    if child.key() < self.children[s].key() {
                        smallest = Some(i);
                    }
                }
            }
        }
        self.current = smallest;
    }
}

impl KvIterator for NaiveMergingIterator {
    fn seek_to_first(&mut self) -> Result<()> {
        for child in &mut self.children {
            child.seek_to_first()?;
        }
        self.find_smallest();
        Ok(())
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        for child in &mut self.children {
            child.seek(target)?;
        }
        self.find_smallest();
        Ok(())
    }

    fn next(&mut self) -> Result<()> {
        if let Some(cur) = self.current {
            self.children[cur].next()?;
            self.find_smallest();
        }
        Ok(())
    }

    fn valid(&self) -> bool {
        self.current.is_some()
    }

    fn key(&self) -> &[u8] {
        self.children[self.current.expect("iterator not valid")].key()
    }

    fn value(&self) -> &[u8] {
        self.children[self.current.expect("iterator not valid")].value()
    }
}

/// The pre-overhaul scan drain over a [`NaiveMergingIterator`]: per-entry
/// `InternalKey` decode, manual per-user-key dedup and tombstone skip. The
/// single executable reference `scan_at` must match byte for byte — shared
/// by the property tests and the `read_path` bench so the two can never
/// drift apart.
pub fn naive_visible_scan(
    iter: &mut NaiveMergingIterator,
    lo: UserKey,
    hi: UserKey,
    snapshot_seq: SeqNo,
) -> Result<Vec<(UserKey, Vec<u8>)>> {
    iter.seek(&InternalKey::seek_to(lo).encode())?;
    let mut out = Vec::new();
    let mut last_emitted: Option<UserKey> = None;
    while iter.valid() {
        let ik = InternalKey::decode(iter.key())?;
        if ik.user_key > hi {
            break;
        }
        if ik.seq <= snapshot_seq && last_emitted != Some(ik.user_key) {
            last_emitted = Some(ik.user_key);
            if ik.kind != ValueKind::Tombstone {
                out.push((ik.user_key, iter.value().to_vec()));
            }
        }
        iter.next()?;
    }
    Ok(out)
}

/// Iterates the sorted, non-overlapping SSTs of one deep level as a single
/// stream, opening each table's iterator lazily only when the cursor crosses
/// into it.
///
/// Used as one merge child per level >= 1, so the merge width of a scan is
/// `memtables + L0 files + number of deep levels` instead of growing with
/// every overlapping file, and a seek binary-searches the file list and
/// touches exactly one table.
pub struct LevelConcatIterator {
    tables: Vec<TableHandle>,
    current: usize,
    iter: Option<TableIterator>,
    valid: bool,
}

impl LevelConcatIterator {
    /// Creates a concatenating iterator; `tables` must be sorted by min key
    /// and non-overlapping (the invariant every level >= 1 maintains).
    pub fn new(tables: Vec<TableHandle>) -> Self {
        debug_assert!(tables
            .windows(2)
            .all(|w| w[0].properties().max_user_key < w[1].properties().min_user_key));
        LevelConcatIterator {
            tables,
            current: 0,
            iter: None,
            valid: false,
        }
    }

    /// Number of SSTs in the level run.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Opens table `idx` (the lazy step: nothing is touched until the scan
    /// actually reaches the file). Returns false past the last table.
    fn open_table(&mut self, idx: usize) -> Result<bool> {
        if idx >= self.tables.len() {
            self.iter = None;
            self.valid = false;
            return Ok(false);
        }
        self.current = idx;
        self.iter = Some(self.tables[idx].iter());
        Ok(true)
    }

    /// Advances to the first non-empty table at or after `idx`.
    fn first_entry_from(&mut self, mut idx: usize) -> Result<()> {
        self.valid = false;
        while self.open_table(idx)? {
            let it = self.iter.as_mut().unwrap();
            it.seek_to_first()?;
            if it.valid() {
                self.valid = true;
                return Ok(());
            }
            idx += 1;
        }
        Ok(())
    }
}

impl KvIterator for LevelConcatIterator {
    fn seek_to_first(&mut self) -> Result<()> {
        self.first_entry_from(0)
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        self.valid = false;
        let target_user = InternalKey::decode_user_key(target).unwrap_or(0);
        // Binary search for the single file that can contain the target: the
        // first table whose max key >= target user key.
        let mut idx = self
            .tables
            .partition_point(|t| t.properties().max_user_key < target_user);
        while self.open_table(idx)? {
            let it = self.iter.as_mut().unwrap();
            it.seek(target)?;
            if it.valid() {
                self.valid = true;
                return Ok(());
            }
            idx += 1;
        }
        Ok(())
    }

    fn next(&mut self) -> Result<()> {
        if !self.valid {
            return Ok(());
        }
        let it = self.iter.as_mut().unwrap();
        it.next()?;
        if it.valid() {
            return Ok(());
        }
        self.first_entry_from(self.current + 1)
    }

    fn valid(&self) -> bool {
        self.valid
    }

    fn key(&self) -> &[u8] {
        self.iter.as_ref().expect("iterator not valid").key()
    }

    fn value(&self) -> &[u8] {
        self.iter.as_ref().expect("iterator not valid").value()
    }
}

// ---------------------------------------------------------------------------
// RangeIterator: streaming newest-visible-version scan
// ---------------------------------------------------------------------------

/// Byte offset of the (complemented, big-endian) sequence number within an
/// encoded internal key.
const SEQ_OFFSET: usize = 8;
/// Byte offset of the kind tag within an encoded internal key.
const KIND_OFFSET: usize = 16;

/// A streaming scan over a k-way merge: positions on the newest version of
/// each user key visible at a snapshot, in ascending key order, within an
/// inclusive `[lo, hi]` user-key range.
///
/// Tombstones are *surfaced*, not skipped: `scan` callers drop them (the key
/// is deleted), compactions keep them until the last level. The [`Iterator`]
/// impl is the convenience facade for scans — it yields live
/// `(user key, value)` pairs only.
///
/// The hot loop never decodes an `InternalKey`: the encoding places the
/// big-endian user key at bytes `0..8`, the complemented big-endian sequence
/// number at `8..16` and the kind tag at byte 16, so "same user key",
/// "visible at snapshot" and "is tombstone" are all raw slice comparisons at
/// fixed offsets.
pub struct RangeIterator {
    merge: MergingIterator,
    /// Big-endian `hi` bound: entries whose first 8 key bytes exceed this are
    /// out of range.
    hi_prefix: [u8; 8],
    /// Encoded visibility floor `!snapshot_seq`: an entry is visible iff its
    /// complemented-seq bytes are >= this (i.e. its seq is <= the snapshot).
    seq_floor: [u8; 8],
    /// User-key prefix of the entry most recently emitted (older versions of
    /// the same key are skipped without comparison beyond these 8 bytes).
    last_user_key: Option<[u8; 8]>,
    exhausted: bool,
}

impl RangeIterator {
    /// Creates a streaming scan over `merge` (children newest-to-oldest) for
    /// user keys in `[lo, hi]` visible at `snapshot_seq`, seeking to `lo`.
    pub fn new(
        mut merge: MergingIterator,
        lo: UserKey,
        hi: UserKey,
        snapshot_seq: SeqNo,
    ) -> Result<Self> {
        merge.seek(&InternalKey::seek_to(lo).encode())?;
        Ok(RangeIterator {
            merge,
            hi_prefix: hi.to_be_bytes(),
            seq_floor: (!snapshot_seq).to_be_bytes(),
            last_user_key: None,
            exhausted: false,
        })
    }

    /// Merge width (number of children under the tournament tree).
    pub fn merge_width(&self) -> usize {
        self.merge.num_children()
    }

    /// Advances to the newest visible version of the next user key (including
    /// tombstones). Returns false once the range is exhausted; the accessors
    /// are valid only after a `true` return.
    pub fn next_visible(&mut self) -> Result<bool> {
        if self.exhausted {
            return Ok(false);
        }
        loop {
            if !self.merge.valid() {
                self.exhausted = true;
                return Ok(false);
            }
            let key = self.merge.key();
            debug_assert_eq!(key.len(), INTERNAL_KEY_LEN);
            let prefix = &key[..SEQ_OFFSET];
            if prefix > &self.hi_prefix[..] {
                self.exhausted = true;
                return Ok(false);
            }
            if self
                .last_user_key
                .as_ref()
                .is_some_and(|last| last == prefix)
            {
                // An older version of a key already emitted.
                self.merge.next()?;
                continue;
            }
            if key[SEQ_OFFSET..KIND_OFFSET] < self.seq_floor[..] {
                // Newer than the snapshot: invisible, but an older version of
                // this key may still be visible — don't mark the key emitted.
                self.merge.next()?;
                continue;
            }
            let mut last = [0u8; 8];
            last.copy_from_slice(prefix);
            self.last_user_key = Some(last);
            return Ok(true);
        }
    }

    /// The current entry's encoded internal key.
    pub fn key(&self) -> &[u8] {
        self.merge.key()
    }

    /// The current entry's value (empty for tombstones).
    pub fn value(&self) -> &[u8] {
        self.merge.value()
    }

    /// The current entry's user key (read from the fixed offset, no decode).
    pub fn user_key(&self) -> UserKey {
        let mut k = [0u8; 8];
        k.copy_from_slice(&self.merge.key()[..SEQ_OFFSET]);
        u64::from_be_bytes(k)
    }

    /// The current entry's sequence number.
    pub fn seq(&self) -> SeqNo {
        let mut s = [0u8; 8];
        s.copy_from_slice(&self.merge.key()[SEQ_OFFSET..KIND_OFFSET]);
        !u64::from_be_bytes(s)
    }

    /// True if the current entry is a deletion marker.
    pub fn is_tombstone(&self) -> bool {
        self.merge.key()[KIND_OFFSET] == ValueKind::Tombstone as u8
    }
}

impl Iterator for RangeIterator {
    type Item = Result<(UserKey, Vec<u8>)>;

    /// Streams live `(user key, value)` pairs: tombstoned keys are skipped.
    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.next_visible() {
                Err(e) => return Some(Err(e)),
                Ok(false) => return None,
                Ok(true) if self.is_tombstone() => continue,
                Ok(true) => return Some(Ok((self.user_key(), self.value().to_vec()))),
            }
        }
    }
}

/// Drains an iterator into a vector of owned pairs. Convenience for tests and
/// small result sets.
pub fn collect_all(iter: &mut dyn KvIterator) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
    let mut out = Vec::new();
    iter.seek_to_first()?;
    while iter.valid() {
        out.push((iter.key().to_vec(), iter.value().to_vec()));
        iter.next()?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sst::{TableBuilder, TableOptions};
    use crate::storage::{MemStorage, StorageRef};
    use crate::types::{InternalKey, ValueKind, MAX_SEQNO};

    fn enc(key: u64, seq: u64) -> Vec<u8> {
        InternalKey::new(key, seq, ValueKind::Full)
            .encode()
            .to_vec()
    }

    fn vec_iter(pairs: &[(u64, u64, &str)]) -> BoxedIterator {
        let entries = pairs
            .iter()
            .map(|&(k, s, v)| (enc(k, s), v.as_bytes().to_vec()))
            .collect();
        Box::new(VecIterator::new(entries))
    }

    #[test]
    fn vec_iterator_basics() {
        let mut it = VecIterator::new(vec![
            (enc(1, 1), b"a".to_vec()),
            (enc(2, 1), b"b".to_vec()),
            (enc(3, 1), b"c".to_vec()),
        ]);
        assert_eq!(it.len(), 3);
        it.seek_to_first().unwrap();
        assert!(it.valid());
        assert_eq!(it.value(), b"a");
        it.seek(&enc(2, u64::MAX >> 8)).unwrap();
        // seek target has max seq which sorts before seq=1 for the same key
        assert_eq!(InternalKey::decode(it.key()).unwrap().user_key, 2);
        it.seek(&enc(4, 0)).unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn empty_vec_iterator() {
        let mut it = VecIterator::new(vec![]);
        assert!(it.is_empty());
        it.seek_to_first().unwrap();
        assert!(!it.valid());
        it.seek(&enc(1, 1)).unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn merge_two_sorted_streams() {
        let a = vec_iter(&[(1, 1, "a1"), (3, 1, "a3"), (5, 1, "a5")]);
        let b = vec_iter(&[(2, 1, "b2"), (4, 1, "b4"), (6, 1, "b6")]);
        let mut m = MergingIterator::new(vec![a, b]);
        let all = collect_all(&mut m).unwrap();
        let keys: Vec<u64> = all
            .iter()
            .map(|(k, _)| InternalKey::decode(k).unwrap().user_key)
            .collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merge_emits_all_versions_newest_first() {
        // Same user key in two children with different sequence numbers: the
        // internal-key ordering puts the newer version first.
        let newer = vec_iter(&[(10, 20, "new")]);
        let older = vec_iter(&[(10, 5, "old")]);
        let mut m = MergingIterator::new(vec![older, newer]);
        let all = collect_all(&mut m).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, b"new");
        assert_eq!(all[1].1, b"old");
    }

    #[test]
    fn merge_with_empty_children() {
        let a = vec_iter(&[]);
        let b = vec_iter(&[(1, 1, "x")]);
        let c = vec_iter(&[]);
        let mut m = MergingIterator::new(vec![a, b, c]);
        assert_eq!(m.num_children(), 3);
        let all = collect_all(&mut m).unwrap();
        assert_eq!(all.len(), 1);
    }

    #[test]
    fn merge_seek_positions_all_children() {
        let a = vec_iter(&[(1, 1, "a"), (10, 1, "a10")]);
        let b = vec_iter(&[(5, 1, "b5"), (15, 1, "b15")]);
        let mut m = MergingIterator::new(vec![a, b]);
        m.seek(&enc(6, u64::MAX >> 8)).unwrap();
        let mut seen = Vec::new();
        while m.valid() {
            seen.push(InternalKey::decode(m.key()).unwrap().user_key);
            m.next().unwrap();
        }
        assert_eq!(seen, vec![10, 15]);
    }

    #[test]
    fn merge_of_nothing_is_invalid() {
        let mut m = MergingIterator::new(vec![]);
        m.seek_to_first().unwrap();
        assert!(!m.valid());
    }

    #[test]
    fn merge_is_stable_for_identical_keys() {
        // Two children with byte-identical keys: the earlier child wins first.
        let a = vec_iter(&[(7, 3, "first")]);
        let b = vec_iter(&[(7, 3, "second")]);
        let mut m = MergingIterator::new(vec![a, b]);
        m.seek_to_first().unwrap();
        assert_eq!(m.value(), b"first");
        m.next().unwrap();
        assert_eq!(m.value(), b"second");
        m.next().unwrap();
        assert!(!m.valid());
    }

    #[test]
    fn heap_merge_matches_naive_on_interleaved_runs() {
        // Many children with interleaved, duplicated and tied keys: the heap
        // must emit the exact byte sequence of the linear-scan reference.
        let make = || {
            vec![
                vec_iter(&[(1, 9, "a"), (4, 9, "b"), (7, 9, "c"), (9, 1, "d")]),
                vec_iter(&[(1, 9, "A"), (2, 5, "B"), (7, 9, "C")]),
                vec_iter(&[]),
                vec_iter(&[(3, 3, "x"), (4, 12, "y"), (4, 2, "z"), (11, 1, "w")]),
                vec_iter(&[(1, 9, "α"), (12, 4, "β")]),
            ]
        };
        let heap = collect_all(&mut MergingIterator::new(make())).unwrap();
        let naive = collect_all(&mut NaiveMergingIterator::new(make())).unwrap();
        assert_eq!(heap, naive);
        // And after an arbitrary seek.
        let mut h = MergingIterator::new(make());
        let mut n = NaiveMergingIterator::new(make());
        h.seek(&enc(4, MAX_SEQNO)).unwrap();
        n.seek(&enc(4, MAX_SEQNO)).unwrap();
        while n.valid() {
            assert!(h.valid());
            assert_eq!((h.key(), h.value()), (n.key(), n.value()));
            h.next().unwrap();
            n.next().unwrap();
        }
        assert!(!h.valid());
    }

    fn build_tables(runs: &[&[(u64, u64)]]) -> (StorageRef, Vec<TableHandle>) {
        let storage: StorageRef = MemStorage::new_ref();
        let mut tables = Vec::new();
        for (idx, run) in runs.iter().enumerate() {
            let name = format!("{idx}.sst");
            let mut b = TableBuilder::new(storage.create(&name).unwrap(), TableOptions::default());
            for &(key, seq) in run.iter() {
                b.add(
                    &InternalKey::new(key, seq, ValueKind::Full).encode(),
                    format!("v{key}-{seq}").as_bytes(),
                )
                .unwrap();
            }
            b.finish().unwrap();
            tables.push(TableHandle::open(&storage, &name).unwrap());
        }
        (storage, tables)
    }

    #[test]
    fn level_concat_walks_disjoint_tables_in_order() {
        let (_s, tables) = build_tables(&[
            &[(1, 1), (2, 1), (5, 1)],
            &[(10, 2), (11, 1)],
            &[(20, 1), (25, 3), (25, 1)],
        ]);
        let mut it = LevelConcatIterator::new(tables);
        assert_eq!(it.num_tables(), 3);
        let all = collect_all(&mut it).unwrap();
        let keys: Vec<(u64, u64)> = all
            .iter()
            .map(|(k, _)| {
                let ik = InternalKey::decode(k).unwrap();
                (ik.user_key, ik.seq)
            })
            .collect();
        assert_eq!(
            keys,
            vec![
                (1, 1),
                (2, 1),
                (5, 1),
                (10, 2),
                (11, 1),
                (20, 1),
                (25, 3),
                (25, 1)
            ]
        );
    }

    #[test]
    fn level_concat_seek_lands_in_the_right_table() {
        let (_s, tables) = build_tables(&[&[(1, 1), (5, 1)], &[(10, 1), (15, 1)], &[(20, 1)]]);
        let mut it = LevelConcatIterator::new(tables);
        // Into the middle table.
        it.seek(&InternalKey::seek_to(12).encode()).unwrap();
        assert!(it.valid());
        assert_eq!(InternalKey::decode(it.key()).unwrap().user_key, 15);
        // Into a gap between tables: first key of the next table.
        it.seek(&InternalKey::seek_to(7).encode()).unwrap();
        assert_eq!(InternalKey::decode(it.key()).unwrap().user_key, 10);
        // Before everything.
        it.seek(&InternalKey::seek_to(0).encode()).unwrap();
        assert_eq!(InternalKey::decode(it.key()).unwrap().user_key, 1);
        // Past everything.
        it.seek(&InternalKey::seek_to(100).encode()).unwrap();
        assert!(!it.valid());
        // Crossing a table boundary with next().
        it.seek(&InternalKey::seek_to(5).encode()).unwrap();
        assert_eq!(InternalKey::decode(it.key()).unwrap().user_key, 5);
        it.next().unwrap();
        assert_eq!(InternalKey::decode(it.key()).unwrap().user_key, 10);
    }

    #[test]
    fn level_concat_of_nothing_is_invalid() {
        let mut it = LevelConcatIterator::new(Vec::new());
        it.seek_to_first().unwrap();
        assert!(!it.valid());
        it.seek(&InternalKey::seek_to(1).encode()).unwrap();
        assert!(!it.valid());
    }

    fn entry(key: u64, seq: u64, kind: ValueKind, value: &str) -> (Vec<u8>, Vec<u8>) {
        (
            InternalKey::new(key, seq, kind).encode().to_vec(),
            value.as_bytes().to_vec(),
        )
    }

    #[test]
    fn range_iterator_emits_newest_visible_and_surfaces_tombstones() {
        // Newer child shadows the older one; key 3 is deleted.
        let newer = Box::new(VecIterator::new(vec![
            entry(1, 10, ValueKind::Full, "one-new"),
            entry(3, 11, ValueKind::Tombstone, ""),
        ])) as BoxedIterator;
        let older = Box::new(VecIterator::new(vec![
            entry(1, 2, ValueKind::Full, "one-old"),
            entry(2, 3, ValueKind::Full, "two"),
            entry(3, 4, ValueKind::Full, "three"),
        ])) as BoxedIterator;
        let merge = MergingIterator::new(vec![newer, older]);
        let mut it = RangeIterator::new(merge, 0, u64::MAX, MAX_SEQNO).unwrap();
        let mut seen = Vec::new();
        while it.next_visible().unwrap() {
            seen.push((it.user_key(), it.seq(), it.is_tombstone()));
        }
        assert_eq!(seen, vec![(1, 10, false), (2, 3, false), (3, 11, true)]);
    }

    #[test]
    fn range_iterator_respects_snapshot_and_bounds() {
        let child = Box::new(VecIterator::new(vec![
            entry(1, 10, ValueKind::Full, "v10"),
            entry(1, 2, ValueKind::Full, "v2"),
            entry(2, 12, ValueKind::Full, "w12"),
            entry(5, 1, ValueKind::Full, "x1"),
        ])) as BoxedIterator;
        // Snapshot 5: key 1 resolves to seq 2, key 2 is invisible entirely.
        let merge = MergingIterator::new(vec![child]);
        let it = RangeIterator::new(merge, 0, 4, 5).unwrap();
        let rows: Vec<(u64, Vec<u8>)> = it.map(|r| r.unwrap()).collect();
        assert_eq!(rows, vec![(1, b"v2".to_vec())]);
    }

    #[test]
    fn range_iterator_facade_skips_tombstones() {
        let child = Box::new(VecIterator::new(vec![
            entry(1, 5, ValueKind::Full, "a"),
            entry(2, 6, ValueKind::Tombstone, ""),
            entry(3, 7, ValueKind::Full, "c"),
        ])) as BoxedIterator;
        let it =
            RangeIterator::new(MergingIterator::new(vec![child]), 0, u64::MAX, MAX_SEQNO).unwrap();
        let rows: Vec<(u64, Vec<u8>)> = it.map(|r| r.unwrap()).collect();
        assert_eq!(rows, vec![(1, b"a".to_vec()), (3, b"c".to_vec())]);
    }
}
