//! Iterator abstractions: the [`KvIterator`] trait implemented by memtables,
//! SSTs and merging iterators, plus a k-way [`MergingIterator`] used for range
//! queries and compaction.
//!
//! The paper's `LevelMergingIterator` (Section 4.4) is built from this
//! generic k-way merge: each child iterates one level's sorted run(s) and the
//! merge emits entries in internal-key order, so all versions of a user key
//! appear consecutively, newest first.

use crate::error::Result;

/// A cursor over `(encoded internal key, value)` pairs in ascending key order.
pub trait KvIterator {
    /// Positions the iterator at the first entry.
    fn seek_to_first(&mut self) -> Result<()>;
    /// Positions the iterator at the first entry with key >= `target`.
    fn seek(&mut self, target: &[u8]) -> Result<()>;
    /// Advances to the next entry.
    fn next(&mut self) -> Result<()>;
    /// Returns true while positioned on a valid entry.
    fn valid(&self) -> bool;
    /// Current key (encoded internal key). Only valid while `valid()`.
    fn key(&self) -> &[u8];
    /// Current value. Only valid while `valid()`.
    fn value(&self) -> &[u8];
}

/// Boxed iterator alias used when composing heterogeneous children.
pub type BoxedIterator = Box<dyn KvIterator + Send>;

/// An iterator over an in-memory vector of `(key, value)` pairs.
///
/// Used for tests, for iterating immutable memtable snapshots, and as a
/// building block in higher layers.
#[derive(Debug, Clone, Default)]
pub struct VecIterator {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    pos: usize,
    valid: bool,
}

impl VecIterator {
    /// Creates an iterator over `entries`, which must already be sorted by key.
    pub fn new(entries: Vec<(Vec<u8>, Vec<u8>)>) -> Self {
        debug_assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be sorted and unique"
        );
        VecIterator {
            entries,
            pos: 0,
            valid: false,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl KvIterator for VecIterator {
    fn seek_to_first(&mut self) -> Result<()> {
        self.pos = 0;
        self.valid = !self.entries.is_empty();
        Ok(())
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        self.pos = self.entries.partition_point(|(k, _)| k.as_slice() < target);
        self.valid = self.pos < self.entries.len();
        Ok(())
    }

    fn next(&mut self) -> Result<()> {
        if self.valid {
            self.pos += 1;
            self.valid = self.pos < self.entries.len();
        }
        Ok(())
    }

    fn valid(&self) -> bool {
        self.valid
    }

    fn key(&self) -> &[u8] {
        &self.entries[self.pos].0
    }

    fn value(&self) -> &[u8] {
        &self.entries[self.pos].1
    }
}

/// K-way merging iterator.
///
/// Children are assigned priorities by their position: when two children are
/// positioned on equal keys, the child with the lower index wins and the other
/// children are *not* skipped (duplicate keys are emitted). Callers that need
/// newest-version-wins semantics order children from newest to oldest and
/// de-duplicate by user key while draining (see the engine's read paths).
pub struct MergingIterator {
    children: Vec<BoxedIterator>,
    /// Index of the child currently holding the smallest key, or `None`.
    current: Option<usize>,
}

impl MergingIterator {
    /// Creates a merging iterator over `children`. Order matters: earlier
    /// children win ties, so put newer sources first.
    pub fn new(children: Vec<BoxedIterator>) -> Self {
        MergingIterator {
            children,
            current: None,
        }
    }

    /// Number of child iterators.
    pub fn num_children(&self) -> usize {
        self.children.len()
    }

    fn find_smallest(&mut self) {
        let mut smallest: Option<usize> = None;
        for (i, child) in self.children.iter().enumerate() {
            if !child.valid() {
                continue;
            }
            match smallest {
                None => smallest = Some(i),
                Some(s) => {
                    // Strictly smaller wins; ties keep the earlier (newer) child.
                    if child.key() < self.children[s].key() {
                        smallest = Some(i);
                    }
                }
            }
        }
        self.current = smallest;
    }
}

impl KvIterator for MergingIterator {
    fn seek_to_first(&mut self) -> Result<()> {
        for child in &mut self.children {
            child.seek_to_first()?;
        }
        self.find_smallest();
        Ok(())
    }

    fn seek(&mut self, target: &[u8]) -> Result<()> {
        for child in &mut self.children {
            child.seek(target)?;
        }
        self.find_smallest();
        Ok(())
    }

    fn next(&mut self) -> Result<()> {
        if let Some(cur) = self.current {
            self.children[cur].next()?;
            self.find_smallest();
        }
        Ok(())
    }

    fn valid(&self) -> bool {
        self.current.is_some()
    }

    fn key(&self) -> &[u8] {
        self.children[self.current.expect("iterator not valid")].key()
    }

    fn value(&self) -> &[u8] {
        self.children[self.current.expect("iterator not valid")].value()
    }
}

/// Drains an iterator into a vector of owned pairs. Convenience for tests and
/// small result sets.
pub fn collect_all(iter: &mut dyn KvIterator) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
    let mut out = Vec::new();
    iter.seek_to_first()?;
    while iter.valid() {
        out.push((iter.key().to_vec(), iter.value().to_vec()));
        iter.next()?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{InternalKey, ValueKind};

    fn enc(key: u64, seq: u64) -> Vec<u8> {
        InternalKey::new(key, seq, ValueKind::Full)
            .encode()
            .to_vec()
    }

    fn vec_iter(pairs: &[(u64, u64, &str)]) -> BoxedIterator {
        let entries = pairs
            .iter()
            .map(|&(k, s, v)| (enc(k, s), v.as_bytes().to_vec()))
            .collect();
        Box::new(VecIterator::new(entries))
    }

    #[test]
    fn vec_iterator_basics() {
        let mut it = VecIterator::new(vec![
            (enc(1, 1), b"a".to_vec()),
            (enc(2, 1), b"b".to_vec()),
            (enc(3, 1), b"c".to_vec()),
        ]);
        assert_eq!(it.len(), 3);
        it.seek_to_first().unwrap();
        assert!(it.valid());
        assert_eq!(it.value(), b"a");
        it.seek(&enc(2, u64::MAX >> 8)).unwrap();
        // seek target has max seq which sorts before seq=1 for the same key
        assert_eq!(InternalKey::decode(it.key()).unwrap().user_key, 2);
        it.seek(&enc(4, 0)).unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn empty_vec_iterator() {
        let mut it = VecIterator::new(vec![]);
        assert!(it.is_empty());
        it.seek_to_first().unwrap();
        assert!(!it.valid());
        it.seek(&enc(1, 1)).unwrap();
        assert!(!it.valid());
    }

    #[test]
    fn merge_two_sorted_streams() {
        let a = vec_iter(&[(1, 1, "a1"), (3, 1, "a3"), (5, 1, "a5")]);
        let b = vec_iter(&[(2, 1, "b2"), (4, 1, "b4"), (6, 1, "b6")]);
        let mut m = MergingIterator::new(vec![a, b]);
        let all = collect_all(&mut m).unwrap();
        let keys: Vec<u64> = all
            .iter()
            .map(|(k, _)| InternalKey::decode(k).unwrap().user_key)
            .collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn merge_emits_all_versions_newest_first() {
        // Same user key in two children with different sequence numbers: the
        // internal-key ordering puts the newer version first.
        let newer = vec_iter(&[(10, 20, "new")]);
        let older = vec_iter(&[(10, 5, "old")]);
        let mut m = MergingIterator::new(vec![older, newer]);
        let all = collect_all(&mut m).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1, b"new");
        assert_eq!(all[1].1, b"old");
    }

    #[test]
    fn merge_with_empty_children() {
        let a = vec_iter(&[]);
        let b = vec_iter(&[(1, 1, "x")]);
        let c = vec_iter(&[]);
        let mut m = MergingIterator::new(vec![a, b, c]);
        assert_eq!(m.num_children(), 3);
        let all = collect_all(&mut m).unwrap();
        assert_eq!(all.len(), 1);
    }

    #[test]
    fn merge_seek_positions_all_children() {
        let a = vec_iter(&[(1, 1, "a"), (10, 1, "a10")]);
        let b = vec_iter(&[(5, 1, "b5"), (15, 1, "b15")]);
        let mut m = MergingIterator::new(vec![a, b]);
        m.seek(&enc(6, u64::MAX >> 8)).unwrap();
        let mut seen = Vec::new();
        while m.valid() {
            seen.push(InternalKey::decode(m.key()).unwrap().user_key);
            m.next().unwrap();
        }
        assert_eq!(seen, vec![10, 15]);
    }

    #[test]
    fn merge_of_nothing_is_invalid() {
        let mut m = MergingIterator::new(vec![]);
        m.seek_to_first().unwrap();
        assert!(!m.valid());
    }

    #[test]
    fn merge_is_stable_for_identical_keys() {
        // Two children with byte-identical keys: the earlier child wins first.
        let a = vec_iter(&[(7, 3, "first")]);
        let b = vec_iter(&[(7, 3, "second")]);
        let mut m = MergingIterator::new(vec![a, b]);
        m.seek_to_first().unwrap();
        assert_eq!(m.value(), b"first");
        m.next().unwrap();
        assert_eq!(m.value(), b"second");
        m.next().unwrap();
        assert!(!m.valid());
    }
}
