//! An arena-backed skiplist used by the in-memory write buffer (memtable).
//!
//! The paper keeps the memory component of the Real-Time LSM-Tree identical
//! to a classic LSM-Tree: "two or more skiplists of user-configured size"
//! (Section 2.1). This implementation stores nodes in a `Vec` arena and links
//! them with indices, which keeps the code free of `unsafe` while preserving
//! the expected O(log n) insert/seek behaviour.
//!
//! Keys are arbitrary byte strings compared lexicographically (the engine
//! stores encoded internal keys). Inserting a key that already exists is not
//! supported — the memtable never does this because every write carries a
//! fresh sequence number, which makes internal keys unique.

const MAX_HEIGHT: usize = 12;
/// Probability numerator for growing a tower by one level (1/4 like LevelDB).
const BRANCHING: u32 = 4;

#[derive(Debug)]
struct Node {
    key: Vec<u8>,
    value: Vec<u8>,
    /// next[i] = index of the next node at level i, or `NIL`.
    next: Vec<u32>,
}

const NIL: u32 = u32::MAX;

/// A single-writer, multi-reader (externally synchronized) skiplist.
#[derive(Debug)]
pub struct SkipList {
    /// Arena of nodes; index 0 is the head sentinel.
    nodes: Vec<Node>,
    height: usize,
    len: usize,
    /// Approximate memory usage of keys and values in bytes.
    approximate_bytes: usize,
    /// Simple xorshift PRNG state for tower heights (deterministic).
    rng_state: u64,
}

impl Default for SkipList {
    fn default() -> Self {
        Self::new()
    }
}

impl SkipList {
    /// Creates an empty skiplist.
    pub fn new() -> Self {
        let head = Node {
            key: Vec::new(),
            value: Vec::new(),
            next: vec![NIL; MAX_HEIGHT],
        };
        SkipList {
            nodes: vec![head],
            height: 1,
            len: 0,
            approximate_bytes: 0,
            rng_state: 0x853c_49e6_748f_ea9b,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true if the list holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate bytes used by keys and values.
    pub fn approximate_bytes(&self) -> usize {
        self.approximate_bytes
    }

    fn random_height(&mut self) -> usize {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        let mut r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let mut height = 1usize;
        while height < MAX_HEIGHT && r.is_multiple_of(BRANCHING as u64) {
            height += 1;
            r /= BRANCHING as u64;
        }
        height
    }

    /// Inserts a key/value pair. The key must not already be present.
    pub fn insert(&mut self, key: &[u8], value: &[u8]) {
        let mut prev = [0u32; MAX_HEIGHT];
        let mut x = 0u32; // head
        for level in (0..self.height).rev() {
            loop {
                let next = self.nodes[x as usize].next[level];
                if next != NIL && self.nodes[next as usize].key.as_slice() < key {
                    x = next;
                } else {
                    break;
                }
            }
            prev[level] = x;
        }
        debug_assert!(
            {
                let next = self.nodes[prev[0] as usize].next[0];
                next == NIL || self.nodes[next as usize].key.as_slice() != key
            },
            "duplicate key inserted into skiplist"
        );
        let height = self.random_height();
        if height > self.height {
            for item in prev.iter_mut().take(height).skip(self.height) {
                *item = 0;
            }
            self.height = height;
        }
        let new_idx = self.nodes.len() as u32;
        let mut next = vec![NIL; height];
        for (level, slot) in next.iter_mut().enumerate() {
            *slot = self.nodes[prev[level] as usize].next[level];
        }
        self.approximate_bytes += key.len() + value.len() + std::mem::size_of::<Node>();
        self.nodes.push(Node {
            key: key.to_vec(),
            value: value.to_vec(),
            next,
        });
        for (level, &p) in prev.iter().enumerate().take(height) {
            self.nodes[p as usize].next[level] = new_idx;
        }
        self.len += 1;
    }

    /// Finds the first node whose key is >= `target`, returning its index.
    fn find_greater_or_equal(&self, target: &[u8]) -> u32 {
        let mut x = 0u32;
        for level in (0..self.height).rev() {
            loop {
                let next = self.nodes[x as usize].next[level];
                if next != NIL && self.nodes[next as usize].key.as_slice() < target {
                    x = next;
                } else {
                    break;
                }
            }
        }
        self.nodes[x as usize].next[0]
    }

    /// Returns the value stored for exactly `key`, if present.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        let idx = self.find_greater_or_equal(key);
        if idx == NIL {
            return None;
        }
        let node = &self.nodes[idx as usize];
        if node.key.as_slice() == key {
            Some(&node.value)
        } else {
            None
        }
    }

    /// Creates a cursor positioned before the first entry.
    pub fn iter(&self) -> SkipListIter<'_> {
        SkipListIter {
            list: self,
            current: NIL,
        }
    }

    /// Drains the list into a sorted vector of owned pairs.
    pub fn to_sorted_vec(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::with_capacity(self.len);
        let mut idx = self.nodes[0].next[0];
        while idx != NIL {
            let node = &self.nodes[idx as usize];
            out.push((node.key.clone(), node.value.clone()));
            idx = node.next[0];
        }
        out
    }
}

/// A borrowing cursor over a [`SkipList`].
#[derive(Debug, Clone)]
pub struct SkipListIter<'a> {
    list: &'a SkipList,
    current: u32,
}

impl<'a> SkipListIter<'a> {
    /// Positions at the first entry.
    pub fn seek_to_first(&mut self) {
        self.current = self.list.nodes[0].next[0];
    }

    /// Positions at the first entry with key >= `target`.
    pub fn seek(&mut self, target: &[u8]) {
        self.current = self.list.find_greater_or_equal(target);
    }

    /// Advances to the next entry.
    pub fn next_entry(&mut self) {
        if self.current != NIL {
            self.current = self.list.nodes[self.current as usize].next[0];
        }
    }

    /// Returns true while positioned on an entry.
    pub fn valid(&self) -> bool {
        self.current != NIL
    }

    /// Current key. Only valid while `valid()`.
    pub fn key(&self) -> &'a [u8] {
        &self.list.nodes[self.current as usize].key
    }

    /// Current value. Only valid while `valid()`.
    pub fn value(&self) -> &'a [u8] {
        &self.list.nodes[self.current as usize].value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_and_get() {
        let mut list = SkipList::new();
        assert!(list.is_empty());
        list.insert(b"b", b"2");
        list.insert(b"a", b"1");
        list.insert(b"c", b"3");
        assert_eq!(list.len(), 3);
        assert_eq!(list.get(b"a"), Some(&b"1"[..]));
        assert_eq!(list.get(b"b"), Some(&b"2"[..]));
        assert_eq!(list.get(b"c"), Some(&b"3"[..]));
        assert_eq!(list.get(b"d"), None);
        assert_eq!(list.get(b""), None);
    }

    #[test]
    fn iteration_is_sorted() {
        let mut list = SkipList::new();
        let keys: Vec<u64> = vec![5, 1, 9, 3, 7, 2, 8, 0, 6, 4];
        for k in &keys {
            list.insert(&k.to_be_bytes(), &k.to_le_bytes());
        }
        let sorted = list.to_sorted_vec();
        let expected: Vec<Vec<u8>> = (0..10u64).map(|k| k.to_be_bytes().to_vec()).collect();
        let actual: Vec<Vec<u8>> = sorted.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn seek_semantics() {
        let mut list = SkipList::new();
        for k in [10u64, 20, 30, 40] {
            list.insert(&k.to_be_bytes(), b"v");
        }
        let mut it = list.iter();
        it.seek(&20u64.to_be_bytes());
        assert!(it.valid());
        assert_eq!(it.key(), &20u64.to_be_bytes());
        it.seek(&21u64.to_be_bytes());
        assert_eq!(it.key(), &30u64.to_be_bytes());
        it.seek(&100u64.to_be_bytes());
        assert!(!it.valid());
        it.seek_to_first();
        assert_eq!(it.key(), &10u64.to_be_bytes());
        it.next_entry();
        assert_eq!(it.key(), &20u64.to_be_bytes());
    }

    #[test]
    fn matches_btreemap_model_on_many_keys() {
        let mut list = SkipList::new();
        let mut model = BTreeMap::new();
        // Insert keys in a scrambled but deterministic order.
        let mut k = 1u64;
        for _ in 0..5_000 {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (k % 1_000_000).to_be_bytes().to_vec();
            if model.contains_key(&key) {
                continue;
            }
            let value = k.to_le_bytes().to_vec();
            list.insert(&key, &value);
            model.insert(key, value);
        }
        assert_eq!(list.len(), model.len());
        let from_list = list.to_sorted_vec();
        let from_model: Vec<_> = model.into_iter().collect();
        assert_eq!(from_list, from_model);
    }

    #[test]
    fn approximate_bytes_grows() {
        let mut list = SkipList::new();
        assert_eq!(list.approximate_bytes(), 0);
        list.insert(&[0u8; 100], &[0u8; 900]);
        assert!(list.approximate_bytes() >= 1000);
    }

    #[test]
    fn empty_iterator_is_invalid() {
        let list = SkipList::new();
        let mut it = list.iter();
        it.seek_to_first();
        assert!(!it.valid());
        it.seek(b"anything");
        assert!(!it.valid());
    }
}
