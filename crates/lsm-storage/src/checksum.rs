//! CRC-32 (IEEE 802.3 polynomial) implemented in-repo so the crate has no
//! external checksum dependency. Used to protect data blocks, WAL records and
//! manifest records against torn writes and bit rot.

/// Lazily-built 256-entry lookup table for the reflected CRC-32 polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                if crc & 1 != 0 {
                    crc = (crc >> 1) ^ 0xEDB8_8320;
                } else {
                    crc >>= 1;
                }
            }
            *entry = crc;
        }
        table
    })
}

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Computes a CRC-32 over two slices as if they were concatenated, without
/// allocating. Used for WAL records where the header and payload are separate.
pub fn crc32_pair(a: &[u8], b: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in a.iter().chain(b.iter()) {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Masks a CRC so that storing a CRC of data that itself contains CRCs does
/// not produce degenerate values (same trick as LevelDB).
pub fn mask(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(0xa282_ead8)
}

/// Reverses [`mask`].
pub fn unmask(masked: u32) -> u32 {
    let rot = masked.wrapping_sub(0xa282_ead8);
    rot.rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 ("check" value) of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7BE43);
    }

    #[test]
    fn pair_matches_concatenation() {
        let a = b"hello ";
        let b = b"world";
        let mut joined = Vec::new();
        joined.extend_from_slice(a);
        joined.extend_from_slice(b);
        assert_eq!(crc32_pair(a, b), crc32(&joined));
        assert_eq!(crc32_pair(b"", b"world"), crc32(b"world"));
        assert_eq!(crc32_pair(b"world", b""), crc32(b"world"));
    }

    #[test]
    fn mask_roundtrip() {
        for v in [0u32, 1, 0xCBF43926, u32::MAX, 0x12345678] {
            assert_eq!(unmask(mask(v)), v);
            assert_ne!(mask(v), v, "mask should change the value");
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let original = crc32(&data);
        data[7] ^= 0x10;
        assert_ne!(crc32(&data), original);
    }
}
