//! A sharded LRU cache for decoded SST data blocks.
//!
//! Point lookups and scans spend most of their time fetching and decoding
//! 4 KiB data blocks. The [`BlockCache`] keeps recently-used blocks in memory
//! in *decoded* form (the sorted entry vector), so a hot read skips both the
//! storage backend and the restart-point decode. One cache is shared by every
//! SST of an engine (and may be shared across engines).
//!
//! Keys are `(table_id, block_idx)` where `table_id` is a process-unique id
//! handed out by [`BlockCache::register_table`] each time an SST is opened.
//! Because ids are never reused, blocks of a dropped table (e.g. an SST
//! replaced by compaction) can never be served to a reader of a newer file —
//! even if the file *name* is reused. [`Table`](crate::sst::Table) evicts its
//! blocks eagerly on drop to return the capacity.
//!
//! The cache is split into shards, each protected by its own mutex, so
//! concurrent readers and background compaction threads do not serialise on
//! one lock. Within a shard, eviction is strict LRU implemented with a
//! recency queue that tolerates duplicate entries (each hit appends; stale
//! duplicates are skipped during eviction).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

/// A decoded data block: the sorted `(internal key, value)` entries.
pub type CachedBlock = Arc<Vec<(Vec<u8>, Vec<u8>)>>;

/// Fixed bookkeeping weight charged per cached block, on top of payload.
const ENTRY_OVERHEAD: usize = 64;

/// Weight charged per `(key, value)` pair inside a block: two `Vec` headers
/// plus allocator slack. Without this, small-entry blocks would under-charge
/// their real heap cost severalfold.
const PAIR_OVERHEAD: usize = 64;

/// Cache key: `(table registration id, data block index)`.
type Key = (u64, u32);

/// Identifier of an accounting scope (e.g. one shard of a sharded engine).
/// Scope 0 always exists and is the default for unscoped registrations.
pub type ScopeId = u32;

struct Entry {
    data: CachedBlock,
    weight: usize,
    /// Accounting scope of the table this block belongs to.
    scope: ScopeId,
    /// Number of occurrences of this key in the shard's recency queue.
    queue_refs: u32,
}

#[derive(Default)]
struct Shard {
    map: HashMap<Key, Entry>,
    /// Recency queue, oldest at the front. May contain duplicates; an entry's
    /// `queue_refs` counts its occurrences so eviction can skip stale ones.
    queue: VecDeque<Key>,
    used_bytes: usize,
}

impl Shard {
    fn touch(&mut self, key: Key) {
        if let Some(entry) = self.map.get_mut(&key) {
            entry.queue_refs += 1;
            self.queue.push_back(key);
        }
        // Bound queue growth under hit-heavy workloads: rewrite it keeping
        // only the newest occurrence of each key once it gets silly.
        if self.queue.len() > self.map.len() * 4 + 16 {
            self.compact_queue();
        }
    }

    fn compact_queue(&mut self) {
        let mut seen: HashMap<Key, ()> = HashMap::with_capacity(self.map.len());
        let mut fresh: VecDeque<Key> = VecDeque::with_capacity(self.map.len());
        for &key in self.queue.iter().rev() {
            if let Some(entry) = self.map.get_mut(&key) {
                if seen.insert(key, ()).is_none() {
                    entry.queue_refs = 1;
                    fresh.push_front(key);
                }
            }
        }
        self.queue = fresh;
    }

    /// Evicts least-recently-used entries until `used_bytes <= capacity`,
    /// discharging each victim's weight from its scope counter. Returns how
    /// many entries were evicted.
    fn evict_to(&mut self, capacity: usize, scope_used: &[Arc<AtomicU64>]) -> u64 {
        let mut evicted = 0;
        while self.used_bytes > capacity {
            let Some(key) = self.queue.pop_front() else {
                break;
            };
            let Some(entry) = self.map.get_mut(&key) else {
                continue;
            };
            entry.queue_refs = entry.queue_refs.saturating_sub(1);
            if entry.queue_refs == 0 {
                let entry = self.map.remove(&key).expect("entry present");
                self.used_bytes -= entry.weight.min(self.used_bytes);
                discharge_scope(scope_used, entry.scope, entry.weight);
                evicted += 1;
            }
        }
        evicted
    }
}

/// Subtracts `weight` from a scope counter, saturating at zero.
fn discharge_scope(scope_used: &[Arc<AtomicU64>], scope: ScopeId, weight: usize) {
    if let Some(counter) = scope_used.get(scope as usize) {
        let mut current = counter.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(weight as u64);
            match counter.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }
}

/// Point-in-time counters of a [`BlockCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed and went to storage.
    pub misses: u64,
    /// Blocks inserted.
    pub inserts: u64,
    /// Blocks evicted by capacity pressure or table drop.
    pub evictions: u64,
    /// Current payload bytes held.
    pub used_bytes: u64,
    /// Current number of cached blocks.
    pub entries: u64,
}

impl BlockCacheStats {
    /// Hit rate in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded LRU cache of decoded SST data blocks, shared via `Arc`.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    next_table_id: AtomicU64,
    /// Which accounting scope each registered table charges. Read-mostly:
    /// written once per table open, read once per insert.
    table_scopes: RwLock<HashMap<u64, ScopeId>>,
    /// Bytes currently held per scope (index = [`ScopeId`]). Scope 0 always
    /// exists; sharded engines allocate one scope per shard via
    /// [`BlockCache::add_scope`] so a process-wide cache can report where its
    /// budget went.
    scope_used: RwLock<Vec<Arc<AtomicU64>>>,
    /// Lookups served from the cache, per scope (index = [`ScopeId`]).
    /// Together with `scope_misses` this distinguishes a cold shard (few
    /// lookups) from a thrashing one (many lookups, low hit rate).
    scope_hits: RwLock<Vec<Arc<AtomicU64>>>,
    /// Lookups that missed, per scope (index = [`ScopeId`]).
    scope_misses: RwLock<Vec<Arc<AtomicU64>>>,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("BlockCache")
            .field("capacity_bytes", &self.capacity_bytes())
            .field("stats", &stats)
            .finish()
    }
}

impl BlockCache {
    /// Default shard count: enough to keep reader/compactor contention low
    /// without fragmenting small capacities.
    const DEFAULT_SHARDS: usize = 8;

    /// Creates a cache holding roughly `capacity_bytes` of decoded blocks.
    pub fn new(capacity_bytes: usize) -> Arc<Self> {
        Self::with_shards(capacity_bytes, Self::DEFAULT_SHARDS)
    }

    /// Creates a cache with an explicit shard count (power of two recommended).
    pub fn with_shards(capacity_bytes: usize, num_shards: usize) -> Arc<Self> {
        let num_shards = num_shards.max(1);
        Arc::new(BlockCache {
            shards: (0..num_shards)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_capacity: (capacity_bytes / num_shards).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            next_table_id: AtomicU64::new(1),
            table_scopes: RwLock::new(HashMap::new()),
            scope_used: RwLock::new(vec![Arc::new(AtomicU64::new(0))]),
            scope_hits: RwLock::new(vec![Arc::new(AtomicU64::new(0))]),
            scope_misses: RwLock::new(vec![Arc::new(AtomicU64::new(0))]),
        })
    }

    /// Hands out a process-unique table id. Called once per opened SST; ids
    /// are never reused, which is what makes stale reads impossible. The
    /// table charges the default scope 0.
    pub fn register_table(&self) -> u64 {
        self.next_table_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Hands out a table id whose blocks charge `scope` (see
    /// [`BlockCache::add_scope`]). Unknown scopes fall back to scope 0.
    pub fn register_table_scoped(&self, scope: ScopeId) -> u64 {
        let id = self.register_table();
        if scope != 0 {
            self.table_scopes.write().insert(id, scope);
        }
        id
    }

    /// Allocates a fresh accounting scope (e.g. for one shard of a sharded
    /// engine) and returns its id. Scope 0 always exists as the default.
    pub fn add_scope(&self) -> ScopeId {
        let mut scopes = self.scope_used.write();
        scopes.push(Arc::new(AtomicU64::new(0)));
        self.scope_hits.write().push(Arc::new(AtomicU64::new(0)));
        self.scope_misses.write().push(Arc::new(AtomicU64::new(0)));
        (scopes.len() - 1) as ScopeId
    }

    /// Number of accounting scopes (including the default scope 0).
    pub fn num_scopes(&self) -> usize {
        self.scope_used.read().len()
    }

    /// Bytes currently cached on behalf of `scope` (0 for unknown scopes).
    pub fn scope_used_bytes(&self, scope: ScopeId) -> u64 {
        self.scope_used
            .read()
            .get(scope as usize)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Bytes currently cached per scope, indexed by [`ScopeId`].
    pub fn scope_usage(&self) -> Vec<u64> {
        self.scope_used
            .read()
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// `(hits, misses)` recorded on behalf of `scope` since the cache was
    /// created (`(0, 0)` for unknown scopes). Monotonic: retiring a scope
    /// does not reset its totals.
    pub fn scope_hit_miss(&self, scope: ScopeId) -> (u64, u64) {
        let hits = self
            .scope_hits
            .read()
            .get(scope as usize)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0);
        let misses = self
            .scope_misses
            .read()
            .get(scope as usize)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0);
        (hits, misses)
    }

    /// Bumps a per-scope counter (hit or miss), ignoring unknown scopes.
    fn bump_scope(counters: &RwLock<Vec<Arc<AtomicU64>>>, scope: ScopeId) {
        if let Some(counter) = counters.read().get(scope as usize) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Retires an accounting scope: every cached block charged to it is
    /// evicted, its table→scope registrations are removed (stragglers still
    /// reading through old handles charge the default scope 0 from then on)
    /// and its counter is zeroed. Called when a tenant goes away — e.g. a
    /// parent shard retired by a shard split — so the retired tenant's bytes
    /// stop counting against the global budget. Scope 0 cannot be retired.
    pub fn retire_scope(&self, scope: ScopeId) {
        if scope == 0 {
            return;
        }
        // Drop the registrations first so a racing insert from an in-flight
        // reader lands in scope 0 rather than re-charging the retired scope.
        self.table_scopes.write().retain(|_, s| *s != scope);
        let scope_used = self.scope_used.read();
        let mut evicted = 0;
        for shard in &self.shards {
            let mut shard = shard.lock();
            let keys: Vec<Key> = shard
                .map
                .iter()
                .filter(|(_, e)| e.scope == scope)
                .map(|(k, _)| *k)
                .collect();
            for key in keys {
                if let Some(entry) = shard.map.remove(&key) {
                    shard.used_bytes -= entry.weight.min(shard.used_bytes);
                    evicted += 1;
                }
            }
            // Dangling queue occurrences are skipped during eviction.
        }
        if let Some(counter) = scope_used.get(scope as usize) {
            counter.store(0, Ordering::Relaxed);
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// The accounting scope of a registered table (scope 0 when unscoped).
    fn scope_of(&self, table_id: u64) -> ScopeId {
        self.table_scopes
            .read()
            .get(&table_id)
            .copied()
            .unwrap_or(0)
    }

    fn shard(&self, key: &Key) -> &Mutex<Shard> {
        // Fold the block index into the high half *before* multiplying, so
        // consecutive blocks of one table spread across shards (the top bits
        // select the shard; an additive mix after the multiply would leave
        // every block of a table in the same shard).
        let h = (key.0 ^ ((key.1 as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 56) as usize % self.shards.len()]
    }

    /// Looks up a block, updating recency and hit/miss counters.
    pub fn get(&self, table_id: u64, block_idx: u32) -> Option<CachedBlock> {
        let key = (table_id, block_idx);
        let mut shard = self.shard(&key).lock();
        match shard.map.get(&key).map(|e| (Arc::clone(&e.data), e.scope)) {
            Some((data, scope)) => {
                shard.touch(key);
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Self::bump_scope(&self.scope_hits, scope);
                Some(data)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                // The resident entry that would know its scope is exactly
                // what's missing; fall back to the table registration.
                Self::bump_scope(&self.scope_misses, self.scope_of(table_id));
                None
            }
        }
    }

    /// Inserts a decoded block, evicting LRU entries if over capacity.
    pub fn insert(&self, table_id: u64, block_idx: u32, data: CachedBlock) {
        let weight: usize = data
            .iter()
            .map(|(k, v)| k.len() + v.len() + PAIR_OVERHEAD)
            .sum::<usize>()
            + ENTRY_OVERHEAD;
        let scope = self.scope_of(table_id);
        let key = (table_id, block_idx);
        let scope_used = self.scope_used.read();
        if let Some(counter) = scope_used.get(scope as usize) {
            counter.fetch_add(weight as u64, Ordering::Relaxed);
        }
        let mut shard = self.shard(&key).lock();
        if let Some(old) = shard.map.insert(
            key,
            Entry {
                data,
                weight,
                scope,
                queue_refs: 1,
            },
        ) {
            shard.used_bytes -= old.weight.min(shard.used_bytes);
            discharge_scope(&scope_used, old.scope, old.weight);
            // The old occurrences in the queue now refer to the new entry;
            // fold their count in so eviction bookkeeping stays consistent.
            shard.map.get_mut(&key).expect("just inserted").queue_refs += old.queue_refs;
        }
        shard.used_bytes += weight;
        shard.queue.push_back(key);
        let evicted = shard.evict_to(self.shard_capacity, &scope_used);
        drop(shard);
        drop(scope_used);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Drops every block of `table_id` (called when an SST handle is dropped,
    /// e.g. after compaction replaced the file).
    pub fn evict_table(&self, table_id: u64) {
        let mut evicted = 0;
        let scope_used = self.scope_used.read();
        for shard in &self.shards {
            let mut shard = shard.lock();
            let keys: Vec<Key> = shard
                .map
                .keys()
                .filter(|(t, _)| *t == table_id)
                .copied()
                .collect();
            for key in keys {
                if let Some(entry) = shard.map.remove(&key) {
                    shard.used_bytes -= entry.weight.min(shard.used_bytes);
                    discharge_scope(&scope_used, entry.scope, entry.weight);
                    evicted += 1;
                }
            }
            // Dangling queue occurrences are skipped during eviction.
        }
        drop(scope_used);
        self.table_scopes.write().remove(&table_id);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Total configured capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// Current counters.
    pub fn stats(&self) -> BlockCacheStats {
        let mut used = 0u64;
        let mut entries = 0u64;
        for shard in &self.shards {
            let shard = shard.lock();
            used += shard.used_bytes as u64;
            entries += shard.map.len() as u64;
        }
        BlockCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            used_bytes: used,
            entries,
        }
    }
}

/// A handle to a shared [`BlockCache`] that registers tables under one
/// accounting scope.
///
/// A process-wide cache serving several engines (the shards of a
/// `ShardedDb`, or two independent engines of different types) hands each
/// tenant a `ScopedCache` over the same underlying cache: storage, budget and
/// eviction are global, but every tenant's resident bytes stay attributable
/// via [`BlockCache::scope_used_bytes`].
#[derive(Clone, Debug)]
pub struct ScopedCache {
    cache: Arc<BlockCache>,
    scope: ScopeId,
}

impl ScopedCache {
    /// Wraps a cache under the default scope 0 (single-tenant use).
    pub fn unscoped(cache: Arc<BlockCache>) -> Self {
        ScopedCache { cache, scope: 0 }
    }

    /// Wraps a cache under an explicit scope previously allocated with
    /// [`BlockCache::add_scope`].
    pub fn new(cache: Arc<BlockCache>, scope: ScopeId) -> Self {
        ScopedCache { cache, scope }
    }

    /// The underlying shared cache.
    pub fn cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }

    /// The accounting scope tables registered through this handle charge.
    pub fn scope(&self) -> ScopeId {
        self.scope
    }

    /// Registers a table under this handle's scope (see
    /// [`BlockCache::register_table_scoped`]).
    pub fn register_table(&self) -> u64 {
        self.cache.register_table_scoped(self.scope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(bytes: usize) -> CachedBlock {
        Arc::new(vec![(vec![0u8; bytes / 2], vec![0u8; bytes - bytes / 2])])
    }

    /// The charged weight of a single-pair `block(bytes)`.
    fn block_weight(bytes: usize) -> usize {
        bytes + PAIR_OVERHEAD + ENTRY_OVERHEAD
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = BlockCache::new(1 << 20);
        let t = cache.register_table();
        assert!(cache.get(t, 0).is_none());
        cache.insert(t, 0, block(100));
        assert!(cache.get(t, 0).is_some());
        assert!(cache.get(t, 1).is_none());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.inserts, 1);
        assert!(stats.hit_rate() > 0.3 && stats.hit_rate() < 0.4);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        // Single shard so the LRU order is fully observable.
        let cache = BlockCache::with_shards(3 * block_weight(1000), 1);
        let t = cache.register_table();
        cache.insert(t, 0, block(1000));
        cache.insert(t, 1, block(1000));
        cache.insert(t, 2, block(1000));
        // Touch block 0 so block 1 becomes the LRU victim.
        assert!(cache.get(t, 0).is_some());
        cache.insert(t, 3, block(1000));
        assert!(cache.get(t, 1).is_none(), "LRU entry must be evicted");
        assert!(cache.get(t, 0).is_some(), "recently-touched entry survives");
        assert!(cache.get(t, 3).is_some());
        assert!(cache.stats().evictions >= 1);
    }

    #[test]
    fn over_capacity_insert_still_caches_nothing_extra() {
        let cache = BlockCache::with_shards(100, 1);
        let t = cache.register_table();
        cache.insert(t, 0, block(5000));
        // The oversized block cannot stay resident.
        assert!(cache.stats().used_bytes <= 100 || cache.stats().entries == 0);
    }

    #[test]
    fn table_ids_are_unique_and_eviction_is_scoped() {
        let cache = BlockCache::new(1 << 20);
        let t1 = cache.register_table();
        let t2 = cache.register_table();
        assert_ne!(t1, t2);
        cache.insert(t1, 0, block(100));
        cache.insert(t2, 0, block(100));
        cache.evict_table(t1);
        assert!(cache.get(t1, 0).is_none());
        assert!(cache.get(t2, 0).is_some());
    }

    #[test]
    fn reinsert_same_key_replaces_weight() {
        let cache = BlockCache::with_shards(1 << 20, 1);
        let t = cache.register_table();
        cache.insert(t, 0, block(1000));
        let used_before = cache.stats().used_bytes;
        cache.insert(t, 0, block(1000));
        assert_eq!(
            cache.stats().used_bytes,
            used_before,
            "replacement, not accumulation"
        );
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn blocks_of_one_table_spread_across_shards() {
        // A single hot table must use more than one shard (and so more than
        // 1/N of the capacity).
        let cache = BlockCache::with_shards(1 << 20, 8);
        let t = cache.register_table();
        let mut shards_used = std::collections::HashSet::new();
        for idx in 0..64u32 {
            let key = (t, idx);
            let shard = cache.shard(&key) as *const _ as usize;
            shards_used.insert(shard);
        }
        assert!(
            shards_used.len() >= 4,
            "64 blocks of one table landed in only {} of 8 shards",
            shards_used.len()
        );
    }

    #[test]
    fn scope_accounting_tracks_per_tenant_bytes() {
        let cache = BlockCache::with_shards(1 << 20, 1);
        let s1 = cache.add_scope();
        let s2 = cache.add_scope();
        assert_eq!(cache.num_scopes(), 3);
        let t0 = cache.register_table();
        let t1 = ScopedCache::new(Arc::clone(&cache), s1).register_table();
        let t2 = cache.register_table_scoped(s2);
        cache.insert(t0, 0, block(100));
        cache.insert(t1, 0, block(200));
        cache.insert(t1, 1, block(200));
        cache.insert(t2, 0, block(300));
        assert_eq!(cache.scope_used_bytes(0), block_weight(100) as u64);
        assert_eq!(cache.scope_used_bytes(s1), 2 * block_weight(200) as u64);
        assert_eq!(cache.scope_used_bytes(s2), block_weight(300) as u64);
        let total: u64 = cache.scope_usage().iter().sum();
        assert_eq!(total, cache.stats().used_bytes);
        // Dropping a table returns its scope's bytes.
        cache.evict_table(t1);
        assert_eq!(cache.scope_used_bytes(s1), 0);
        assert_eq!(
            cache.scope_usage().iter().sum::<u64>(),
            cache.stats().used_bytes
        );
    }

    #[test]
    fn per_scope_hits_and_misses_attribute_to_the_right_tenant() {
        let cache = BlockCache::with_shards(1 << 20, 1);
        let s1 = cache.add_scope();
        let s2 = cache.add_scope();
        let t1 = cache.register_table_scoped(s1);
        let t2 = cache.register_table_scoped(s2);
        cache.insert(t1, 0, block(100));
        // s1: two hits, one miss. s2: one miss (cold — never inserted).
        assert!(cache.get(t1, 0).is_some());
        assert!(cache.get(t1, 0).is_some());
        assert!(cache.get(t1, 9).is_none());
        assert!(cache.get(t2, 0).is_none());
        assert_eq!(cache.scope_hit_miss(s1), (2, 1));
        assert_eq!(cache.scope_hit_miss(s2), (0, 1));
        assert_eq!(cache.scope_hit_miss(0), (0, 0));
        // Per-scope counts sum to the global counters.
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        // Unknown scopes read as zero.
        assert_eq!(cache.scope_hit_miss(99), (0, 0));
    }

    #[test]
    fn retired_scope_is_drained_and_unregistered() {
        let cache = BlockCache::with_shards(1 << 20, 2);
        let s1 = cache.add_scope();
        let s2 = cache.add_scope();
        let t1 = cache.register_table_scoped(s1);
        let t2 = cache.register_table_scoped(s2);
        for idx in 0..8u32 {
            cache.insert(t1, idx, block(500));
            cache.insert(t2, idx, block(500));
        }
        assert!(cache.scope_used_bytes(s1) > 0);
        cache.retire_scope(s1);
        // The retired scope's blocks are gone and its counter is zero; the
        // survivor is untouched and global accounting still balances.
        assert_eq!(cache.scope_used_bytes(s1), 0);
        assert!(cache.get(t1, 0).is_none());
        assert!(cache.get(t2, 0).is_some());
        assert_eq!(cache.scope_used_bytes(s2), 8 * block_weight(500) as u64);
        assert_eq!(
            cache.scope_usage().iter().sum::<u64>(),
            cache.stats().used_bytes
        );
        // A straggler insert through the retired table now charges scope 0.
        cache.insert(t1, 99, block(100));
        assert_eq!(cache.scope_used_bytes(s1), 0);
        assert_eq!(cache.scope_used_bytes(0), block_weight(100) as u64);
        // Scope 0 itself can never be retired.
        cache.retire_scope(0);
        assert_eq!(cache.scope_used_bytes(0), block_weight(100) as u64);
    }

    #[test]
    fn capacity_eviction_discharges_scopes() {
        // Two scopes fighting over a budget that fits three blocks: whatever
        // LRU evicts, the per-scope counters must keep summing to used_bytes.
        let cache = BlockCache::with_shards(3 * block_weight(1000), 1);
        let s1 = cache.add_scope();
        let s2 = cache.add_scope();
        let t1 = cache.register_table_scoped(s1);
        let t2 = cache.register_table_scoped(s2);
        for idx in 0..4u32 {
            cache.insert(t1, idx, block(1000));
            cache.insert(t2, idx, block(1000));
        }
        assert!(cache.stats().evictions > 0);
        assert_eq!(
            cache.scope_usage().iter().sum::<u64>(),
            cache.stats().used_bytes
        );
        assert!(cache.stats().used_bytes as usize <= 3 * block_weight(1000));
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = BlockCache::new(64 << 10);
        let mut handles = Vec::new();
        for w in 0..4u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                let t = cache.register_table();
                for i in 0..500u32 {
                    cache.insert(t, i, block(64));
                    cache.get(t, i.saturating_sub(w as u32));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.inserts, 2000);
        assert!(stats.used_bytes as usize <= cache.capacity_bytes() + 8 * block_weight(64));
    }
}
