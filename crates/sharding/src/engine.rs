//! The engine abstraction sharding is generic over, and its implementations
//! for the two engines of this workspace.

use std::sync::Arc;

use laser_core::{LaserDb, LaserOptions, LayoutSpec, LevelLayout, Projection, RowFragment, Schema};
use laser_cost_model::{CostModel, TreeParameters};
use lsm_storage::cache::ScopedCache;
use lsm_storage::maintenance::EngineMaintenance;
use lsm_storage::manifest::FileMeta;
use lsm_storage::shape::TreeShape;
use lsm_storage::storage::{IoStatsSnapshot, StorageRef};
use lsm_storage::types::{SeqNo, UserKey, WriteBatch};
use lsm_storage::wal::WalRecord;
use lsm_storage::wal_segment::{ShippedSegment, WalStatsSnapshot};
use lsm_storage::{Error, LsmDb, LsmOptions, Result};
use telemetry::{LevelMix, MeasuredTreeParams, Telemetry};

/// An engine that can serve as one shard of a [`ShardedDb`](crate::ShardedDb).
///
/// The [`EngineMaintenance`] supertrait is what lets every shard register
/// with one shared [`JobScheduler`](lsm_storage::JobScheduler); the methods
/// here add shard-oriented open/write/read entry points over the engines'
/// native APIs. `Value`/`ReadCtx` keep the facade fully typed: the plain KV
/// engine scans `Vec<u8>` values with no read context, the LASER engine
/// scans [`RowFragment`]s under a column [`Projection`].
pub trait ShardEngine: EngineMaintenance + Sized + Send + Sync + 'static {
    /// Engine configuration, shared by every shard.
    type Options: Clone + Send + Sync + 'static;
    /// The value type reads and scans produce.
    type Value: Send + 'static;
    /// Per-read context (e.g. a column projection).
    type ReadCtx: Clone + Default + Send + Sync + 'static;

    /// Short engine name for logs and bench output.
    const ENGINE_NAME: &'static str;

    /// Opens one shard on its private storage namespace, serving block reads
    /// through the given scoped view of the process-wide cache.
    fn open_shard(
        storage: StorageRef,
        options: &Self::Options,
        cache: Option<ScopedCache>,
    ) -> Result<Self>;

    /// Applies a batch atomically (the caller has already routed every entry
    /// of the batch to this shard).
    fn shard_write(&self, batch: &WriteBatch) -> Result<()>;

    /// The last sequence number this shard assigned.
    fn shard_last_seq(&self) -> SeqNo;

    /// Point lookup visible at `snapshot`.
    fn shard_get_at(
        &self,
        key: UserKey,
        ctx: &Self::ReadCtx,
        snapshot: SeqNo,
    ) -> Result<Option<Self::Value>>;

    /// Range scan over `[lo, hi]` visible at `snapshot`, in key order.
    ///
    /// Implementations stream through their engine's merge stack (for
    /// `LsmDb`, the tournament-tree `range()` iterator; for `LaserDb`, the
    /// level-merging iterator over lazy per-run concat children), so a
    /// cross-shard scan's per-shard legs inherit the streaming read path.
    fn shard_scan_at(
        &self,
        lo: UserKey,
        hi: UserKey,
        ctx: &Self::ReadCtx,
        snapshot: SeqNo,
    ) -> Result<Vec<(UserKey, Self::Value)>>;

    /// Flushes all buffered writes to Level-0.
    fn shard_flush(&self) -> Result<()>;

    /// Compacts until no level overflows.
    fn shard_compact_until_stable(&self) -> Result<()>;

    /// Flushes outstanding data and persists the shard's manifest.
    fn shard_close(&self) -> Result<()>;

    // ------------------------------------------------------------------
    // Size statistics and split support
    // ------------------------------------------------------------------

    /// Metadata of every attached SST, grouped by level. The split policy
    /// derives a shard's on-disk size and a byte-weighted split point from
    /// these.
    fn shard_level_files(&self) -> Vec<Vec<FileMeta>>;

    /// Approximate bytes buffered in the shard's memtables (mutable plus
    /// frozen).
    fn shard_buffered_bytes(&self) -> u64;

    /// Restricts the shard to the inclusive key range `[lo, hi]`: engines
    /// that support it drop out-of-range entries during compaction and trim
    /// SSTs adopted from a pre-split parent. Routing guarantees reads never
    /// ask for out-of-range keys, so engines without range restriction may
    /// keep this default no-op (the out-of-range leftovers are invisible,
    /// just not reclaimed).
    fn shard_set_key_bound(&self, _lo: UserKey, _hi: UserKey) {}

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Registers the shard's latency histograms, byte counters and
    /// maintenance events with a shared telemetry hub under `shard_label`.
    /// Engines without instrumentation may keep the default no-op.
    fn shard_attach_telemetry(&self, _hub: &Arc<Telemetry>, _shard_label: &str) {}

    /// Durability counters of the shard's write-ahead log.
    fn shard_wal_stats(&self) -> WalStatsSnapshot;

    /// I/O counters of the shard's private storage namespace.
    fn shard_io_stats(&self) -> IoStatsSnapshot;

    // ------------------------------------------------------------------
    // Amplification accounting and the advisor bridge
    // ------------------------------------------------------------------

    /// Point-in-time physical shape of the shard's tree (files, bytes,
    /// overlap and compaction debt per level), from which the facade derives
    /// the structural read amplification and measured space amplification.
    fn shard_tree_shape(&self) -> TreeShape;

    /// Logical payload bytes accepted on the write path (key + value /
    /// encoded fragment) — the denominator of measured write amplification.
    fn shard_ingest_bytes(&self) -> u64;

    /// Bytes written to storage by flushes and compactions — the numerator
    /// of measured write amplification.
    fn shard_flush_compact_bytes(&self) -> u64;

    /// Structural tree parameters measured from the live shard (entry
    /// counts, block occupancy), feeding the cost model and the advisor.
    fn shard_tree_params(&self) -> MeasuredTreeParams;

    /// Per-level operation mix observed by the shard, in the telemetry
    /// crate's engine-agnostic form. Losslessly convertible into a
    /// `laser_advisor::WorkloadTrace` (projections are 0-based column ids;
    /// engines without projections report whole-row column sets).
    fn shard_workload_levels(&self) -> Vec<LevelMix>;

    /// Cost-model predictions for this shard under its current layout:
    /// `(write_amp, space_amp)`. Write amplification is Equation 4 scaled
    /// from block I/Os per entry to a byte rewrite factor (× `B`); space
    /// amplification is the Section 5 worst case, `1 + 1/T`. The facade
    /// exports `measured − predicted` as the per-shard model residual.
    fn shard_predicted_amps(&self) -> (f64, f64);

    /// The column set a read context projects, as 0-based column ids, for
    /// workload profiling. `None` for engines whose reads have no
    /// projection.
    fn read_ctx_columns(_ctx: &Self::ReadCtx) -> Option<Vec<u32>> {
        None
    }

    // ------------------------------------------------------------------
    // Replication support (WAL shipping and replica apply)
    // ------------------------------------------------------------------

    /// Whether this engine implements the WAL-shipping replication hooks
    /// below. [`ShardedDb`](crate::ShardedDb) only accepts a replicated
    /// configuration for engines that return true.
    const SUPPORTS_REPLICATION: bool = false;

    /// Applies a record replicated from a leader at its original sequence
    /// numbers through this replica's own WAL and memtable. Must be
    /// idempotent under retransmission (duplicate records are skipped,
    /// partially overlapping ones apply only their unseen suffix) and must
    /// reject records that would leave a sequence gap. Returns the replica's
    /// new last applied sequence number.
    fn shard_apply_replicated(&self, _start_seq: SeqNo, _batch: &WriteBatch) -> Result<SeqNo> {
        Err(Error::invalid(format!(
            "engine {} does not support replication",
            Self::ENGINE_NAME
        )))
    }

    /// The catch-up payload for a replica that has applied through
    /// `from_seq`: sealed WAL segment images plus the intact live-tail
    /// records past that horizon.
    fn shard_wal_catchup(&self, _from_seq: SeqNo) -> Result<(Vec<ShippedSegment>, Vec<WalRecord>)> {
        Err(Error::invalid(format!(
            "engine {} does not support replication",
            Self::ENGINE_NAME
        )))
    }

    /// Adopts a shipped sealed-segment image wholesale (replica catch-up in
    /// O(1) appends per segment). Returns the new last applied sequence
    /// number.
    fn shard_adopt_wal_segment(&self, _bytes: &[u8]) -> Result<SeqNo> {
        Err(Error::invalid(format!(
            "engine {} does not support replication",
            Self::ENGINE_NAME
        )))
    }

    /// Pins sealed WAL segments holding records past `seq` (the lowest
    /// sequence number any replica still needs) so a lagging-but-healthy
    /// replica can always catch up from the leader's log. Engines without
    /// replication hooks keep the default no-op.
    fn shard_set_wal_retention_floor(&self, _seq: SeqNo) -> Result<()> {
        Ok(())
    }

    /// False once the shard's WAL has fail-stopped: the replication health
    /// monitor treats such a leader as lost. Engines without a fail-stop
    /// signal report healthy.
    fn shard_is_healthy(&self) -> bool {
        true
    }

    /// Why the shard is serving read-only (persistent storage fault pushed
    /// the engine into graceful degradation), or `None` while it accepts
    /// writes. Engines without a degradation controller report writable.
    fn shard_degraded_reason(&self) -> Option<String> {
        None
    }
}

impl ShardEngine for LsmDb {
    type Options = LsmOptions;
    type Value = Vec<u8>;
    type ReadCtx = ();

    const ENGINE_NAME: &'static str = "lsm";

    fn open_shard(
        storage: StorageRef,
        options: &Self::Options,
        cache: Option<ScopedCache>,
    ) -> Result<Self> {
        LsmDb::open_with_cache(storage, options.clone(), cache)
    }

    fn shard_write(&self, batch: &WriteBatch) -> Result<()> {
        self.write(batch)
    }

    fn shard_last_seq(&self) -> SeqNo {
        self.last_seq()
    }

    fn shard_get_at(
        &self,
        key: UserKey,
        _ctx: &Self::ReadCtx,
        snapshot: SeqNo,
    ) -> Result<Option<Self::Value>> {
        self.get_at(key, snapshot)
    }

    fn shard_scan_at(
        &self,
        lo: UserKey,
        hi: UserKey,
        _ctx: &Self::ReadCtx,
        snapshot: SeqNo,
    ) -> Result<Vec<(UserKey, Self::Value)>> {
        self.scan_at(lo, hi, snapshot)
    }

    fn shard_flush(&self) -> Result<()> {
        self.flush()
    }

    fn shard_compact_until_stable(&self) -> Result<()> {
        self.compact_until_stable()
    }

    fn shard_close(&self) -> Result<()> {
        self.close()
    }

    fn shard_level_files(&self) -> Vec<Vec<FileMeta>> {
        self.level_files()
    }

    fn shard_buffered_bytes(&self) -> u64 {
        self.buffered_bytes()
    }

    fn shard_set_key_bound(&self, lo: UserKey, hi: UserKey) {
        self.set_key_bound(lo, hi)
    }

    fn shard_attach_telemetry(&self, hub: &Arc<Telemetry>, shard_label: &str) {
        self.attach_telemetry(hub, shard_label)
    }

    fn shard_wal_stats(&self) -> WalStatsSnapshot {
        self.wal_stats()
    }

    fn shard_io_stats(&self) -> IoStatsSnapshot {
        self.storage().io_stats().snapshot()
    }

    fn shard_tree_shape(&self) -> TreeShape {
        TreeShape::compute(
            &self.level_files(),
            self.buffered_bytes(),
            self.options().size_ratio,
            self.options().level_capacity_bytes(0),
            self.key_bound(),
        )
    }

    fn shard_ingest_bytes(&self) -> u64 {
        self.stats().ingest_bytes
    }

    fn shard_flush_compact_bytes(&self) -> u64 {
        self.stats().bytes_written
    }

    fn shard_tree_params(&self) -> MeasuredTreeParams {
        let levels = self.level_files();
        let total_bytes: u64 = levels.iter().flatten().map(|f| f.file_size).sum();
        let total_entries: u64 = levels.iter().flatten().map(|f| f.num_entries).sum();
        let block = self.options().table.block_size;
        MeasuredTreeParams {
            num_entries: total_entries + self.memtable_len() as u64,
            size_ratio: self.options().size_ratio,
            entries_per_block: entries_per_block(total_bytes, total_entries, block),
            level0_blocks: level0_blocks(self.options().level_capacity_bytes(0), block),
            num_columns: 1,
        }
    }

    fn shard_workload_levels(&self) -> Vec<LevelMix> {
        // The plain KV engine has no projections: every op touches the whole
        // (single-column) row. Inserts pass through every level on their way
        // down, so each level sees the full WAL append count.
        let inserts = self.wal_stats().records_appended;
        self.reads_by_level()
            .into_iter()
            .map(|reads| LevelMix {
                inserts,
                point_reads: if reads > 0 {
                    vec![(vec![0], reads)]
                } else {
                    Vec::new()
                },
                point_read_groups: reads,
                scans: Vec::new(),
                updates: Vec::new(),
            })
            .collect()
    }

    fn shard_predicted_amps(&self) -> (f64, f64) {
        let schema = Schema::with_columns(1);
        let layouts = (0..self.options().num_levels.max(1))
            .map(|_| LevelLayout::row_oriented(&schema))
            .collect();
        let layout = LayoutSpec::new(schema, layouts, "row").expect("row layout is valid");
        predicted_amps(
            &self.shard_tree_params(),
            layout,
            self.options().num_levels.max(1),
        )
    }

    const SUPPORTS_REPLICATION: bool = true;

    fn shard_apply_replicated(&self, start_seq: SeqNo, batch: &WriteBatch) -> Result<SeqNo> {
        self.apply_replicated(start_seq, batch)
    }

    fn shard_wal_catchup(&self, from_seq: SeqNo) -> Result<(Vec<ShippedSegment>, Vec<WalRecord>)> {
        self.wal_catchup(from_seq)
    }

    fn shard_adopt_wal_segment(&self, bytes: &[u8]) -> Result<SeqNo> {
        self.adopt_wal_segment(bytes)
    }

    fn shard_set_wal_retention_floor(&self, seq: SeqNo) -> Result<()> {
        self.set_wal_retention_floor(seq)
    }

    fn shard_is_healthy(&self) -> bool {
        self.is_healthy()
    }

    fn shard_degraded_reason(&self) -> Option<String> {
        self.degraded_info().map(|info| info.reason)
    }
}

impl ShardEngine for LaserDb {
    type Options = LaserOptions;
    type Value = RowFragment;
    type ReadCtx = Projection;

    const ENGINE_NAME: &'static str = "laser";

    fn open_shard(
        storage: StorageRef,
        options: &Self::Options,
        cache: Option<ScopedCache>,
    ) -> Result<Self> {
        LaserDb::open_with_cache(storage, options.clone(), cache)
    }

    fn shard_write(&self, batch: &WriteBatch) -> Result<()> {
        self.write(batch)
    }

    fn shard_last_seq(&self) -> SeqNo {
        self.last_seq()
    }

    fn shard_get_at(
        &self,
        key: UserKey,
        ctx: &Self::ReadCtx,
        snapshot: SeqNo,
    ) -> Result<Option<Self::Value>> {
        self.read_at(key, ctx, snapshot)
    }

    fn shard_scan_at(
        &self,
        lo: UserKey,
        hi: UserKey,
        ctx: &Self::ReadCtx,
        snapshot: SeqNo,
    ) -> Result<Vec<(UserKey, Self::Value)>> {
        self.scan_at(lo, hi, ctx, snapshot)
    }

    fn shard_flush(&self) -> Result<()> {
        self.flush()
    }

    fn shard_compact_until_stable(&self) -> Result<()> {
        self.compact_until_stable()
    }

    fn shard_close(&self) -> Result<()> {
        self.close()
    }

    fn shard_level_files(&self) -> Vec<Vec<FileMeta>> {
        self.level_files()
    }

    fn shard_buffered_bytes(&self) -> u64 {
        self.buffered_bytes()
    }

    // LaserDb keeps the default no-op `shard_set_key_bound`: its CG
    // compactions do not yet drop out-of-range entries, so a split shard
    // carries (invisible) out-of-range leftovers until they age out.

    fn shard_attach_telemetry(&self, hub: &Arc<Telemetry>, shard_label: &str) {
        self.attach_telemetry(hub, shard_label)
    }

    fn shard_wal_stats(&self) -> WalStatsSnapshot {
        self.wal_stats()
    }

    fn shard_io_stats(&self) -> IoStatsSnapshot {
        self.storage().io_stats().snapshot()
    }

    fn shard_tree_shape(&self) -> TreeShape {
        // LaserDb keeps the default no-op key bound (see above), so its
        // live-byte estimate carries no bounds discount.
        TreeShape::compute(
            &self.level_files(),
            self.buffered_bytes(),
            self.options().size_ratio,
            self.options().level_capacity_bytes(0),
            None,
        )
    }

    fn shard_ingest_bytes(&self) -> u64 {
        self.stats().ingest_bytes
    }

    fn shard_flush_compact_bytes(&self) -> u64 {
        self.stats().compaction_bytes_written
    }

    fn shard_tree_params(&self) -> MeasuredTreeParams {
        let levels = self.level_files();
        let total_bytes: u64 = levels.iter().flatten().map(|f| f.file_size).sum();
        let total_entries: u64 = levels.iter().flatten().map(|f| f.num_entries).sum();
        // A row is stored once per column group of its level, so a level's
        // row count is its largest per-CG entry sum, not the plain file
        // total.
        let rows: u64 = levels
            .iter()
            .map(|files| {
                let mut per_group: Vec<(u32, u64)> = Vec::new();
                for file in files {
                    match per_group.iter_mut().find(|(g, _)| *g == file.column_group) {
                        Some(slot) => slot.1 += file.num_entries,
                        None => per_group.push((file.column_group, file.num_entries)),
                    }
                }
                per_group.iter().map(|&(_, n)| n).max().unwrap_or(0)
            })
            .sum();
        let block = self.options().table.block_size;
        MeasuredTreeParams {
            num_entries: rows + self.memtable_len() as u64,
            size_ratio: self.options().size_ratio,
            entries_per_block: entries_per_block(total_bytes, total_entries, block),
            level0_blocks: level0_blocks(self.options().level_capacity_bytes(0), block),
            num_columns: self.schema().num_columns() as u32,
        }
    }

    fn shard_workload_levels(&self) -> Vec<LevelMix> {
        let snap = self.stats();
        // Every accepted write is eventually merged down through each level.
        let inserts = snap.inserts + snap.updates + snap.deletes;
        snap.levels
            .iter()
            .map(|profile| LevelMix {
                inserts,
                point_reads: profile
                    .read_projections
                    .iter()
                    .map(|(p, n)| (projection_columns(p), *n))
                    .collect(),
                point_read_groups: profile.point_read_groups_fetched,
                scans: profile
                    .scan_projections
                    .iter()
                    .map(|(p, entries, n)| (projection_columns(p), *entries, *n))
                    .collect(),
                updates: profile
                    .update_projections
                    .iter()
                    .map(|(p, n)| (projection_columns(p), *n))
                    .collect(),
            })
            .collect()
    }

    fn shard_predicted_amps(&self) -> (f64, f64) {
        predicted_amps(
            &self.shard_tree_params(),
            self.layout().clone(),
            self.options().num_levels.max(1),
        )
    }

    fn read_ctx_columns(ctx: &Self::ReadCtx) -> Option<Vec<u32>> {
        Some(projection_columns(ctx))
    }

    fn shard_is_healthy(&self) -> bool {
        self.is_healthy()
    }

    fn shard_degraded_reason(&self) -> Option<String> {
        self.degraded_info().map(|info| info.reason)
    }
}

/// A projection's column ids as the telemetry crate's 0-based `u32` form.
fn projection_columns(projection: &Projection) -> Vec<u32> {
    projection.iter().map(|c| c as u32).collect()
}

/// Entries-per-block estimate (`B`) from aggregate SST statistics: how many
/// average-sized entries fit one data block. At least 1.
fn entries_per_block(total_bytes: u64, total_entries: u64, block_size: usize) -> u64 {
    if total_entries == 0 || total_bytes == 0 {
        return 1;
    }
    let avg_entry = (total_bytes / total_entries).max(1);
    (block_size as u64 / avg_entry).max(1)
}

/// Blocks in a full level 0 (`P`), from its byte capacity. At least 1.
fn level0_blocks(level0_capacity_bytes: u64, block_size: usize) -> u64 {
    (level0_capacity_bytes / (block_size as u64).max(1)).max(1)
}

/// Evaluates the cost model's predictions for `measured` parameters under
/// `layout`: Equation 4 scaled from block I/Os per entry to a byte rewrite
/// factor (× `B`), and the Section 5 worst-case space amplification
/// (`1 + 1/T`). Degenerate measurements are clamped to the model's domain so
/// the predictions stay finite.
fn predicted_amps(
    measured: &MeasuredTreeParams,
    layout: LayoutSpec,
    num_levels: usize,
) -> (f64, f64) {
    let params = TreeParameters {
        num_entries: measured.num_entries.max(1),
        size_ratio: measured.size_ratio.max(2),
        entries_per_block: measured.entries_per_block.max(1) as f64,
        level0_blocks: measured.level0_blocks.max(1),
        num_columns: (measured.num_columns as usize).max(1),
    };
    let entries_per_block = params.entries_per_block;
    let model = CostModel::new(params, layout, num_levels);
    let write = model.insert_amplification() * entries_per_block;
    let space = 1.0 + model.space_amplification();
    (write, space)
}
