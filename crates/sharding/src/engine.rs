//! The engine abstraction sharding is generic over, and its implementations
//! for the two engines of this workspace.

use std::sync::Arc;

use laser_core::{LaserDb, LaserOptions, Projection, RowFragment};
use lsm_storage::cache::ScopedCache;
use lsm_storage::maintenance::EngineMaintenance;
use lsm_storage::manifest::FileMeta;
use lsm_storage::storage::{IoStatsSnapshot, StorageRef};
use lsm_storage::types::{SeqNo, UserKey, WriteBatch};
use lsm_storage::wal_segment::WalStatsSnapshot;
use lsm_storage::{LsmDb, LsmOptions, Result};
use telemetry::Telemetry;

/// An engine that can serve as one shard of a [`ShardedDb`](crate::ShardedDb).
///
/// The [`EngineMaintenance`] supertrait is what lets every shard register
/// with one shared [`JobScheduler`](lsm_storage::JobScheduler); the methods
/// here add shard-oriented open/write/read entry points over the engines'
/// native APIs. `Value`/`ReadCtx` keep the facade fully typed: the plain KV
/// engine scans `Vec<u8>` values with no read context, the LASER engine
/// scans [`RowFragment`]s under a column [`Projection`].
pub trait ShardEngine: EngineMaintenance + Sized + Send + Sync + 'static {
    /// Engine configuration, shared by every shard.
    type Options: Clone + Send + Sync + 'static;
    /// The value type reads and scans produce.
    type Value: Send + 'static;
    /// Per-read context (e.g. a column projection).
    type ReadCtx: Clone + Default + Send + Sync + 'static;

    /// Short engine name for logs and bench output.
    const ENGINE_NAME: &'static str;

    /// Opens one shard on its private storage namespace, serving block reads
    /// through the given scoped view of the process-wide cache.
    fn open_shard(
        storage: StorageRef,
        options: &Self::Options,
        cache: Option<ScopedCache>,
    ) -> Result<Self>;

    /// Applies a batch atomically (the caller has already routed every entry
    /// of the batch to this shard).
    fn shard_write(&self, batch: &WriteBatch) -> Result<()>;

    /// The last sequence number this shard assigned.
    fn shard_last_seq(&self) -> SeqNo;

    /// Point lookup visible at `snapshot`.
    fn shard_get_at(
        &self,
        key: UserKey,
        ctx: &Self::ReadCtx,
        snapshot: SeqNo,
    ) -> Result<Option<Self::Value>>;

    /// Range scan over `[lo, hi]` visible at `snapshot`, in key order.
    ///
    /// Implementations stream through their engine's merge stack (for
    /// `LsmDb`, the tournament-tree `range()` iterator; for `LaserDb`, the
    /// level-merging iterator over lazy per-run concat children), so a
    /// cross-shard scan's per-shard legs inherit the streaming read path.
    fn shard_scan_at(
        &self,
        lo: UserKey,
        hi: UserKey,
        ctx: &Self::ReadCtx,
        snapshot: SeqNo,
    ) -> Result<Vec<(UserKey, Self::Value)>>;

    /// Flushes all buffered writes to Level-0.
    fn shard_flush(&self) -> Result<()>;

    /// Compacts until no level overflows.
    fn shard_compact_until_stable(&self) -> Result<()>;

    /// Flushes outstanding data and persists the shard's manifest.
    fn shard_close(&self) -> Result<()>;

    // ------------------------------------------------------------------
    // Size statistics and split support
    // ------------------------------------------------------------------

    /// Metadata of every attached SST, grouped by level. The split policy
    /// derives a shard's on-disk size and a byte-weighted split point from
    /// these.
    fn shard_level_files(&self) -> Vec<Vec<FileMeta>>;

    /// Approximate bytes buffered in the shard's memtables (mutable plus
    /// frozen).
    fn shard_buffered_bytes(&self) -> u64;

    /// Restricts the shard to the inclusive key range `[lo, hi]`: engines
    /// that support it drop out-of-range entries during compaction and trim
    /// SSTs adopted from a pre-split parent. Routing guarantees reads never
    /// ask for out-of-range keys, so engines without range restriction may
    /// keep this default no-op (the out-of-range leftovers are invisible,
    /// just not reclaimed).
    fn shard_set_key_bound(&self, _lo: UserKey, _hi: UserKey) {}

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Registers the shard's latency histograms, byte counters and
    /// maintenance events with a shared telemetry hub under `shard_label`.
    /// Engines without instrumentation may keep the default no-op.
    fn shard_attach_telemetry(&self, _hub: &Arc<Telemetry>, _shard_label: &str) {}

    /// Durability counters of the shard's write-ahead log.
    fn shard_wal_stats(&self) -> WalStatsSnapshot;

    /// I/O counters of the shard's private storage namespace.
    fn shard_io_stats(&self) -> IoStatsSnapshot;
}

impl ShardEngine for LsmDb {
    type Options = LsmOptions;
    type Value = Vec<u8>;
    type ReadCtx = ();

    const ENGINE_NAME: &'static str = "lsm";

    fn open_shard(
        storage: StorageRef,
        options: &Self::Options,
        cache: Option<ScopedCache>,
    ) -> Result<Self> {
        LsmDb::open_with_cache(storage, options.clone(), cache)
    }

    fn shard_write(&self, batch: &WriteBatch) -> Result<()> {
        self.write(batch)
    }

    fn shard_last_seq(&self) -> SeqNo {
        self.last_seq()
    }

    fn shard_get_at(
        &self,
        key: UserKey,
        _ctx: &Self::ReadCtx,
        snapshot: SeqNo,
    ) -> Result<Option<Self::Value>> {
        self.get_at(key, snapshot)
    }

    fn shard_scan_at(
        &self,
        lo: UserKey,
        hi: UserKey,
        _ctx: &Self::ReadCtx,
        snapshot: SeqNo,
    ) -> Result<Vec<(UserKey, Self::Value)>> {
        self.scan_at(lo, hi, snapshot)
    }

    fn shard_flush(&self) -> Result<()> {
        self.flush()
    }

    fn shard_compact_until_stable(&self) -> Result<()> {
        self.compact_until_stable()
    }

    fn shard_close(&self) -> Result<()> {
        self.close()
    }

    fn shard_level_files(&self) -> Vec<Vec<FileMeta>> {
        self.level_files()
    }

    fn shard_buffered_bytes(&self) -> u64 {
        self.buffered_bytes()
    }

    fn shard_set_key_bound(&self, lo: UserKey, hi: UserKey) {
        self.set_key_bound(lo, hi)
    }

    fn shard_attach_telemetry(&self, hub: &Arc<Telemetry>, shard_label: &str) {
        self.attach_telemetry(hub, shard_label)
    }

    fn shard_wal_stats(&self) -> WalStatsSnapshot {
        self.wal_stats()
    }

    fn shard_io_stats(&self) -> IoStatsSnapshot {
        self.storage().io_stats().snapshot()
    }
}

impl ShardEngine for LaserDb {
    type Options = LaserOptions;
    type Value = RowFragment;
    type ReadCtx = Projection;

    const ENGINE_NAME: &'static str = "laser";

    fn open_shard(
        storage: StorageRef,
        options: &Self::Options,
        cache: Option<ScopedCache>,
    ) -> Result<Self> {
        LaserDb::open_with_cache(storage, options.clone(), cache)
    }

    fn shard_write(&self, batch: &WriteBatch) -> Result<()> {
        self.write(batch)
    }

    fn shard_last_seq(&self) -> SeqNo {
        self.last_seq()
    }

    fn shard_get_at(
        &self,
        key: UserKey,
        ctx: &Self::ReadCtx,
        snapshot: SeqNo,
    ) -> Result<Option<Self::Value>> {
        self.read_at(key, ctx, snapshot)
    }

    fn shard_scan_at(
        &self,
        lo: UserKey,
        hi: UserKey,
        ctx: &Self::ReadCtx,
        snapshot: SeqNo,
    ) -> Result<Vec<(UserKey, Self::Value)>> {
        self.scan_at(lo, hi, ctx, snapshot)
    }

    fn shard_flush(&self) -> Result<()> {
        self.flush()
    }

    fn shard_compact_until_stable(&self) -> Result<()> {
        self.compact_until_stable()
    }

    fn shard_close(&self) -> Result<()> {
        self.close()
    }

    fn shard_level_files(&self) -> Vec<Vec<FileMeta>> {
        self.level_files()
    }

    fn shard_buffered_bytes(&self) -> u64 {
        self.buffered_bytes()
    }

    // LaserDb keeps the default no-op `shard_set_key_bound`: its CG
    // compactions do not yet drop out-of-range entries, so a split shard
    // carries (invisible) out-of-range leftovers until they age out.

    fn shard_attach_telemetry(&self, hub: &Arc<Telemetry>, shard_label: &str) {
        self.attach_telemetry(hub, shard_label)
    }

    fn shard_wal_stats(&self) -> WalStatsSnapshot {
        self.wal_stats()
    }

    fn shard_io_stats(&self) -> IoStatsSnapshot {
        self.storage().io_stats().snapshot()
    }
}
