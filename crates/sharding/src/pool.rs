//! A small rayon-free worker pool for cross-shard fan-out.
//!
//! Cross-shard scans (and multi-shard batch writes) need to run one closure
//! per shard concurrently and wait for all of them. The pool keeps a fixed
//! set of threads fed from one queue; [`WorkerPool::run_all`] executes the
//! first task on the calling thread (the caller would otherwise just block)
//! and the rest on the workers, returning every result in task order.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use parking_lot::Mutex;

type Task = Box<dyn FnOnce() + Send>;

/// A fixed pool of worker threads executing boxed closures.
pub struct WorkerPool {
    tx: Sender<Task>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Starts a pool with `threads` workers (at least one).
    pub fn new(threads: usize, name: &str) -> WorkerPool {
        let (tx, rx) = channel::<Task>();
        let rx = std::sync::Arc::new(Mutex::new(rx));
        let workers = (0..threads.max(1))
            .map(|i| {
                let rx = std::sync::Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { tx, workers }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs every task to completion — the first inline on the calling
    /// thread, the rest on the workers — and returns the results in task
    /// order. Tasks must not submit to the pool themselves (no nesting), so
    /// the pool cannot deadlock on its own queue.
    pub fn run_all<T, F>(&self, mut tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if tasks.is_empty() {
            return Vec::new();
        }
        let first = tasks.remove(0);
        let (res_tx, res_rx) = channel::<(usize, T)>();
        let queued = tasks.len();
        for (offset, task) in tasks.into_iter().enumerate() {
            let res_tx = res_tx.clone();
            let boxed: Task = Box::new(move || {
                // A disconnected receiver means the caller panicked; there
                // is nobody left to use the result.
                let _ = res_tx.send((offset + 1, task()));
            });
            self.tx.send(boxed).expect("worker pool queue closed");
        }
        // Only the task closures hold senders now: if a task panics (its
        // sender drops without sending), the channel disconnects once the
        // rest finish and the recv below reports it instead of hanging.
        drop(res_tx);
        let mut results: Vec<Option<T>> = Vec::new();
        results.resize_with(queued + 1, || None);
        results[0] = Some(first());
        for _ in 0..queued {
            let (idx, value) = res_rx
                .recv()
                .expect("a worker-pool task panicked; its result was lost");
            results[idx] = Some(value);
        }
        results
            .into_iter()
            .map(|r| r.expect("every task produced a result"))
            .collect()
    }
}

impl Drop for WorkerPool {
    /// Closes the queue and joins every worker (queued tasks drain first).
    fn drop(&mut self) {
        // Dropping the sender disconnects the channel; workers exit once the
        // queue is empty.
        let (closed_tx, _) = channel::<Task>();
        drop(std::mem::replace(&mut self.tx, closed_tx));
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Task>>) {
    loop {
        // Hold the receiver lock only while dequeuing so tasks run in
        // parallel across workers.
        let task = {
            let rx = rx.lock();
            rx.recv()
        };
        match task {
            // Contain a panicking task to that task: its result sender drops
            // (the submitter's recv reports the loss) but the worker thread
            // survives for later submissions.
            Ok(task) => {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn results_come_back_in_task_order() {
        let pool = WorkerPool::new(4, "test-pool");
        let tasks: Vec<_> = (0..16u64)
            .map(|i| {
                move || {
                    if i % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    i * 10
                }
            })
            .collect();
        let results = pool.run_all(tasks);
        assert_eq!(results, (0..16u64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_run_concurrently() {
        let pool = WorkerPool::new(4, "test-pool");
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..4)
            .map(|_| {
                let live = Arc::clone(&live);
                let peak = Arc::clone(&peak);
                move || {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    live.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.run_all(tasks);
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "expected at least two tasks in flight at once"
        );
    }

    #[test]
    fn empty_and_single_task_work() {
        let pool = WorkerPool::new(2, "test-pool");
        assert_eq!(pool.run_all(Vec::<fn() -> u32>::new()), Vec::<u32>::new());
        assert_eq!(pool.run_all(vec![|| 7u32]), vec![7]);
    }

    #[test]
    fn task_panic_is_reported_not_hung() {
        let pool = WorkerPool::new(2, "test-pool");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_all(vec![
                Box::new(|| 1u32) as Box<dyn FnOnce() -> u32 + Send>,
                Box::new(|| panic!("boom")),
            ])
        }));
        assert!(outcome.is_err(), "the lost result must surface as a panic");
        // The worker survives the contained panic and serves later tasks.
        assert_eq!(pool.run_all(vec![|| 5u32, || 6u32]), vec![5, 6]);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(3, "test-pool");
        let counter = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..30)
            .map(|_| {
                let counter = Arc::clone(&counter);
                move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.run_all(tasks);
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 30);
    }
}
