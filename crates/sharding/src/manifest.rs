//! The shard manifest: the persisted topology of a sharded database.
//!
//! A tiny checksummed file (`SHARDS`) in the *root* directory recording the
//! router's split points. Each shard keeps its own per-shard manifest and
//! WAL inside its subdirectory; this file only pins which key range lives
//! where, so a reopen reconstructs the exact topology regardless of the
//! shard count the caller asks for. Written atomically (temp + rename), like
//! the engine manifests.

use lsm_storage::checksum::crc32;
use lsm_storage::coding::{put_u32, put_u64, put_varint64, Decoder};
use lsm_storage::storage::StorageRef;
use lsm_storage::types::UserKey;
use lsm_storage::{Error, Result};

use crate::router::ShardRouter;

/// Magic number at the start of a shard manifest.
const SHARD_MANIFEST_MAGIC: u64 = 0x4C41_5345_5253_4844; // "LASERSHD"

/// Name of the shard manifest file in the root directory.
pub const SHARD_MANIFEST_NAME: &str = "SHARDS";
const SHARD_MANIFEST_TMP: &str = "SHARDS.tmp";

/// The persisted shard topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// The router's split points (`num_shards - 1` entries, ascending).
    pub boundaries: Vec<UserKey>,
}

impl ShardManifest {
    /// Captures the topology of `router`.
    pub fn from_router(router: &ShardRouter) -> ShardManifest {
        ShardManifest {
            boundaries: router.boundaries().to_vec(),
        }
    }

    /// Rebuilds the router this manifest describes.
    pub fn router(&self) -> Result<ShardRouter> {
        ShardRouter::from_boundaries(self.boundaries.clone())
    }

    /// Encodes the manifest with a trailing checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, SHARD_MANIFEST_MAGIC);
        put_varint64(&mut out, self.boundaries.len() as u64);
        for b in &self.boundaries {
            put_u64(&mut out, *b);
        }
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decodes and verifies a manifest.
    pub fn decode(buf: &[u8]) -> Result<ShardManifest> {
        if buf.len() < 12 {
            return Err(Error::corruption("shard manifest too short"));
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 4);
        let stored = lsm_storage::coding::get_u32(crc_bytes)?;
        if crc32(body) != stored {
            return Err(Error::corruption("shard manifest checksum mismatch"));
        }
        let mut d = Decoder::new(body);
        if d.u64()? != SHARD_MANIFEST_MAGIC {
            return Err(Error::corruption("bad shard manifest magic"));
        }
        let count = d.varint64()? as usize;
        let mut boundaries = Vec::with_capacity(count);
        for _ in 0..count {
            boundaries.push(d.u64()?);
        }
        if !d.is_empty() {
            return Err(Error::corruption("trailing bytes after shard manifest"));
        }
        Ok(ShardManifest { boundaries })
    }
}

/// Persists the shard manifest atomically (write temp, sync, rename).
pub fn write_shard_manifest(storage: &StorageRef, manifest: &ShardManifest) -> Result<()> {
    let mut f = storage.create(SHARD_MANIFEST_TMP)?;
    f.append(&manifest.encode())?;
    f.sync()?;
    storage.rename(SHARD_MANIFEST_TMP, SHARD_MANIFEST_NAME)?;
    Ok(())
}

/// Reads the shard manifest, or `None` for a fresh (unsharded) directory.
pub fn read_shard_manifest(storage: &StorageRef) -> Result<Option<ShardManifest>> {
    if !storage.exists(SHARD_MANIFEST_NAME) {
        return Ok(None);
    }
    let data = storage.open(SHARD_MANIFEST_NAME)?.read_all()?;
    Ok(Some(ShardManifest::decode(&data)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_storage::storage::MemStorage;

    #[test]
    fn manifest_roundtrip() {
        let m = ShardManifest {
            boundaries: vec![100, 2000, 30000],
        };
        assert_eq!(ShardManifest::decode(&m.encode()).unwrap(), m);
        let router = m.router().unwrap();
        assert_eq!(router.num_shards(), 4);
        assert_eq!(ShardManifest::from_router(&router).boundaries, m.boundaries);
    }

    #[test]
    fn corruption_rejected() {
        let m = ShardManifest {
            boundaries: vec![7],
        };
        let mut enc = m.encode();
        enc[9] ^= 0xFF;
        assert!(ShardManifest::decode(&enc).is_err());
        assert!(ShardManifest::decode(&enc[..3]).is_err());
    }

    #[test]
    fn write_and_read() {
        let storage: StorageRef = MemStorage::new_ref();
        assert!(read_shard_manifest(&storage).unwrap().is_none());
        let m = ShardManifest {
            boundaries: vec![1 << 32],
        };
        write_shard_manifest(&storage, &m).unwrap();
        assert_eq!(read_shard_manifest(&storage).unwrap(), Some(m));
        assert!(!storage.exists(SHARD_MANIFEST_TMP));
    }
}
