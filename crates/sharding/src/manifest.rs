//! The shard manifest: the persisted topology of a sharded database, plus
//! the crash-safe two-phase record of an in-flight shard split.
//!
//! A tiny checksummed file (`SHARDS`) in the *root* directory records the
//! router's split points, the storage *slot* each shard's data lives in and
//! the next free slot. Slots decouple a shard's position in the routing
//! table from its directory on disk: a split retires the parent's slot and
//! allocates two fresh ones for the children, so no shard's data ever has to
//! move when the topology around it changes. Each shard keeps its own
//! per-shard manifest and WAL inside its slot directory. Written atomically
//! (temp + rename), like the engine manifests — the rename IS the commit
//! point of a split.
//!
//! An in-flight split additionally writes a `SHARDS.intent` record (parent
//! slot, child slots, split key) *before* preparing the children. Replay on
//! open resolves a crash at any point:
//!
//! | crash point                     | replay decision                      |
//! |---------------------------------|--------------------------------------|
//! | mid-intent write (torn record)  | ignore + delete the intent           |
//! | after intent, before commit     | roll back: clear child slots         |
//! | after commit, before cleanup    | roll forward: clear the parent slot  |
//!
//! The committed `SHARDS` manifest is the arbiter: the intent file alone
//! never changes the topology.

use lsm_storage::checksum::crc32;
use lsm_storage::coding::{put_u32, put_u64, put_varint64, Decoder};
use lsm_storage::storage::StorageRef;
use lsm_storage::types::UserKey;
use lsm_storage::{Error, Result};

use crate::router::ShardRouter;

/// Magic number at the start of a shard manifest.
const SHARD_MANIFEST_MAGIC: u64 = 0x4C41_5345_5253_4844; // "LASERSHD"

/// Magic number at the start of a split-intent record.
const SPLIT_INTENT_MAGIC: u64 = 0x4C41_5345_5253_504C; // "LASERSPL"

/// Name of the shard manifest file in the root directory.
pub const SHARD_MANIFEST_NAME: &str = "SHARDS";
const SHARD_MANIFEST_TMP: &str = "SHARDS.tmp";

/// Name of the split-intent file in the root directory.
pub const SPLIT_INTENT_NAME: &str = "SHARDS.intent";

/// The persisted shard topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// The router's split points (`num_shards - 1` entries, ascending).
    pub boundaries: Vec<UserKey>,
    /// The storage slot of each shard, positionally parallel to the router's
    /// ranges (`boundaries.len() + 1` entries). Slot ids are never reused.
    pub slots: Vec<u64>,
    /// The next slot id a split will allocate.
    pub next_slot: u64,
}

impl ShardManifest {
    /// Captures the topology of `router` with identity slots (shard `i` in
    /// slot `i`), as used for a freshly created database.
    pub fn from_router(router: &ShardRouter) -> ShardManifest {
        let num_shards = router.num_shards();
        ShardManifest {
            boundaries: router.boundaries().to_vec(),
            slots: (0..num_shards as u64).collect(),
            next_slot: num_shards as u64,
        }
    }

    /// Rebuilds the router this manifest describes.
    pub fn router(&self) -> Result<ShardRouter> {
        if self.slots.len() != self.boundaries.len() + 1 {
            return Err(Error::corruption(format!(
                "shard manifest has {} slots for {} shards",
                self.slots.len(),
                self.boundaries.len() + 1
            )));
        }
        ShardRouter::from_boundaries(self.boundaries.clone())
    }

    /// The manifest after committing a split of the shard at position
    /// `index` into `split_key`, with the parent's slot replaced by
    /// `left_slot` / `right_slot` (which must come from `next_slot`).
    pub fn with_split(
        &self,
        index: usize,
        split_key: UserKey,
        left_slot: u64,
        right_slot: u64,
    ) -> Result<ShardManifest> {
        let router = self.router()?.with_split(index, split_key)?;
        let mut slots = self.slots.clone();
        slots.splice(index..=index, [left_slot, right_slot]);
        Ok(ShardManifest {
            boundaries: router.boundaries().to_vec(),
            slots,
            next_slot: self.next_slot.max(left_slot.max(right_slot) + 1),
        })
    }

    /// Encodes the manifest with a trailing checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, SHARD_MANIFEST_MAGIC);
        put_varint64(&mut out, self.boundaries.len() as u64);
        for b in &self.boundaries {
            put_u64(&mut out, *b);
        }
        // Slot table, appended after the boundary list so manifests written
        // before online re-sharding (no slots) still decode.
        put_varint64(&mut out, self.slots.len() as u64);
        for s in &self.slots {
            put_varint64(&mut out, *s);
        }
        put_varint64(&mut out, self.next_slot);
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    /// Decodes and verifies a manifest. Pre-resharding manifests (no slot
    /// table) decode with identity slots.
    pub fn decode(buf: &[u8]) -> Result<ShardManifest> {
        if buf.len() < 12 {
            return Err(Error::corruption("shard manifest too short"));
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 4);
        let stored = lsm_storage::coding::get_u32(crc_bytes)?;
        if crc32(body) != stored {
            return Err(Error::corruption("shard manifest checksum mismatch"));
        }
        let mut d = Decoder::new(body);
        if d.u64()? != SHARD_MANIFEST_MAGIC {
            return Err(Error::corruption("bad shard manifest magic"));
        }
        let count = d.varint64()? as usize;
        let mut boundaries = Vec::with_capacity(count);
        for _ in 0..count {
            boundaries.push(d.u64()?);
        }
        let (slots, next_slot) = if d.is_empty() {
            // Legacy manifest from before online re-sharding.
            let n = (count + 1) as u64;
            ((0..n).collect(), n)
        } else {
            let slot_count = d.varint64()? as usize;
            let mut slots = Vec::with_capacity(slot_count);
            for _ in 0..slot_count {
                slots.push(d.varint64()?);
            }
            let next_slot = d.varint64()?;
            if !d.is_empty() {
                return Err(Error::corruption("trailing bytes after shard manifest"));
            }
            (slots, next_slot)
        };
        if slots.len() != count + 1 {
            return Err(Error::corruption("shard manifest slot table length"));
        }
        Ok(ShardManifest {
            boundaries,
            slots,
            next_slot,
        })
    }
}

/// Persists the shard manifest atomically (write temp, sync, rename). For a
/// split, this rename is the commit point.
pub fn write_shard_manifest(storage: &StorageRef, manifest: &ShardManifest) -> Result<()> {
    let mut f = storage.create(SHARD_MANIFEST_TMP)?;
    f.append(&manifest.encode())?;
    f.sync()?;
    storage.rename(SHARD_MANIFEST_TMP, SHARD_MANIFEST_NAME)?;
    Ok(())
}

/// Reads the shard manifest, or `None` for a fresh (unsharded) directory.
pub fn read_shard_manifest(storage: &StorageRef) -> Result<Option<ShardManifest>> {
    if !storage.exists(SHARD_MANIFEST_NAME) {
        return Ok(None);
    }
    let data = storage.open(SHARD_MANIFEST_NAME)?.read_all()?;
    Ok(Some(ShardManifest::decode(&data)?))
}

// ---------------------------------------------------------------------------
// Split intent (phase one of the two-phase split)
// ---------------------------------------------------------------------------

/// The durable record of an in-flight shard split, written *before* any
/// child state is prepared. Never authoritative on its own: replay consults
/// the committed `SHARDS` manifest to decide roll-back vs. roll-forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitIntent {
    /// Slot of the shard being split.
    pub parent_slot: u64,
    /// Slot allocated for the left child (`[lo, split_key)`).
    pub left_slot: u64,
    /// Slot allocated for the right child (`[split_key, hi]`).
    pub right_slot: u64,
    /// The key the range splits at.
    pub split_key: UserKey,
}

impl SplitIntent {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, SPLIT_INTENT_MAGIC);
        put_varint64(&mut out, self.parent_slot);
        put_varint64(&mut out, self.left_slot);
        put_varint64(&mut out, self.right_slot);
        put_u64(&mut out, self.split_key);
        let crc = crc32(&out);
        put_u32(&mut out, crc);
        out
    }

    fn decode(buf: &[u8]) -> Result<SplitIntent> {
        if buf.len() < 12 {
            return Err(Error::corruption("split intent too short"));
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 4);
        let stored = lsm_storage::coding::get_u32(crc_bytes)?;
        if crc32(body) != stored {
            return Err(Error::corruption("split intent checksum mismatch"));
        }
        let mut d = Decoder::new(body);
        if d.u64()? != SPLIT_INTENT_MAGIC {
            return Err(Error::corruption("bad split intent magic"));
        }
        Ok(SplitIntent {
            parent_slot: d.varint64()?,
            left_slot: d.varint64()?,
            right_slot: d.varint64()?,
            split_key: d.u64()?,
        })
    }
}

/// Durably records a split intent in the root directory.
pub fn write_split_intent(storage: &StorageRef, intent: &SplitIntent) -> Result<()> {
    let mut f = storage.create(SPLIT_INTENT_NAME)?;
    f.append(&intent.encode())?;
    f.sync()?;
    Ok(())
}

/// Reads the split intent, if a well-formed one exists. A torn or corrupt
/// intent (crash mid-write, before any child state existed) is treated as
/// absent — and deleted so it cannot shadow a later split's record.
pub fn read_split_intent(storage: &StorageRef) -> Result<Option<SplitIntent>> {
    if !storage.exists(SPLIT_INTENT_NAME) {
        return Ok(None);
    }
    let data = storage.open(SPLIT_INTENT_NAME)?.read_all()?;
    match SplitIntent::decode(&data) {
        Ok(intent) => Ok(Some(intent)),
        Err(_) => {
            let _ = storage.delete(SPLIT_INTENT_NAME);
            Ok(None)
        }
    }
}

/// Removes the split intent record (end of phase two). Idempotent.
pub fn remove_split_intent(storage: &StorageRef) -> Result<()> {
    if storage.exists(SPLIT_INTENT_NAME) {
        storage.delete(SPLIT_INTENT_NAME)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_storage::storage::MemStorage;

    #[test]
    fn manifest_roundtrip() {
        let m = ShardManifest {
            boundaries: vec![100, 2000, 30000],
            slots: vec![7, 3, 4, 9],
            next_slot: 10,
        };
        assert_eq!(ShardManifest::decode(&m.encode()).unwrap(), m);
        let router = m.router().unwrap();
        assert_eq!(router.num_shards(), 4);
        let fresh = ShardManifest::from_router(&router);
        assert_eq!(fresh.boundaries, m.boundaries);
        assert_eq!(fresh.slots, vec![0, 1, 2, 3]);
        assert_eq!(fresh.next_slot, 4);
    }

    #[test]
    fn legacy_manifest_without_slots_decodes_with_identity() {
        // Re-create the pre-resharding encoding: magic + boundaries + crc.
        let mut body = Vec::new();
        put_u64(&mut body, SHARD_MANIFEST_MAGIC);
        put_varint64(&mut body, 2);
        put_u64(&mut body, 500);
        put_u64(&mut body, 900);
        let crc = crc32(&body);
        put_u32(&mut body, crc);
        let m = ShardManifest::decode(&body).unwrap();
        assert_eq!(m.boundaries, vec![500, 900]);
        assert_eq!(m.slots, vec![0, 1, 2]);
        assert_eq!(m.next_slot, 3);
    }

    #[test]
    fn with_split_reslots_the_parent() {
        let m = ShardManifest {
            boundaries: vec![1000],
            slots: vec![0, 1],
            next_slot: 2,
        };
        let split = m.with_split(0, 500, 2, 3).unwrap();
        assert_eq!(split.boundaries, vec![500, 1000]);
        assert_eq!(split.slots, vec![2, 3, 1]);
        assert_eq!(split.next_slot, 4);
        // Invalid split keys are rejected via the router.
        assert!(m.with_split(0, 1000, 2, 3).is_err());
    }

    #[test]
    fn corruption_rejected() {
        let m = ShardManifest {
            boundaries: vec![7],
            slots: vec![0, 1],
            next_slot: 2,
        };
        let mut enc = m.encode();
        enc[9] ^= 0xFF;
        assert!(ShardManifest::decode(&enc).is_err());
        assert!(ShardManifest::decode(&enc[..3]).is_err());
    }

    #[test]
    fn write_and_read() {
        let storage: StorageRef = MemStorage::new_ref();
        assert!(read_shard_manifest(&storage).unwrap().is_none());
        let m = ShardManifest {
            boundaries: vec![1 << 32],
            slots: vec![0, 1],
            next_slot: 2,
        };
        write_shard_manifest(&storage, &m).unwrap();
        assert_eq!(read_shard_manifest(&storage).unwrap(), Some(m));
        assert!(!storage.exists(SHARD_MANIFEST_TMP));
    }

    #[test]
    fn split_intent_roundtrip_and_torn_record() {
        let storage: StorageRef = MemStorage::new_ref();
        assert!(read_split_intent(&storage).unwrap().is_none());
        let intent = SplitIntent {
            parent_slot: 1,
            left_slot: 4,
            right_slot: 5,
            split_key: 12345,
        };
        write_split_intent(&storage, &intent).unwrap();
        assert_eq!(read_split_intent(&storage).unwrap(), Some(intent));
        remove_split_intent(&storage).unwrap();
        assert!(!storage.exists(SPLIT_INTENT_NAME));
        remove_split_intent(&storage).unwrap();

        // A torn record (crash mid-write) reads as absent and is cleaned up.
        let mut f = storage.create(SPLIT_INTENT_NAME).unwrap();
        f.append(&intent.encode()[..7]).unwrap();
        drop(f);
        assert!(read_split_intent(&storage).unwrap().is_none());
        assert!(!storage.exists(SPLIT_INTENT_NAME));
    }
}
