//! A dependency-free HTTP/1.1 scrape endpoint for the telemetry stack.
//!
//! Deliberately minimal: a blocking [`std::net::TcpListener`] accept loop on
//! one named thread, one short-lived thread per connection, `GET`-only
//! routing, `Connection: close` on every response. That is exactly enough
//! for a Prometheus scraper or a `curl` against `/metrics`, `/health` and
//! the `/debug/*` JSON endpoints, without pulling an async runtime or an
//! HTTP framework into the workspace.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use lsm_storage::Result;

/// Content type of the Prometheus text exposition format.
pub const CONTENT_TYPE_PROMETHEUS: &str = "text/plain; version=0.0.4";
/// Content type of the JSON endpoints.
pub const CONTENT_TYPE_JSON: &str = "application/json";

/// One response produced by a route handler.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl HttpResponse {
    /// A `200 OK` response with the given content type.
    pub fn ok(content_type: &'static str, body: impl Into<String>) -> Self {
        HttpResponse {
            status: 200,
            content_type,
            body: body.into(),
        }
    }

    /// A `503 Service Unavailable` response (e.g. telemetry not attached).
    pub fn unavailable(reason: &str) -> Self {
        HttpResponse {
            status: 503,
            content_type: "text/plain",
            body: format!("{reason}\n"),
        }
    }

    /// A response with an explicit status code (e.g. `/health` answering
    /// `503` with a JSON body while a shard is degraded).
    pub fn with_status(status: u16, content_type: &'static str, body: impl Into<String>) -> Self {
        HttpResponse {
            status,
            content_type,
            body: body.into(),
        }
    }

    /// The response's status code.
    pub fn status(&self) -> u16 {
        self.status
    }
}

/// Handle of a running scrape endpoint. Dropping it stops the server:
/// the accept loop is woken with a throwaway connection and joined.
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// The bound address (resolves the port when `addr` asked for `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` and serves `route` until the returned handle is dropped.
/// `route` maps a request path (query string already stripped) to a
/// response; `None` becomes `404`.
pub(crate) fn serve<F>(addr: &str, route: F) -> Result<TelemetryServer>
where
    F: Fn(&str) -> Option<HttpResponse> + Send + Sync + 'static,
{
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let route = Arc::new(route);
    let handle = std::thread::Builder::new()
        .name("laser-telemetry-http".into())
        .spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let route = Arc::clone(&route);
                let _ = std::thread::Builder::new()
                    .name("laser-telemetry-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, route.as_ref());
                    });
            }
        })?;
    Ok(TelemetryServer {
        addr,
        shutdown,
        handle: Some(handle),
    })
}

/// Reads one request, routes it, writes one response, closes.
fn handle_connection<F>(stream: TcpStream, route: &F) -> std::io::Result<()>
where
    F: Fn(&str) -> Option<HttpResponse>,
{
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the header section; no endpoint takes a request body.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");
    let path = target.split(['?', '#']).next().unwrap_or("/");
    let response = if method != "GET" {
        HttpResponse {
            status: 405,
            content_type: "text/plain",
            body: "method not allowed\n".into(),
        }
    } else {
        route(path).unwrap_or(HttpResponse {
            status: 404,
            content_type: "text/plain",
            body: "not found\n".into(),
        })
    };
    write_response(stream, &response)
}

fn write_response(mut stream: TcpStream, response: &HttpResponse) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason,
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// Issues one blocking GET against a locally-served path and returns
/// `(status, body)`. Shared by the integration tests and `telemetry_check`;
/// doubles as a reference client for the exposition endpoints.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if let Some(value) = line
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            content_length = Some(value);
        }
    }
    let mut body = String::new();
    use std::io::Read;
    match content_length {
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader.read_exact(&mut buf)?;
            body.push_str(&String::from_utf8_lossy(&buf));
        }
        None => {
            reader.read_to_string(&mut body)?;
        }
    }
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_routes_and_reports_missing_paths() {
        let server = serve("127.0.0.1:0", |path| match path {
            "/ping" => Some(HttpResponse::ok("text/plain", "pong")),
            "/json" => Some(HttpResponse::ok(CONTENT_TYPE_JSON, "{\"a\":1}")),
            _ => None,
        })
        .unwrap();
        let (status, body) = http_get(server.addr(), "/ping").unwrap();
        assert_eq!((status, body.as_str()), (200, "pong"));
        let (status, body) = http_get(server.addr(), "/json?pretty=1").unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"a\":1}"));
        let (status, _) = http_get(server.addr(), "/nope").unwrap();
        assert_eq!(status, 404);
    }

    #[test]
    fn dropping_the_handle_stops_the_server() {
        let server = serve("127.0.0.1:0", |_| {
            Some(HttpResponse::ok("text/plain", "ok"))
        })
        .unwrap();
        let addr = server.addr();
        drop(server);
        // The port may linger in TIME_WAIT, but the accept thread is gone:
        // a fresh request must not be answered.
        assert!(
            http_get(addr, "/").is_err() || TcpStream::connect(addr).is_err(),
            "server kept answering after drop"
        );
    }
}
