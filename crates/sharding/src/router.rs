//! Key-range routing: which shard owns which slice of the `UserKey` space.

use lsm_storage::types::UserKey;
use lsm_storage::{Error, Result};

/// Splits the `UserKey` space into N contiguous, disjoint ranges.
///
/// The router is defined by its `N - 1` *split points*, sorted strictly
/// ascending: shard `i` owns `[boundaries[i-1], boundaries[i])` (shard 0
/// starts at key 0, the last shard ends at `u64::MAX` inclusive). Because
/// ranges are contiguous and cover the whole space, concatenating per-shard
/// scan results in shard order yields a globally key-ordered result with no
/// merge step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    /// Split points, strictly ascending; `len() + 1` shards.
    boundaries: Vec<UserKey>,
}

impl ShardRouter {
    /// A router splitting the full `u64` key space into `num_shards` ranges
    /// of (almost) equal width. `num_shards` is clamped to at least 1.
    pub fn uniform(num_shards: usize) -> ShardRouter {
        let n = num_shards.max(1) as u64;
        let stride = u64::MAX / n;
        ShardRouter {
            boundaries: (1..n).map(|i| i * stride).collect(),
        }
    }

    /// A router with explicit split points (must be strictly ascending and
    /// non-zero: a zero split point would leave shard 0 empty).
    pub fn from_boundaries(boundaries: Vec<UserKey>) -> Result<ShardRouter> {
        if boundaries.first() == Some(&0) {
            return Err(Error::invalid("shard boundary 0 leaves shard 0 empty"));
        }
        if boundaries.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::invalid(
                "shard boundaries must be strictly ascending",
            ));
        }
        Ok(ShardRouter { boundaries })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The split points (empty for a single shard).
    pub fn boundaries(&self) -> &[UserKey] {
        &self.boundaries
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: UserKey) -> usize {
        self.boundaries.partition_point(|b| *b <= key)
    }

    /// The inclusive key range `[lo, hi]` owned by shard `index`.
    pub fn shard_range(&self, index: usize) -> (UserKey, UserKey) {
        let lo = if index == 0 {
            0
        } else {
            self.boundaries[index - 1]
        };
        let hi = if index == self.boundaries.len() {
            UserKey::MAX
        } else {
            self.boundaries[index] - 1
        };
        (lo, hi)
    }

    /// The contiguous run of shard indices whose ranges intersect `[lo, hi]`.
    pub fn shards_overlapping(&self, lo: UserKey, hi: UserKey) -> std::ops::RangeInclusive<usize> {
        self.shard_of(lo)..=self.shard_of(hi)
    }

    /// The router after splitting shard `index` at `split_key`: the left
    /// child owns `[lo, split_key)`, the right child `[split_key, hi]`, and
    /// every later shard shifts up by one. `split_key` must lie strictly
    /// inside the shard's range (`lo < split_key <= hi`) so both children
    /// own at least one key.
    pub fn with_split(&self, index: usize, split_key: UserKey) -> Result<ShardRouter> {
        if index >= self.num_shards() {
            return Err(Error::invalid(format!("shard {index} out of range")));
        }
        let (lo, hi) = self.shard_range(index);
        if split_key <= lo || split_key > hi {
            return Err(Error::invalid(format!(
                "split key {split_key} outside the splittable interval ({lo}, {hi}] of shard {index}"
            )));
        }
        let mut boundaries = self.boundaries.clone();
        boundaries.insert(index, split_key);
        ShardRouter::from_boundaries(boundaries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_the_space_contiguously() {
        for n in [1usize, 2, 3, 4, 8, 13] {
            let router = ShardRouter::uniform(n);
            assert_eq!(router.num_shards(), n);
            assert_eq!(router.shard_of(0), 0);
            assert_eq!(router.shard_of(u64::MAX), n - 1);
            // Ranges tile the space: each shard's hi + 1 is the next lo.
            for i in 0..n {
                let (lo, hi) = router.shard_range(i);
                assert!(lo <= hi);
                assert_eq!(router.shard_of(lo), i);
                assert_eq!(router.shard_of(hi), i);
                if i + 1 < n {
                    let (next_lo, _) = router.shard_range(i + 1);
                    assert_eq!(hi + 1, next_lo);
                }
            }
        }
    }

    #[test]
    fn explicit_boundaries_route_correctly() {
        let router = ShardRouter::from_boundaries(vec![100, 1000]).unwrap();
        assert_eq!(router.num_shards(), 3);
        assert_eq!(router.shard_of(0), 0);
        assert_eq!(router.shard_of(99), 0);
        assert_eq!(router.shard_of(100), 1);
        assert_eq!(router.shard_of(999), 1);
        assert_eq!(router.shard_of(1000), 2);
        assert_eq!(router.shard_range(1), (100, 999));
        assert_eq!(router.shard_range(2), (1000, u64::MAX));
    }

    #[test]
    fn invalid_boundaries_rejected() {
        assert!(ShardRouter::from_boundaries(vec![0, 10]).is_err());
        assert!(ShardRouter::from_boundaries(vec![10, 10]).is_err());
        assert!(ShardRouter::from_boundaries(vec![20, 10]).is_err());
        assert!(ShardRouter::from_boundaries(vec![]).is_ok());
    }

    #[test]
    fn with_split_inserts_boundary_and_validates() {
        let router = ShardRouter::from_boundaries(vec![100, 200]).unwrap();
        let split = router.with_split(1, 150).unwrap();
        assert_eq!(split.boundaries(), &[100, 150, 200]);
        assert_eq!(split.shard_of(149), 1);
        assert_eq!(split.shard_of(150), 2);
        assert_eq!(split.shard_of(200), 3);
        // Splitting at the range's high end is allowed (right child owns one key).
        let edge = router.with_split(0, 99).unwrap();
        assert_eq!(edge.shard_range(1), (99, 99));
        // The split key must fall strictly inside (lo, hi].
        assert!(router.with_split(1, 100).is_err());
        assert!(router.with_split(1, 200).is_err());
        assert!(router.with_split(0, 0).is_err());
        assert!(router.with_split(5, 150).is_err());
    }

    #[test]
    fn overlap_range_is_tight() {
        let router = ShardRouter::from_boundaries(vec![100, 200, 300]).unwrap();
        assert_eq!(router.shards_overlapping(0, 50), 0..=0);
        assert_eq!(router.shards_overlapping(50, 150), 0..=1);
        assert_eq!(router.shards_overlapping(150, 250), 1..=2);
        assert_eq!(router.shards_overlapping(0, u64::MAX), 0..=3);
        assert_eq!(router.shards_overlapping(300, 300), 3..=3);
    }
}
