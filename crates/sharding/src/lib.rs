//! # laser-sharding
//!
//! Range sharding on top of the workspace's LSM engines: one logical
//! database served by N independent engine instances ("shards"), each owning
//! a contiguous slice of the `UserKey` space with its own subdirectory,
//! segmented WAL and manifest.
//!
//! The single-instance engines serialise compaction behind one lock and give
//! every engine a private block cache; sharding solves both structurally
//! while multiplying write and scan throughput across cores — the standard
//! shard-per-core recipe of production LSM deployments:
//!
//! * [`router::ShardRouter`] — splits the key space into contiguous ranges.
//!   Boundaries are persisted in a small shard manifest
//!   ([`manifest::ShardManifest`]) in the root directory, so a reopened
//!   database keeps its topology regardless of what the caller requests.
//! * [`db::ShardedDb`] — the facade, generic over any engine implementing
//!   [`engine::ShardEngine`] (both [`lsm_storage::LsmDb`] and
//!   [`laser_core::LaserDb`] do). Point ops route to the owning shard;
//!   [`types::WriteBatch`](lsm_storage::WriteBatch)es are split per shard and
//!   acknowledged once, group-commit style, after every sub-batch is durable.
//! * Cross-shard `scan`/`scan_at` run the per-shard scans on a small
//!   rayon-free [`pool::WorkerPool`] and concatenate in range order — shards
//!   are disjoint, so no merge heap is needed — with the snapshot captured
//!   *once* across all shards ([`db::ShardSnapshot`]) so a scan never
//!   observes half of a cross-shard batch.
//! * One process-wide [`BlockCache`](lsm_storage::BlockCache) with a global
//!   byte budget serves every shard (and can be shared across engines of
//!   different types); per-shard accounting stays visible through cache
//!   scopes.
//! * One shared [`JobScheduler`](lsm_storage::JobScheduler) runs
//!   flush/compaction of *all* shards on one worker pool, so compactions of
//!   disjoint shards proceed genuinely in parallel.
//! * **Online re-sharding** — [`db::ShardedDb::split_shard`] splits a hot
//!   shard live: the parent's memtable is drained, its SSTs are adopted into
//!   two child slots *by reference* (filesystem hard links / shared buffers,
//!   no data rewrite), the `SHARDS` manifest is swapped with a crash-safe
//!   two-phase record (intent + commit, replayed on open) and the router is
//!   replaced atomically while scans keep running against the topology they
//!   pinned. A [`db::SplitPolicy`] triggers splits automatically from
//!   shard-level statistics (resident size, ingest volume, pending-job
//!   pressure); background *trim* compactions later reclaim the
//!   out-of-range halves of adopted SSTs.
//! * **Replication & failover** — [`replication`] streams each leader
//!   shard's WAL (sealed segment images plus the live group-commit tail) to
//!   N in-process replicas over a checksummed, length-prefixed frame
//!   protocol; quorum acknowledgement makes acked writes survive leader
//!   loss, a health monitor exports per-replica lag and advances WAL
//!   retention floors, and leader promotion swaps the shard manifest's slot
//!   table under a crash-safe two-phase intent (`SHARDS.promote`) with
//!   automatic failover from the write path. Splits and replication are
//!   mutually exclusive.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod db;
pub mod engine;
pub mod http;
pub mod manifest;
pub mod pool;
pub mod replication;
pub mod router;
pub mod storage;

pub use db::{
    ShardSnapshot, ShardedDb, ShardedOptions, ShardedStatsSnapshot, SplitFailpoint, SplitPolicy,
};
pub use engine::ShardEngine;
pub use http::{http_get, HttpResponse, TelemetryServer};
pub use manifest::{ShardManifest, SplitIntent};
pub use pool::WorkerPool;
pub use replication::{
    AckMode, ReplicaInfo, ReplicaState, ReplicationConfig, ReplicationFailpoint,
    ShardReplicationStatus,
};
pub use router::ShardRouter;
pub use storage::{DirShardStorage, FaultShardStorage, MemShardStorage, ShardStorageProvider};
