//! The sharded database facade.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use lsm_storage::cache::{BlockCache, BlockCacheStats, ScopedCache};
use lsm_storage::maintenance::{attach_shard_engines, JobScheduler};
use lsm_storage::types::{SeqNo, UserKey, WriteBatch, MAX_SEQNO};
use lsm_storage::{Error, Result};

use crate::engine::ShardEngine;
use crate::manifest::{read_shard_manifest, write_shard_manifest, ShardManifest};
use crate::pool::WorkerPool;
use crate::router::ShardRouter;
use crate::storage::ShardStorageProvider;

/// Configuration of the sharding layer (the per-shard engine options are
/// passed separately and shared by every shard).
#[derive(Debug, Clone)]
pub struct ShardedOptions {
    /// Requested shard count for a *fresh* directory. A reopened database
    /// always keeps the topology persisted in its shard manifest.
    pub num_shards: usize,
    /// Explicit split points for a fresh directory (`num_shards - 1`
    /// ascending keys). `None` splits the full `u64` key space uniformly —
    /// workloads whose keys occupy a narrow range should pass boundaries
    /// matching their distribution instead.
    pub boundaries: Option<Vec<UserKey>>,
    /// Threads of the cross-shard fan-out pool (scans and multi-shard batch
    /// writes). 0 means `min(num_shards, 8)`.
    pub fanout_threads: usize,
    /// Workers of the shared background maintenance scheduler serving every
    /// shard; 0 disables background maintenance (flush/compaction then run
    /// inline on the write path, per shard).
    pub maintenance_workers: usize,
    /// Global byte budget of the process-wide block cache shared by all
    /// shards; 0 disables caching (unless an external cache is supplied via
    /// [`ShardedDb::open_with_cache`]).
    pub cache_bytes: usize,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        ShardedOptions {
            num_shards: 4,
            boundaries: None,
            fanout_threads: 0,
            maintenance_workers: 0,
            cache_bytes: 0,
        }
    }
}

impl ShardedOptions {
    /// Options for `num_shards` shards, everything else default.
    pub fn with_shards(num_shards: usize) -> Self {
        ShardedOptions {
            num_shards,
            ..Default::default()
        }
    }

    /// Options with explicit split points (shard count follows from them).
    pub fn with_boundaries(boundaries: Vec<UserKey>) -> Self {
        ShardedOptions {
            num_shards: boundaries.len() + 1,
            boundaries: Some(boundaries),
            ..Default::default()
        }
    }

    /// Sets the fan-out pool size.
    pub fn fanout_threads(mut self, threads: usize) -> Self {
        self.fanout_threads = threads;
        self
    }

    /// Enables background maintenance with `workers` shared worker threads.
    pub fn maintenance_workers(mut self, workers: usize) -> Self {
        self.maintenance_workers = workers;
        self
    }

    /// Sets the global block-cache budget in bytes.
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cache_bytes = bytes;
        self
    }
}

/// A consistent cross-shard snapshot: one sequence number per shard,
/// captured atomically with respect to (multi-shard) batch writes — a
/// snapshot can never observe half of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    seqs: Vec<SeqNo>,
}

impl ShardSnapshot {
    /// The per-shard visibility horizon (indexed by shard).
    pub fn seqs(&self) -> &[SeqNo] {
        &self.seqs
    }

    /// A snapshot that sees everything, for reads that do not need
    /// cross-shard consistency.
    fn latest(num_shards: usize) -> ShardSnapshot {
        ShardSnapshot {
            seqs: vec![MAX_SEQNO; num_shards],
        }
    }
}

/// Counters of the sharding layer itself (per-shard engine counters stay
/// available through [`ShardedDb::shards`]).
#[derive(Debug, Default)]
struct ShardedStats {
    batches: AtomicU64,
    cross_shard_batches: AtomicU64,
    fanout_scans: AtomicU64,
}

/// Owned snapshot of the sharding layer's counters plus cache accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardedStatsSnapshot {
    /// Number of shards.
    pub num_shards: usize,
    /// Batches written through the facade.
    pub batches: u64,
    /// Batches that spanned more than one shard.
    pub cross_shard_batches: u64,
    /// Cross-shard scans that fanned out over more than one shard.
    pub fanout_scans: u64,
    /// Global block-cache counters (all shards combined), if caching is on.
    pub cache: Option<BlockCacheStats>,
    /// Resident cache bytes per shard (indexed by shard), if caching is on.
    pub per_shard_cache_bytes: Vec<u64>,
    /// Background jobs completed across all shards by the shared scheduler.
    pub bg_jobs_completed: u64,
    /// Background jobs queued or running across all shards.
    pub bg_jobs_pending: u64,
}

/// A range-sharded database: N engine shards behind one router.
///
/// See the crate docs for the architecture. The facade is generic over the
/// engine type: `ShardedDb<LsmDb>` shards the plain key-value engine,
/// `ShardedDb<LaserDb>` the Real-Time LSM-Tree (values are then
/// [`RowFragment`](laser_core::RowFragment)s and reads take a
/// [`Projection`](laser_core::Projection)).
pub struct ShardedDb<E: ShardEngine> {
    // Field order is drop order: the scheduler drains and joins its workers
    // while every shard is still alive, then the fan-out pool, then the
    // shards themselves.
    scheduler: Option<JobScheduler>,
    pool: WorkerPool,
    shards: Vec<Arc<E>>,
    router: ShardRouter,
    cache: Option<Arc<BlockCache>>,
    /// Cache scope of each shard (indexed by shard), for accounting.
    cache_scopes: Vec<u32>,
    /// Snapshot barrier: batch writers hold it shared while applying every
    /// per-shard sub-batch; [`ShardedDb::snapshot`] takes it exclusively, so
    /// a snapshot waits out in-flight batches instead of splitting one.
    snapshot_lock: RwLock<()>,
    stats: ShardedStats,
}

impl<E: ShardEngine> std::fmt::Debug for ShardedDb<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDb")
            .field("engine", &E::ENGINE_NAME)
            .field("num_shards", &self.num_shards())
            .finish()
    }
}

impl<E: ShardEngine> ShardedDb<E> {
    /// Opens (or reopens) a sharded database on `provider`, creating its own
    /// process-wide block cache per `options.cache_bytes`.
    pub fn open(
        provider: &dyn ShardStorageProvider,
        engine_options: E::Options,
        options: ShardedOptions,
    ) -> Result<Self> {
        let cache = if options.cache_bytes > 0 {
            Some(BlockCache::new(options.cache_bytes))
        } else {
            None
        };
        Self::open_with_cache(provider, engine_options, options, cache)
    }

    /// Opens (or reopens) a sharded database serving block reads through an
    /// externally-owned cache, so several sharded databases — even of
    /// different engine types — can share one memory budget.
    /// `options.cache_bytes` is ignored when a cache is given.
    pub fn open_with_cache(
        provider: &dyn ShardStorageProvider,
        engine_options: E::Options,
        options: ShardedOptions,
        cache: Option<Arc<BlockCache>>,
    ) -> Result<Self> {
        let root = provider.root()?;
        // The persisted topology wins over the requested one: shard data
        // cannot be re-split by merely asking for a different count.
        let router = match read_shard_manifest(&root)? {
            Some(manifest) => manifest.router()?,
            None => {
                let router = match &options.boundaries {
                    Some(boundaries) => ShardRouter::from_boundaries(boundaries.clone())?,
                    None => ShardRouter::uniform(options.num_shards),
                };
                write_shard_manifest(&root, &ShardManifest::from_router(&router))?;
                router
            }
        };
        let num_shards = router.num_shards();

        let mut shards = Vec::with_capacity(num_shards);
        let mut cache_scopes = Vec::with_capacity(num_shards);
        for index in 0..num_shards {
            let scoped = cache.as_ref().map(|c| {
                let scope = c.add_scope();
                cache_scopes.push(scope);
                ScopedCache::new(Arc::clone(c), scope)
            });
            let storage = provider.shard(index)?;
            shards.push(Arc::new(E::open_shard(storage, &engine_options, scoped)?));
        }

        let scheduler = if options.maintenance_workers > 0 {
            Some(attach_shard_engines(&shards, options.maintenance_workers)?)
        } else {
            None
        };
        let fanout_threads = if options.fanout_threads > 0 {
            options.fanout_threads
        } else {
            num_shards.min(8)
        };
        Ok(ShardedDb {
            scheduler,
            pool: WorkerPool::new(fanout_threads, "shard-fanout"),
            shards,
            router,
            cache,
            cache_scopes,
            snapshot_lock: RwLock::new(()),
            stats: ShardedStats::default(),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The router mapping keys to shards.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The shard engines (indexed by shard), for per-shard introspection.
    pub fn shards(&self) -> &[Arc<E>] {
        &self.shards
    }

    /// The process-wide block cache, if one is configured.
    pub fn cache(&self) -> Option<&Arc<BlockCache>> {
        self.cache.as_ref()
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Applies a write batch. Entries are routed to their owning shards;
    /// a batch spanning several shards is split into per-shard sub-batches
    /// applied in parallel, and the call returns — one group-commit-style
    /// acknowledgement — only after **every** sub-batch is durable per the
    /// engines' WAL policy. Atomicity is per shard; cross-shard visibility
    /// is atomic with respect to [`ShardedDb::snapshot`].
    pub fn write(&self, batch: &WriteBatch) -> Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        // Fast path for the dominant case — every entry owned by one shard
        // (all point ops, and any batch with key locality): route, take the
        // snapshot barrier, hand the caller's batch straight through with no
        // clone or per-shard allocation.
        let mut entries = batch.iter();
        let first_shard = self
            .router
            .shard_of(entries.next().expect("non-empty").user_key);
        if entries.all(|e| self.router.shard_of(e.user_key) == first_shard) {
            // Shared lock: a concurrent snapshot waits until every sub-batch
            // of this write landed (or none), never observing half of it.
            let _batch_guard = self.snapshot_lock.read();
            return self.shards[first_shard].shard_write(batch);
        }

        let mut per_shard: Vec<Option<WriteBatch>> = vec![None; self.shards.len()];
        for entry in batch.iter() {
            let shard = self.router.shard_of(entry.user_key);
            per_shard[shard]
                .get_or_insert_with(WriteBatch::new)
                .push(entry.clone());
        }
        self.stats
            .cross_shard_batches
            .fetch_add(1, Ordering::Relaxed);
        let tasks: Vec<_> = per_shard
            .iter_mut()
            .enumerate()
            .filter_map(|(shard, sub)| sub.take().map(|sub| (shard, sub)))
            .map(|(shard, sub)| {
                let engine = Arc::clone(&self.shards[shard]);
                move || engine.shard_write(&sub)
            })
            .collect();
        let _batch_guard = self.snapshot_lock.read();
        let results = self.pool.run_all(tasks);
        results.into_iter().collect::<Result<Vec<()>>>()?;
        Ok(())
    }

    /// Inserts a single key/value pair (the payload must be whatever the
    /// engine expects — an opaque blob for `LsmDb`, an encoded complete
    /// [`RowFragment`](laser_core::RowFragment) for `LaserDb`).
    pub fn put(&self, key: UserKey, value: Vec<u8>) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(key, value);
        self.write(&batch)
    }

    /// Deletes a key (writes a tombstone on the owning shard).
    pub fn delete(&self, key: UserKey) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(key);
        self.write(&batch)
    }

    // ------------------------------------------------------------------
    // Snapshots and reads
    // ------------------------------------------------------------------

    /// Captures a consistent cross-shard snapshot: the per-shard sequence
    /// horizon, taken while no batch write is in flight. Scans and reads at
    /// this snapshot see every batch acknowledged before the capture and
    /// nothing written after it — in particular, never half of a cross-shard
    /// batch.
    pub fn snapshot(&self) -> ShardSnapshot {
        let _barrier = self.snapshot_lock.write();
        ShardSnapshot {
            seqs: self.shards.iter().map(|s| s.shard_last_seq()).collect(),
        }
    }

    /// Point lookup of the newest visible value.
    pub fn get(&self, key: UserKey, ctx: &E::ReadCtx) -> Result<Option<E::Value>> {
        let shard = self.router.shard_of(key);
        self.shards[shard].shard_get_at(key, ctx, MAX_SEQNO)
    }

    /// Point lookup at a snapshot.
    pub fn get_at(
        &self,
        key: UserKey,
        ctx: &E::ReadCtx,
        snapshot: &ShardSnapshot,
    ) -> Result<Option<E::Value>> {
        let shard = self.router.shard_of(key);
        let seq = snapshot
            .seqs
            .get(shard)
            .copied()
            .ok_or_else(|| Error::invalid("snapshot from a different topology"))?;
        self.shards[shard].shard_get_at(key, ctx, seq)
    }

    /// Cross-shard range scan of the newest visible versions in `[lo, hi]`.
    /// Captures a snapshot internally so the result is consistent across
    /// shards even under concurrent writes.
    pub fn scan(
        &self,
        lo: UserKey,
        hi: UserKey,
        ctx: &E::ReadCtx,
    ) -> Result<Vec<(UserKey, E::Value)>> {
        let snapshot = self.snapshot();
        self.scan_at(lo, hi, ctx, &snapshot)
    }

    /// Cross-shard range scan at a snapshot. The per-shard scans run in
    /// parallel on the fan-out pool; shards own disjoint contiguous ranges,
    /// so concatenating the results in shard order yields global key order
    /// with no merge heap.
    pub fn scan_at(
        &self,
        lo: UserKey,
        hi: UserKey,
        ctx: &E::ReadCtx,
        snapshot: &ShardSnapshot,
    ) -> Result<Vec<(UserKey, E::Value)>> {
        if lo > hi {
            return Ok(Vec::new());
        }
        if snapshot.seqs.len() != self.shards.len() {
            return Err(Error::invalid("snapshot from a different topology"));
        }
        let shard_range = self.router.shards_overlapping(lo, hi);
        if shard_range.start() == shard_range.end() {
            let shard = *shard_range.start();
            return self.shards[shard].shard_scan_at(lo, hi, ctx, snapshot.seqs[shard]);
        }
        self.stats.fanout_scans.fetch_add(1, Ordering::Relaxed);
        let tasks: Vec<_> = shard_range
            .map(|shard| {
                let engine = Arc::clone(&self.shards[shard]);
                let (shard_lo, shard_hi) = self.router.shard_range(shard);
                let (clamped_lo, clamped_hi) = (lo.max(shard_lo), hi.min(shard_hi));
                let seq = snapshot.seqs[shard];
                let ctx = ctx.clone();
                move || engine.shard_scan_at(clamped_lo, clamped_hi, &ctx, seq)
            })
            .collect();
        let mut out = Vec::new();
        for rows in self.pool.run_all(tasks) {
            out.extend(rows?);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Maintenance
    // ------------------------------------------------------------------

    /// Flushes every shard's buffered writes to Level-0, in parallel.
    pub fn flush(&self) -> Result<()> {
        let tasks: Vec<_> = self
            .shards
            .iter()
            .map(|shard| {
                let engine = Arc::clone(shard);
                move || engine.shard_flush()
            })
            .collect();
        self.pool.run_all(tasks).into_iter().collect::<Result<_>>()
    }

    /// Compacts every shard until no level overflows, in parallel.
    pub fn compact_until_stable(&self) -> Result<()> {
        let tasks: Vec<_> = self
            .shards
            .iter()
            .map(|shard| {
                let engine = Arc::clone(shard);
                move || engine.shard_compact_until_stable()
            })
            .collect();
        self.pool.run_all(tasks).into_iter().collect::<Result<_>>()
    }

    /// Blocks until the shared maintenance scheduler has no queued or
    /// running job (no-op without background maintenance).
    pub fn wait_maintenance_idle(&self) {
        if let Some(scheduler) = &self.scheduler {
            scheduler.wait_idle();
        }
    }

    /// Workers of the shared maintenance scheduler (0 when disabled).
    pub fn maintenance_workers(&self) -> usize {
        self.scheduler.as_ref().map_or(0, |s| s.num_workers())
    }

    /// Flushes outstanding data on every shard and persists their manifests.
    pub fn close(&self) -> Result<()> {
        for shard in &self.shards {
            shard.shard_close()?;
        }
        Ok(())
    }

    /// Counters of the sharding layer plus global/per-shard cache usage.
    pub fn stats(&self) -> ShardedStatsSnapshot {
        let (bg_completed, bg_pending) = self
            .scheduler
            .as_ref()
            .map(|s| {
                let state = s.state();
                (state.completed_jobs(), state.pending_jobs() as u64)
            })
            .unwrap_or((0, 0));
        ShardedStatsSnapshot {
            num_shards: self.shards.len(),
            batches: self.stats.batches.load(Ordering::Relaxed),
            cross_shard_batches: self.stats.cross_shard_batches.load(Ordering::Relaxed),
            fanout_scans: self.stats.fanout_scans.load(Ordering::Relaxed),
            cache: self.cache.as_ref().map(|c| c.stats()),
            per_shard_cache_bytes: self
                .cache
                .as_ref()
                .map(|c| {
                    self.cache_scopes
                        .iter()
                        .map(|&scope| c.scope_used_bytes(scope))
                        .collect()
                })
                .unwrap_or_default(),
            bg_jobs_completed: bg_completed,
            bg_jobs_pending: bg_pending,
        }
    }

    /// The snapshot every read sees when none is supplied (visible for
    /// tests: `latest` horizons for the current topology).
    pub fn latest_snapshot(&self) -> ShardSnapshot {
        ShardSnapshot::latest(self.shards.len())
    }
}
